"""Crash-safe study orchestration: sharded ensembles across worker processes.

The :class:`~repro.api.Study` facade is declarative — this package makes it
*serializable* and puts a crash-safe orchestrator in front of it:

* :mod:`repro.service.serialization` — versioned JSON codecs for every
  spec, plan, config and result, so studies cross process boundaries and
  results can be journaled;
* :mod:`repro.service.checkpoint` — an append-only on-disk journal of
  completed shard results keyed by content hash, for resume-after-crash
  and cross-study deduplication;
* :mod:`repro.service.retry` — bounded retries with exponential backoff
  and deterministic jitter, distinguishing transient failures (killed
  worker, timeout) from deterministic ones (fail fast);
* :mod:`repro.service.worker` — the shard worker process entry point,
  with liveness heartbeats and structured error reporting;
* :mod:`repro.service.orchestrator` — :func:`run_study_service` and
  :func:`run_certification_sweep_service`, which shard the ``(B, n, d)``
  scenario axis (or the sweep's grid rows) across a pool of workers and
  merge the results deterministically: the orchestrated result is
  bit-for-bit identical to the single-process run regardless of worker
  count, completion order, or crash/resume cycles;
* :mod:`repro.service.remote` — the distributed route: an HTTP job-queue
  server with leases and streamed telemetry, the remote worker agent
  (``python -m repro.service.worker --url ...``), a shared content-keyed
  result cache, and the ``remote=RemoteConfig(...)`` coordinator side of
  :func:`run_study_service`.
"""

from repro.service.checkpoint import CheckpointJournal, content_key
from repro.service.orchestrator import (
    PartialStudyResult,
    ShardFailure,
    ShardRecord,
    run_certification_sweep_service,
    run_study_service,
)
from repro.service.remote import JobQueueServer, RemoteConfig, ResultCache, run_worker
from repro.service.retry import RetryPolicy, is_transient_failure

__all__ = [
    "CheckpointJournal",
    "JobQueueServer",
    "PartialStudyResult",
    "RemoteConfig",
    "ResultCache",
    "RetryPolicy",
    "ShardFailure",
    "ShardRecord",
    "content_key",
    "is_transient_failure",
    "run_certification_sweep_service",
    "run_study_service",
    "run_worker",
]
