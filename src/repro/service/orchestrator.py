"""The crash-safe study orchestrator: shard, dispatch, retry, merge.

:func:`run_study_service` mirrors the :class:`~repro.api.Study` front door
but executes the study as *shard jobs* across a pool of worker processes:

1. the ``(B, n, d)`` scenario axis is split into contiguous shards, each a
   self-contained serialized job (algorithm, sliced scenario, model,
   certification spec, ``scenario_base``-offset fault plan, and the
   **explicitly merged** engine config — so fork and spawn workers see the
   identical configuration);
2. jobs are keyed by a content hash and checked against the checkpoint
   journal first — a killed orchestrator resumes by re-running only the
   missing shards, and identical shards (within or across studies)
   deduplicate;
3. workers prove liveness through heartbeats; a worker killed by a signal,
   or one that exceeds its wall-clock or heartbeat budget, is classified as
   a *transient* failure and retried with exponential backoff, while
   deterministic engine failures (:class:`~repro.exceptions.FaultModelError`
   and friends) fail fast on the first attempt;
4. completed shards are journaled immediately (crash-durable) and streamed
   to the ``on_shard`` callback; the final merge concatenates the shard
   ensembles in scenario order, bit-for-bit identical to the single-process
   :class:`~repro.api.Study` run regardless of worker count, completion
   order, or crash/resume cycles.

With ``strict=True`` (default) an exhausted shard raises its underlying
error; ``strict=False`` degrades gracefully and always returns a
:class:`PartialStudyResult` whose ``failures`` list records every exhausted
shard.  :func:`run_certification_sweep_service` applies the same machinery
to the certification sweep's grid rows.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import (
    ConfigError,
    ServiceError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.service.checkpoint import CheckpointJournal, content_key
from repro.service.retry import RetryPolicy
from repro.service.worker import error_from_descriptor, shard_worker_main


@dataclass(frozen=True)
class ShardRecord:
    """One completed shard: where its result came from and what it cost.

    ``source`` is ``"worker"`` for a freshly computed shard, ``"journal"``
    for a checkpoint replay (including in-run deduplication of identical
    shards).
    """

    shard: int
    key: str
    start: int
    stop: int
    attempts: int
    source: str
    elapsed: float


@dataclass(frozen=True)
class ShardFailure:
    """One exhausted shard: the error that ended it and how hard we tried."""

    shard: int
    key: str
    attempts: int
    error: BaseException
    error_type: str
    message: str
    traceback: Optional[str] = None


@dataclass
class PartialStudyResult:
    """Graceful-degradation result of a service run (``strict=False``).

    ``result`` is the fully merged result when every shard completed —
    a :class:`~repro.api.StudyResult` for :func:`run_study_service`, the
    sweep-row list for :func:`run_certification_sweep_service` — and
    ``None`` otherwise.  ``shards`` records every *completed* shard in
    scenario order; ``failures`` records every exhausted one.
    """

    result: Optional[Any]
    shards: List[ShardRecord] = field(default_factory=list)
    failures: List[ShardFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        return (
            f"PartialStudyResult(complete={self.complete}, "
            f"shards={len(self.shards)}, failures={len(self.failures)})"
        )


# --------------------------------------------------------------------- #
# Internal job scheduler
# --------------------------------------------------------------------- #


@dataclass
class _Job:
    """One content-keyed unit of work (possibly covering several shards)."""

    key: str
    payload: Dict[str, Any]
    shards: List[int]
    attempts: int = 0
    retry_at: float = 0.0


class _Scheduler:
    """Dispatch jobs to worker processes; retry, time out, journal, stream."""

    def __init__(
        self,
        jobs: List[_Job],
        *,
        workers: int,
        journal: Optional[CheckpointJournal],
        retry: RetryPolicy,
        shard_timeout: Optional[float],
        heartbeat_interval: float,
        heartbeat_timeout: Optional[float],
        start_method: Optional[str],
        fault_markers: Optional[Dict[int, Dict[str, str]]],
    ) -> None:
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise ConfigError(f"workers must be a positive int, got {workers!r}")
        self._jobs = {job.key: job for job in jobs}
        self._order = [job.key for job in jobs]
        self._workers = workers
        self._journal = journal
        self._retry = retry
        self._shard_timeout = shard_timeout
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._fault_markers = fault_markers or {}
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._context = multiprocessing.get_context(start_method)
        self.results: Dict[str, Any] = {}
        self.failures: Dict[str, ShardFailure] = {}
        self.records: Dict[str, ShardRecord] = {}
        self._waiting: Dict[str, _Job] = {}
        self._running: Dict[str, Dict[str, Any]] = {}
        self._on_shard: Optional[Callable[[ShardRecord], None]] = None

    # -- journal replay ------------------------------------------------- #

    def _replay_journal(self) -> None:
        if self._journal is None:
            return
        for key in self._order:
            cached = self._journal.get(key)
            if cached is not None:
                job = self._jobs[key]
                self.results[key] = cached
                self.records[key] = ShardRecord(
                    shard=job.shards[0],
                    key=key,
                    start=job.payload["service"]["start"],
                    stop=job.payload["service"]["stop"],
                    attempts=0,
                    source="journal",
                    elapsed=0.0,
                )

    # -- worker lifecycle ----------------------------------------------- #

    def _spawn(self, job: _Job, queue) -> Dict[str, Any]:
        job.attempts += 1
        payload = dict(job.payload)
        service = dict(payload["service"])
        service["attempt"] = job.attempts
        service["heartbeat_interval"] = self._heartbeat_interval
        markers = self._fault_markers.get(job.shards[0])
        if markers:
            service["markers"] = markers
        payload["service"] = service
        process = self._context.Process(
            target=shard_worker_main, args=(payload, queue), daemon=True
        )
        process.start()
        now = time.monotonic()
        return {
            "job": job,
            "process": process,
            "attempt": job.attempts,
            "started": now,
            "last_beat": now,
        }

    def _complete(self, job: _Job, result: Any, elapsed: float) -> None:
        self.results[job.key] = result
        if self._journal is not None:
            self._journal.put(job.key, result, kind=job.payload["kind"])
        self.records[job.key] = ShardRecord(
            shard=job.shards[0],
            key=job.key,
            start=job.payload["service"]["start"],
            stop=job.payload["service"]["stop"],
            attempts=job.attempts,
            source="worker",
            elapsed=elapsed,
        )

    def _fail(self, job: _Job, error: BaseException, trace: Optional[str]) -> None:
        if self._retry.should_retry(error, job.attempts):
            delay = self._retry.delay_before(job.attempts + 1, job.key)
            job.retry_at = time.monotonic() + delay
            return
        self.failures[job.key] = ShardFailure(
            shard=job.shards[0],
            key=job.key,
            attempts=job.attempts,
            error=error,
            error_type=type(error).__name__,
            message=str(error),
            traceback=trace,
        )

    # -- main loop ------------------------------------------------------ #

    def run(self, on_shard: Optional[Callable[[ShardRecord], None]] = None) -> None:
        self._replay_journal()
        if on_shard is not None:
            for key in self._order:
                if key in self.records:
                    on_shard(self.records[key])
        self._waiting = {
            key: self._jobs[key]
            for key in self._order
            if key not in self.results and key not in self.failures
        }
        if not self._waiting:
            return
        queue = self._context.Queue()
        running: Dict[str, Dict[str, Any]] = {}
        self._running = running
        self._on_shard = on_shard
        try:
            while self._waiting or running:
                now = time.monotonic()
                # Launch every ready job for which a worker slot is free.
                for key in list(self._waiting):
                    if len(running) >= self._workers:
                        break
                    job = self._waiting[key]
                    if job.retry_at > now:
                        continue
                    del self._waiting[key]
                    running[key] = self._spawn(job, queue)
                if not running:
                    # Every remaining job is parked in its retry backoff.
                    time.sleep(0.01)
                    continue
                # Drain every queued message, blocking briefly on the first.
                self._drain(queue, block=True)
                now = time.monotonic()
                for key, info in list(running.items()):
                    process = info["process"]
                    if process.exitcode is not None:
                        # One final drain: the worker may have flushed its
                        # result between our last drain and its exit.
                        self._drain(queue, block=False)
                        if key not in running:
                            continue
                        del running[key]
                        process.join()
                        job = info["job"]
                        error = WorkerCrashError(
                            f"worker for shard {job.shards[0]} "
                            f"(attempt {job.attempts}) exited with code "
                            f"{process.exitcode} without reporting a result",
                            exitcode=process.exitcode,
                        )
                        self._fail_or_retry(job, error, None)
                        continue
                    timed_out = (
                        self._shard_timeout is not None
                        and now - info["started"] > self._shard_timeout
                    )
                    hung = (
                        self._heartbeat_timeout is not None
                        and now - info["last_beat"] > self._heartbeat_timeout
                    )
                    if timed_out or hung:
                        process.kill()
                        process.join()
                        del running[key]
                        job = info["job"]
                        kind = "timeout" if timed_out else "heartbeat"
                        budget = (
                            self._shard_timeout if timed_out else self._heartbeat_timeout
                        )
                        error = ShardTimeoutError(
                            f"worker for shard {job.shards[0]} "
                            f"(attempt {job.attempts}) exceeded its "
                            f"{kind} budget of {budget}s",
                            elapsed=now - info["started"],
                            kind=kind,
                        )
                        self._fail_or_retry(job, error, None)
        finally:
            for info in running.values():
                if info["process"].is_alive():
                    info["process"].kill()
                info["process"].join()
            queue.close()
            queue.join_thread()

    def _fail_or_retry(self, job: _Job, error: BaseException, trace) -> None:
        """Record a terminal failure, or park the job for a delayed retry."""
        self._fail(job, error, trace)
        if job.key not in self.failures:
            self._waiting[job.key] = job

    def _drain(self, queue, *, block: bool) -> None:
        import queue as queue_module

        running = self._running
        first = block
        while True:
            try:
                message = queue.get(timeout=0.05) if first else queue.get_nowait()
            except queue_module.Empty:
                return
            first = False
            tag, key = message[0], message[1]
            info = running.get(key)
            if info is None:
                continue  # a late message from a killed attempt
            if tag == "heartbeat":
                info["last_beat"] = time.monotonic()
                continue
            attempt = message[2]
            if attempt != info["attempt"]:
                continue  # stale message from a retried attempt
            job = info["job"]
            del running[key]
            info["process"].join()
            if tag == "result":
                self._complete(job, message[3], time.monotonic() - info["started"])
                if self._on_shard is not None:
                    self._on_shard(self.records[job.key])
            elif tag == "error":
                descriptor = message[3]
                self._fail_or_retry(
                    job,
                    error_from_descriptor(descriptor),
                    descriptor.get("traceback"),
                )


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #


def _open_journal(journal: Union[CheckpointJournal, str, Path, None]):
    if journal is None:
        return None, False
    if isinstance(journal, CheckpointJournal):
        return journal, False
    return CheckpointJournal(journal), True


def _shard_bounds(batch: int, workers: int, shard_size: Optional[int]) -> List[tuple]:
    if shard_size is None:
        shard_size = max(1, -(-batch // max(workers, 1)))
    if isinstance(shard_size, bool) or not isinstance(shard_size, int) or shard_size < 1:
        raise ConfigError(f"shard_size must be a positive int, got {shard_size!r}")
    return [(start, min(start + shard_size, batch)) for start in range(0, batch, shard_size)]


def _run_scheduler(
    jobs: List[_Job],
    *,
    workers: int,
    journal: Optional[CheckpointJournal],
    retry: RetryPolicy,
    shard_timeout: Optional[float],
    heartbeat_interval: float,
    heartbeat_timeout: Optional[float],
    start_method: Optional[str],
    fault_markers: Optional[Dict[int, Dict[str, str]]],
    on_shard: Optional[Callable[[ShardRecord], None]],
) -> _Scheduler:
    scheduler = _Scheduler(
        jobs,
        workers=workers,
        journal=journal,
        retry=retry,
        shard_timeout=shard_timeout,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        start_method=start_method,
        fault_markers=fault_markers,
    )
    scheduler.run(on_shard)
    return scheduler


def _dispatch(
    jobs: List[_Job],
    *,
    remote,
    workers: int,
    journal: Optional[CheckpointJournal],
    retry: Optional[RetryPolicy],
    shard_timeout: Optional[float],
    heartbeat_interval: float,
    heartbeat_timeout: Optional[float],
    start_method: Optional[str],
    fault_markers: Optional[Dict[int, Dict[str, str]]],
    on_shard: Optional[Callable[[ShardRecord], None]],
):
    """Route jobs to the local pool or, with ``remote=``, the queue server."""
    if remote is not None:
        from repro.service.remote.client import run_remote
        from repro.service.remote.protocol import as_remote_config

        if fault_markers:
            raise ConfigError(
                "_fault_markers drive the local worker pool and cannot be "
                "combined with remote=; arm the remote worker's --kill-marker "
                "/ --hang-marker flags instead"
            )
        return run_remote(
            jobs,
            remote=as_remote_config(remote),
            journal=journal,
            on_shard=on_shard,
        )
    return _run_scheduler(
        jobs,
        workers=workers,
        journal=journal,
        retry=retry if retry is not None else RetryPolicy(),
        shard_timeout=shard_timeout,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        start_method=start_method,
        fault_markers=fault_markers,
        on_shard=on_shard,
    )


def run_study_service(
    algorithm,
    *,
    scenario=None,
    initial_values=None,
    rounds=None,
    pattern=None,
    graphs=None,
    record_every: int = 1,
    scenario_labels=None,
    model=None,
    certify=None,
    faults=None,
    config=None,
    workers: int = 4,
    shard_size: Optional[int] = None,
    journal: Union[CheckpointJournal, str, Path, None] = None,
    retry: Optional[RetryPolicy] = None,
    strict: bool = True,
    shard_timeout: Optional[float] = None,
    heartbeat_interval: float = 0.2,
    heartbeat_timeout: Optional[float] = None,
    start_method: Optional[str] = None,
    on_shard: Optional[Callable[[ShardRecord], None]] = None,
    remote=None,
    _fault_markers: Optional[Dict[int, Dict[str, str]]] = None,
):
    """Run a :class:`~repro.api.Study` as crash-safe shard jobs.

    The study parameters (everything up to ``config``) mirror
    :class:`repro.api.Study`; adversarial scenarios are rejected — an
    adaptive adversary reacts to the *whole* ensemble, so slicing it would
    change its choices (and its decision procedure is arbitrary code that
    does not serialize).  The remaining parameters drive the service layer:

    ``workers``
        Worker process pool size (and the default shard count).
    ``shard_size``
        Scenarios per shard; default splits the batch evenly over the pool.
    ``journal``
        A :class:`~repro.service.checkpoint.CheckpointJournal` (or a path
        to one) for crash-safe resume and cross-study deduplication.
    ``retry``
        The :class:`~repro.service.retry.RetryPolicy`; transient failures
        (killed/hung workers) back off and retry, deterministic engine
        errors fail fast.
    ``strict``
        ``True`` (default) returns the merged
        :class:`~repro.api.StudyResult` and *raises* the underlying error
        of the first exhausted shard.  ``False`` always returns a
        :class:`PartialStudyResult`.
    ``shard_timeout`` / ``heartbeat_interval`` / ``heartbeat_timeout``
        Per-attempt wall-clock budget and worker-liveness policing; a shard
        that exceeds either is killed and classified transient.
    ``on_shard``
        Streaming callback, invoked with each completed
        :class:`ShardRecord` as soon as the shard's result is journaled.
    ``remote``
        A :class:`~repro.service.remote.RemoteConfig` (or a queue server
        URL).  When set, jobs are dispatched to the remote job-queue
        server instead of the local multiprocessing pool; the worker-pool
        knobs (``workers``, timeouts, ``start_method``) are ignored —
        lease and retry policy live on the server — while ``journal``,
        ``retry``-independent resume, ``strict`` and ``on_shard`` behave
        identically.

    The merged result is **bit-for-bit identical** to the single-process
    ``Study(...).run()`` — outputs, diameters, certificates and provenance
    (modulo nothing: the merged config travels explicitly with every shard).

    Because the shipped config includes ``threads``, process-level sharding
    composes with the thread-level parallel backend: each worker re-enters
    the merged :class:`~repro.config.EngineConfig` and — when it carries
    ``threads > 1`` — shards its own B-slice across a thread pool (see
    :mod:`repro.execution.parallel`), without changing a byte of the merged
    result.  Size ``workers * threads`` to the machine's core count to avoid
    oversubscription.
    """
    from repro.api import Study
    from repro.config import EngineConfig, current_engine_config
    from repro.faults import as_fault_plan
    from repro.service.serialization import (
        encode_algorithm,
        encode_certify_spec,
        encode_model,
        encode_scenario_spec,
    )

    study = Study(
        algorithm=algorithm,
        scenario=scenario,
        initial_values=initial_values,
        rounds=rounds,
        pattern=pattern,
        graphs=graphs,
        record_every=record_every,
        scenario_labels=scenario_labels,
        model=model,
        certify=certify,
        faults=faults,
        config=config,
    )
    spec = study._spec
    if spec.adversary is not None:
        raise ConfigError(
            "adversarial studies cannot be sharded: the adversary adapts to "
            "the whole ensemble; run the adversary through Study directly and "
            "replay its committed schedules as a graphs= service study"
        )
    study_config = study._config if study._config is not None else EngineConfig()
    with study_config:
        merged_config = current_engine_config()
        resolved_plan = as_fault_plan(study._faults)

    algorithm_payload = encode_algorithm(study._algorithm)
    model_payload = None if study._model is None else encode_model(study._model)
    certify_payload = (
        None if study._certify is None else encode_certify_spec(study._certify)
    )
    config_payload = merged_config.to_dict()

    if not spec.is_ensemble():
        bounds = [(0, 1)]
    else:
        batch = int(np.asarray(spec.initial_values, dtype=float).shape[0])
        bounds = _shard_bounds(batch, workers, shard_size)

    jobs: List[_Job] = []
    jobs_by_key: Dict[str, _Job] = {}
    for index, (start, stop) in enumerate(bounds):
        shard_spec = _slice_scenario(spec, start, stop)
        shard_plan = resolved_plan
        if shard_plan is not None and spec.is_ensemble():
            shard_plan = replace(
                shard_plan, scenario_base=shard_plan.scenario_base + start
            )
        body = {
            "kind": "study_shard",
            "algorithm": algorithm_payload,
            "scenario": encode_scenario_spec(shard_spec),
            "model": model_payload,
            "certify": certify_payload,
            "faults": None if shard_plan is None else shard_plan.to_dict(),
            "config": config_payload,
        }
        key = content_key(body)
        existing = jobs_by_key.get(key)
        if existing is not None:
            existing.shards.append(index)
            continue
        job = _Job(
            key=key,
            payload={
                "kind": "study_shard",
                "body": body,
                "service": {"key": key, "start": start, "stop": stop},
            },
            shards=[index],
        )
        jobs.append(job)
        jobs_by_key[key] = job

    opened_journal, owns_journal = _open_journal(journal)
    try:
        scheduler = _dispatch(
            jobs,
            remote=remote,
            workers=workers,
            journal=opened_journal,
            retry=retry,
            shard_timeout=shard_timeout,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            start_method=start_method,
            fault_markers=_fault_markers,
            on_shard=on_shard,
        )
    finally:
        if owns_journal and opened_journal is not None:
            opened_journal.close()

    records, failures = _collect(scheduler, jobs, jobs_by_key)
    if failures:
        if strict:
            raise failures[0].error
        return PartialStudyResult(result=None, shards=records, failures=failures)
    merged = _merge_study_shards(
        [scheduler.results[job.key] for job in jobs],
        jobs,
        resolved_plan,
        ensemble=spec.is_ensemble(),
    )
    if strict:
        return merged
    return PartialStudyResult(result=merged, shards=records, failures=[])


def _slice_scenario(spec, start: int, stop: int):
    """The ``[start, stop)`` scenario slice of an ensemble spec."""
    from repro.api import ScenarioSpec
    from repro.models.patterns import CommunicationPattern

    if not spec.is_ensemble():
        return spec
    values = np.asarray(spec.initial_values, dtype=float)[start:stop]
    labels = (
        None
        if spec.scenario_labels is None
        else list(spec.scenario_labels)[start:stop]
    )
    pattern = spec.pattern
    if pattern is not None and not isinstance(pattern, CommunicationPattern):
        pattern = list(pattern)[start:stop]
    graphs = None
    if spec.graphs is not None:
        graphs = [
            entry if _is_shared_round(entry) else list(entry)[start:stop]
            for entry in spec.graphs
        ]
    return ScenarioSpec(
        initial_values=values,
        rounds=spec.rounds if graphs is None else None,
        pattern=pattern,
        graphs=graphs,
        record_every=spec.record_every,
        scenario_labels=labels,
    )


def _is_shared_round(entry) -> bool:
    from repro.graphs.digraph import CommunicationGraph

    return isinstance(entry, CommunicationGraph)


def _collect(scheduler: _Scheduler, jobs, jobs_by_key):
    """Per-shard records/failures in scenario order from the job-level maps."""
    records: List[ShardRecord] = []
    failures: List[ShardFailure] = []
    for job in jobs:
        record = scheduler.records.get(job.key)
        failure = scheduler.failures.get(job.key)
        for shard_index in job.shards:
            if record is not None:
                source = record.source if shard_index == job.shards[0] else "journal"
                records.append(replace(record, shard=shard_index, source=source))
            elif failure is not None:
                failures.append(replace(failure, shard=shard_index))
    records.sort(key=lambda record: record.shard)
    failures.sort(key=lambda failure: failure.shard)
    return records, failures


def _merge_study_shards(result_payloads, jobs, resolved_plan, *, ensemble: bool):
    """Decode journaled shard payloads and merge them in scenario order."""
    from repro.api import StudyResult
    from repro.execution.batch import merge_ensemble_executions

    # Expand deduplicated jobs back to one decoded result per shard index.
    by_shard: Dict[int, Any] = {}
    for job, payload in zip(jobs, result_payloads):
        decoded = StudyResult.from_dict(payload)
        for shard_index in job.shards:
            by_shard[shard_index] = decoded
    ordered = [by_shard[index] for index in sorted(by_shard)]
    if not ensemble:
        if len(ordered) != 1:
            raise ServiceError(
                f"single-scenario study produced {len(ordered)} shards"
            )
        return ordered[0]
    if len(ordered) == 1 and ordered[0].execution.fault_plan == resolved_plan:
        return ordered[0]
    execution = merge_ensemble_executions(
        [result.execution for result in ordered], fault_plan=resolved_plan
    )
    certificates = None
    if ordered[0].certificates is not None:
        certificates = [
            certificate
            for result in ordered
            for certificate in result.certificates
        ]
    return StudyResult(
        execution=execution,
        provenance=ordered[0].provenance,
        certificates=certificates,
    )


def run_certification_sweep_service(
    sizes: Sequence[int] = (4, 6),
    rounds: int = 24,
    suffix_rounds: int = 40,
    exploration_depth: int = 0,
    use_batch: Optional[bool] = None,
    config=None,
    ensemble_size: Optional[int] = None,
    ensemble_spread: float = 0.05,
    seed: int = 0,
    faults=None,
    *,
    workers: int = 4,
    journal: Union[CheckpointJournal, str, Path, None] = None,
    retry: Optional[RetryPolicy] = None,
    strict: bool = True,
    shard_timeout: Optional[float] = None,
    heartbeat_interval: float = 0.2,
    heartbeat_timeout: Optional[float] = None,
    start_method: Optional[str] = None,
    on_shard: Optional[Callable[[ShardRecord], None]] = None,
    remote=None,
    _fault_markers: Optional[Dict[int, Dict[str, str]]] = None,
):
    """Run the certification sweep with each grid row as one shard job.

    Mirrors :func:`repro.analysis.experiments.run_certification_sweep`
    (identical rows, in the identical order) but dispatches every row as a
    retry-protected, journaled worker job.  The service parameters match
    :func:`run_study_service`.
    """
    from repro.analysis.experiments import certification_sweep_rows
    from repro.config import EngineConfig, current_engine_config

    sweep_config = config if config is not None else EngineConfig()
    with sweep_config:
        merged_config = current_engine_config()
        descriptors = certification_sweep_rows(
            sizes=sizes,
            rounds=rounds,
            suffix_rounds=suffix_rounds,
            exploration_depth=exploration_depth,
            use_batch=use_batch,
            ensemble_size=ensemble_size,
            ensemble_spread=ensemble_spread,
            seed=seed,
            faults=faults,
        )
    config_payload = merged_config.to_dict()

    jobs: List[_Job] = []
    jobs_by_key: Dict[str, _Job] = {}
    for index, descriptor in enumerate(descriptors):
        body = {"kind": "sweep_row", "row": descriptor, "config": config_payload}
        key = content_key(body)
        existing = jobs_by_key.get(key)
        if existing is not None:
            existing.shards.append(index)
            continue
        job = _Job(
            key=key,
            payload={
                "kind": "sweep_row",
                "body": body,
                "service": {"key": key, "start": index, "stop": index + 1},
            },
            shards=[index],
        )
        jobs.append(job)
        jobs_by_key[key] = job

    opened_journal, owns_journal = _open_journal(journal)
    try:
        scheduler = _dispatch(
            jobs,
            remote=remote,
            workers=workers,
            journal=opened_journal,
            retry=retry,
            shard_timeout=shard_timeout,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            start_method=start_method,
            fault_markers=_fault_markers,
            on_shard=on_shard,
        )
    finally:
        if owns_journal and opened_journal is not None:
            opened_journal.close()

    records, failures = _collect(scheduler, jobs, jobs_by_key)
    if failures:
        if strict:
            raise failures[0].error
        return PartialStudyResult(result=None, shards=records, failures=failures)
    by_row: Dict[int, Any] = {}
    for job in jobs:
        row = scheduler.results[job.key]["row"]
        for shard_index in job.shards:
            by_row[shard_index] = row
    rows = [by_row[index] for index in sorted(by_row)]
    if strict:
        return rows
    return PartialStudyResult(result=rows, shards=records, failures=[])


__all__ = [
    "PartialStudyResult",
    "ShardFailure",
    "ShardRecord",
    "run_certification_sweep_service",
    "run_study_service",
]
