"""``python -m repro.service.status`` — tail a queue server's telemetry.

Connects to the server's SSE ``/events`` endpoint and prints one line per
shard lifecycle record (enqueued / leased / completed / failed / retried /
cache-hit, with worker ids, attempts and timings).  ``--after`` replays
history from a sequence number before going live; ``--limit`` exits after
that many records (useful in scripts and CI); ``--raw`` prints the JSON
records instead of formatted lines.
"""

from __future__ import annotations

import argparse
import json
import urllib.error
import urllib.request

from repro.exceptions import RemoteServiceError
from repro.service.remote.telemetry import format_event, iter_sse_events


def tail(
    url: str,
    *,
    after: int = 0,
    limit: int | None = None,
    raw: bool = False,
    write=print,
) -> int:
    """Stream telemetry from ``url`` and write one line per record.

    Returns the number of records written.  Blocks until ``limit`` records
    arrive (forever when ``limit`` is ``None``) or the stream closes.
    """
    endpoint = f"{url.rstrip('/')}/events?after={after}"
    try:
        response = urllib.request.urlopen(endpoint, timeout=None)
    except (urllib.error.URLError, OSError) as exc:
        raise RemoteServiceError(f"cannot reach {endpoint}: {exc}") from exc
    written = 0
    with response:
        for payload in iter_sse_events(response):
            write(json.dumps(payload) if raw else format_event(payload))
            written += 1
            if limit is not None and written >= limit:
                break
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.status",
        description="Tail the shard lifecycle telemetry of a job-queue server.",
    )
    parser.add_argument("--url", required=True, help="queue server base URL")
    parser.add_argument(
        "--after", type=int, default=0, help="replay records after this sequence"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="exit after this many records"
    )
    parser.add_argument(
        "--raw", action="store_true", help="print JSON records, not formatted lines"
    )
    args = parser.parse_args(argv)
    try:
        tail(args.url, after=args.after, limit=args.limit, raw=args.raw)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = ["main", "tail"]
