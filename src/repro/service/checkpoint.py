"""Append-only checkpoint journal of completed shard results.

The orchestrator keys every shard job by a **content hash** of its
canonical JSON body — ``(spec slice, config, certify, faults, shard
bounds)`` — and appends the shard's result payload to the journal as soon
as a worker reports it.  Because the key is pure content:

* a killed orchestrator resumes by re-running only the shards whose keys
  are missing from the journal, and
* identical shards across *different* studies (same spec, config and
  slice) deduplicate automatically — the second study replays the
  journaled result without spawning a worker.

The journal is a JSONL file: one header line, then one
``{"key": ..., "kind": ..., "result": ...}`` record per completed shard.
Appends are flushed and ``fsync``-ed before :meth:`CheckpointJournal.put`
returns, so a completed shard survives a SIGKILL of the orchestrator the
instant the worker's result is recorded.  Loading tolerates a truncated
final line (the torn write of a crash mid-append) but refuses corruption
anywhere else — a damaged middle means the file is not our journal.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.exceptions import ServiceError, UnsupportedVersionError
from repro.service.serialization import canonical_json

_MAGIC = "repro-service-journal"
_VERSION = 1
_RECORD_VERSION = 1


def content_key(payload: object) -> str:
    """The sha256 content hash of a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class CheckpointJournal:
    """Append-only JSONL journal of completed shard results, keyed by hash.

    Parameters
    ----------
    path:
        The journal file.  Created (with a header line) if missing; loaded
        and appended to if present.  A later record for a key already seen
        wins (last-writer-wins makes replayed appends harmless).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._records: Dict[str, dict] = {}
        self._load()
        self._handle = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(
                    json.dumps({"journal": _MAGIC, "version": _VERSION}) + "\n"
                )
                handle.flush()
                os.fsync(handle.fileno())
            return
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        # Drop a trailing empty segment from the final newline; what remains
        # is one JSON document per line, except possibly a torn final line.
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise ServiceError(f"{self.path} is empty, not a checkpoint journal")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"{self.path} does not start with a journal header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("journal") != _MAGIC:
            raise ServiceError(f"{self.path} is not a repro service journal")
        if header.get("version") != _VERSION:
            version = header.get("version")
            if isinstance(version, int) and version > _VERSION:
                raise UnsupportedVersionError(
                    f"{self.path} was written by journal version {version}, "
                    f"newer than supported; this library reads version {_VERSION}",
                    record_type=_MAGIC,
                    version=version,
                    supported=_VERSION,
                )
            raise ServiceError(
                f"{self.path} was written by journal version "
                f"{version!r}; this library reads version {_VERSION}"
            )
        for index, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == len(lines):
                    # A torn final line is the expected signature of a crash
                    # mid-append: everything before it is intact, so resume
                    # from there and re-run the lost shard.  Truncate the
                    # torn tail so records appended by this resume start on
                    # a fresh line instead of concatenating onto the tear.
                    intact = len(text.encode("utf-8")) - len(line.encode("utf-8"))
                    with open(self.path, "r+b") as handle:
                        handle.truncate(intact)
                    break
                raise ServiceError(
                    f"{self.path} line {index} is corrupt (not at end of file): {exc}"
                ) from exc
            if not isinstance(record, dict) or "key" not in record:
                raise ServiceError(f"{self.path} line {index} is not a shard record")
            version = record.get("version", 1)
            if isinstance(version, int) and version > _RECORD_VERSION:
                # Reject loudly instead of decoding half of a newer schema:
                # the record was journaled by a newer library.
                kind = record.get("kind", "shard")
                raise UnsupportedVersionError(
                    f"{self.path} line {index}: {kind!r} record version "
                    f"{version} is newer than supported (this library reads "
                    f"record versions 1..{_RECORD_VERSION}); refusing to decode",
                    record_type=kind,
                    version=version,
                    supported=_RECORD_VERSION,
                )
            self._records[record["key"]] = record

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, key: str) -> Optional[dict]:
        """The journaled result payload of ``key``, or ``None``."""
        record = self._records.get(key)
        return None if record is None else record["result"]

    def put(self, key: str, result: dict, kind: str = "shard") -> None:
        """Durably append one completed shard's result payload.

        Flushes and ``fsync``-s before returning: once ``put`` returns, the
        record survives a SIGKILL of the whole process tree.
        """
        record = {"key": key, "kind": kind, "version": _RECORD_VERSION, "result": result}
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._records[key] = record

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"CheckpointJournal({str(self.path)!r}, records={len(self)})"
