"""Retry policy for shard jobs: bounded attempts, backoff, failure triage.

A shard can fail two fundamentally different ways, and the orchestrator
must not treat them alike:

* **Transient** failures — a worker killed by a signal
  (:class:`~repro.exceptions.WorkerCrashError`), a shard that exceeded its
  wall-clock or heartbeat budget (:class:`~repro.exceptions.ShardTimeoutError`),
  or an *unrecognized* exception (assumed environmental) — are retried with
  exponential backoff up to :attr:`RetryPolicy.max_attempts`.
* **Deterministic** failures — any other :class:`~repro.exceptions.ReproError`
  subclass, e.g. :class:`~repro.exceptions.FaultModelError` or
  :class:`~repro.exceptions.EnsembleShapeError` — would recur identically on
  every attempt (the engines are deterministic by construction), so they
  fail fast on the first attempt.

Backoff jitter is *deterministic*: derived by hashing ``(shard key,
attempt)`` rather than sampling a clock-seeded RNG, so two orchestrator
runs over the same study schedule retries identically — reproducibility
extends to the failure path.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.exceptions import (
    ConfigError,
    ReproError,
    ShardTimeoutError,
    WorkerCrashError,
)

#: Exception types the orchestrator treats as transient (worth retrying).
_TRANSIENT_TYPES = (WorkerCrashError, ShardTimeoutError)


def is_transient_failure(error: BaseException) -> bool:
    """Whether a shard failure is worth retrying.

    Worker crashes and timeouts are transient.  Every *other* ``ReproError``
    is deterministic — the engines recompute the identical failure on every
    attempt — so it is never retried.  Unknown exception types (``OSError``,
    ``MemoryError``-adjacent failures from a dying worker, ...) are assumed
    environmental and retried.
    """
    if isinstance(error, _TRANSIENT_TYPES):
        return True
    if isinstance(error, ReproError):
        return False
    return True


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule with exponential backoff and deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Total attempts per shard (first run included).  ``1`` disables
        retries entirely.
    base_delay:
        Delay in seconds before the second attempt.
    backoff:
        Multiplier applied per additional attempt.
    max_delay:
        Cap on the pre-jitter delay.
    jitter:
        Fraction of the delay randomized (``0.25`` = up to ±0%…+25% added).
        The jitter value is a pure function of ``(key, attempt)`` — see
        :meth:`delay_before` — so schedules replay identically.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if isinstance(self.max_attempts, bool) or not isinstance(
            self.max_attempts, int
        ):
            raise ConfigError(f"max_attempts must be an int, got {self.max_attempts!r}")
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        for name in ("base_delay", "backoff", "max_delay", "jitter"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigError(f"{name} must be a number, got {value!r}")
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether to schedule attempt ``attempt + 1`` after ``error``.

        ``attempt`` is 1-based (the attempt that just failed).
        """
        if attempt >= self.max_attempts:
            return False
        return is_transient_failure(error)

    def delay_before(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before launching (1-based) attempt ``attempt``.

        Attempt 1 launches immediately.  Later attempts back off
        exponentially, capped at :attr:`max_delay`, plus a deterministic
        jitter fraction derived from ``sha256(key || attempt)`` — no clock,
        no global RNG, so identical inputs give identical schedules.
        """
        if attempt <= 1:
            return 0.0
        delay = self.base_delay * (self.backoff ** (attempt - 2))
        delay = min(delay, self.max_delay)
        if self.jitter > 0.0:
            digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
            (word,) = struct.unpack("<Q", digest[:8])
            fraction = word / float(2**64)  # in [0, 1)
            delay *= 1.0 + self.jitter * fraction
        return delay


__all__ = ["RetryPolicy", "is_transient_failure"]
