"""Shard worker process: runs one job, reports results, proves liveness.

A worker receives one *job payload* — ``{"kind", "body", "service"}`` where
``body`` is the content-hashed job description and ``service`` carries the
orchestration envelope (job key, attempt number, heartbeat interval) — and
communicates with the orchestrator exclusively through a multiprocessing
queue:

* ``("heartbeat", key, attempt)`` every ``heartbeat_interval`` seconds from
  a daemon thread, so the orchestrator can distinguish a *slow* shard from a
  *hung* one;
* ``("result", key, attempt, result_payload)`` on success — the payload is
  the JSON-safe encoding of the shard's :class:`~repro.api.StudyResult` (or
  sweep row), ready for the checkpoint journal;
* ``("error", key, attempt, descriptor)`` on failure — the descriptor
  carries the pickled exception (the structured exception types round-trip
  with their diagnostic fields intact) plus plain-text type/message/
  traceback fallbacks for exceptions that refuse to pickle.

A worker killed by a signal sends nothing; the orchestrator detects the
death from the process exit code and classifies it as transient.

The ``service`` section may carry *fault-injection markers* (used by the
crash tests and the CI smoke job): ``kill_marker`` names a file whose
existence makes the worker remove the file and ``SIGKILL`` itself before
doing any work; ``hang_marker`` likewise, but the worker sleeps forever
without ever heartbeating.  Both fire **before** the heartbeat thread
starts and consume their marker file, so the retry attempt runs clean.
"""

from __future__ import annotations

import base64
import os
import pickle
import signal
import threading
import time
import traceback
from typing import Any, Dict

from repro.exceptions import ServiceError


def _maybe_trigger_markers(markers: Dict[str, Any]) -> None:
    kill_marker = markers.get("kill_marker")
    if kill_marker and os.path.exists(kill_marker):
        os.remove(kill_marker)
        os.kill(os.getpid(), signal.SIGKILL)
    hang_marker = markers.get("hang_marker")
    if hang_marker and os.path.exists(hang_marker):
        os.remove(hang_marker)
        while True:  # pragma: no cover - killed by the orchestrator
            time.sleep(3600.0)


def describe_error(error: BaseException) -> Dict[str, Any]:
    """A queue-safe descriptor of a worker-side exception.

    The exception itself travels pickled (the library's structured
    exceptions define ``__reduce__`` so their keyword-only diagnostic
    fields survive); type name, message and traceback travel as plain
    strings so an unpicklable exception still produces a useful failure.
    """
    try:
        pickled = base64.b64encode(pickle.dumps(error)).decode("ascii")
    except Exception:
        pickled = None
    return {
        "type": type(error).__name__,
        "message": str(error),
        "traceback": "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        ),
        "pickled": pickled,
    }


def error_from_descriptor(descriptor: Dict[str, Any]) -> BaseException:
    """Rebuild the worker-side exception (or a ``ServiceError`` stand-in)."""
    pickled = descriptor.get("pickled")
    if pickled is not None:
        try:
            error = pickle.loads(base64.b64decode(pickled))
            if isinstance(error, BaseException):
                return error
        except Exception:
            pass
    return ServiceError(
        f"worker failed with {descriptor.get('type')}: {descriptor.get('message')}"
    )


def _run_study_shard(body: Dict[str, Any]) -> Dict[str, Any]:
    from repro.api import CertifySpec, ScenarioSpec, Study
    from repro.config import EngineConfig
    from repro.faults import FaultPlan
    from repro.service.serialization import decode_algorithm, decode_model

    result = Study(
        algorithm=decode_algorithm(body["algorithm"]),
        scenario=ScenarioSpec.from_dict(body["scenario"]),
        model=None if body["model"] is None else decode_model(body["model"]),
        certify=(
            None if body["certify"] is None else CertifySpec.from_dict(body["certify"])
        ),
        faults=None if body["faults"] is None else FaultPlan.from_dict(body["faults"]),
        config=EngineConfig.from_dict(body["config"]),
    ).run()
    return result.to_dict()


def _run_sweep_row(body: Dict[str, Any]) -> Dict[str, Any]:
    from repro.analysis.experiments import run_certification_row
    from repro.config import EngineConfig

    with EngineConfig.from_dict(body["config"]):
        return {"row": run_certification_row(body["row"])}


_RUNNERS = {
    "study_shard": _run_study_shard,
    "sweep_row": _run_sweep_row,
}


def shard_worker_main(payload: Dict[str, Any], queue) -> None:
    """Process entry point: run one job payload, report through ``queue``."""
    service = payload.get("service", {})
    key = service["key"]
    attempt = service["attempt"]
    _maybe_trigger_markers(service.get("markers") or {})

    stop = threading.Event()
    interval = float(service.get("heartbeat_interval", 0.2))

    def _beat() -> None:
        while not stop.wait(interval):
            try:
                queue.put(("heartbeat", key, attempt))
            except Exception:  # queue torn down: the orchestrator is gone
                return

    heartbeats = threading.Thread(target=_beat, daemon=True)
    heartbeats.start()
    try:
        runner = _RUNNERS.get(payload.get("kind"))
        if runner is None:
            raise ServiceError(f"unknown job kind {payload.get('kind')!r}")
        result = runner(payload["body"])
    except BaseException as error:
        stop.set()
        queue.put(("error", key, attempt, describe_error(error)))
    else:
        stop.set()
        queue.put(("result", key, attempt, result))
    finally:
        # Make sure the feeder thread has flushed the pipe before exit.
        queue.close()
        queue.join_thread()


def main(argv=None) -> int:
    """``python -m repro.service.worker --url ...`` runs a *remote* worker.

    The multiprocessing route spawns workers itself (:func:`shard_worker_main`
    as the process target); this entry point is how a worker joins a
    :class:`~repro.service.remote.server.JobQueueServer` from any machine.
    """
    from repro.service.remote.worker import main as remote_main

    return remote_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "describe_error",
    "error_from_descriptor",
    "main",
    "shard_worker_main",
]
