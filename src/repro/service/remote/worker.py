"""The remote worker agent: lease, heartbeat, run, report, repeat.

``python -m repro.service.worker --url http://HOST:PORT`` (or the
equivalent :func:`run_worker` call) turns any machine that can import this
library into a shard worker.  The agent polls the queue server for leases,
runs each job through the *same* runners the local multiprocessing route
uses (:data:`repro.service.worker._RUNNERS` — study shards and sweep
rows), heartbeats on the lease's cadence from a daemon thread while the
shard computes, and posts the result (or a pickled error descriptor) back.

A worker that dies mid-shard simply stops heartbeating; the server expires
the lease after ``lease_timeout`` seconds and re-queues the job for the
next surviving worker.  The ``--kill-marker`` / ``--hang-marker`` flags
arm the same fault-injection markers the local worker honors (the marker
file is consumed, then the worker SIGKILLs itself or hangs without
heartbeats) — they exist for the crash tests and the CI smoke job.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from typing import Optional

from repro.exceptions import RemoteServiceError
from repro.service.remote.protocol import JobRecord, LeaseRecord, http_json
from repro.service.worker import (
    _RUNNERS,
    _maybe_trigger_markers,
    describe_error,
)


def _heartbeat_loop(
    url: str,
    lease: LeaseRecord,
    stop: threading.Event,
    request_timeout: float,
) -> None:
    interval = max(float(lease.heartbeat_interval), 0.05)
    while not stop.wait(interval):
        try:
            answer = http_json(
                f"{url}/heartbeat",
                {"key": lease.key, "lease_id": lease.lease_id},
                timeout=request_timeout,
            )
        except RemoteServiceError:
            continue  # transient; the next beat may get through
        if not answer.get("ok"):
            return  # lease revoked: the job is someone else's now


def run_worker(
    url: str,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    stop_when_idle: bool = False,
    max_jobs: Optional[int] = None,
    kill_marker: Optional[str] = None,
    hang_marker: Optional[str] = None,
    request_timeout: float = 10.0,
    stop_event: Optional[threading.Event] = None,
) -> int:
    """Poll ``url`` for leases and run jobs until told to stop.

    Returns the number of jobs this worker *completed* (failures and
    cache-served jobs don't count).  ``stop_when_idle=True`` exits once the
    server reports no pending and no leased jobs; ``max_jobs`` bounds the
    completions; ``stop_event`` allows an embedding thread to interrupt the
    poll loop.
    """
    url = url.rstrip("/")
    worker = worker_id or f"worker-{os.getpid()}"
    markers = {"kill_marker": kill_marker, "hang_marker": hang_marker}
    completed = 0
    while stop_event is None or not stop_event.is_set():
        answer = http_json(f"{url}/lease", {"worker": worker}, timeout=request_timeout)
        if answer.get("lease") is None:
            if (
                stop_when_idle
                and answer.get("pending", 0) == 0
                and answer.get("leased", 0) == 0
            ):
                return completed
            time.sleep(poll_interval)
            continue
        lease = LeaseRecord.from_dict(answer["lease"])
        job = JobRecord.from_dict(answer["job"])
        # Fault-injection markers fire after the lease is claimed and before
        # any heartbeat: the server sees a worker that leased a shard and
        # went silent, which is exactly the failure being simulated.
        _maybe_trigger_markers(markers)
        stop_beats = threading.Event()
        beats = threading.Thread(
            target=_heartbeat_loop,
            args=(url, lease, stop_beats, request_timeout),
            daemon=True,
        )
        beats.start()
        try:
            runner = _RUNNERS.get(job.kind)
            if runner is None:
                raise RemoteServiceError(f"unknown job kind {job.kind!r}")
            result = runner(job.body)
        except BaseException as error:
            stop_beats.set()
            http_json(
                f"{url}/fail",
                {
                    "key": lease.key,
                    "lease_id": lease.lease_id,
                    "worker": worker,
                    "error": describe_error(error),
                },
                timeout=request_timeout,
            )
        else:
            stop_beats.set()
            http_json(
                f"{url}/complete",
                {
                    "key": lease.key,
                    "lease_id": lease.lease_id,
                    "worker": worker,
                    "result": result,
                },
                timeout=request_timeout,
            )
            completed += 1
            if max_jobs is not None and completed >= max_jobs:
                return completed
    return completed


def main(argv=None) -> int:
    """CLI entry point, also reachable as ``python -m repro.service.worker``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Run a remote shard worker against a job-queue server.",
    )
    parser.add_argument("--url", required=True, help="queue server base URL")
    parser.add_argument("--worker-id", default=None)
    parser.add_argument("--poll", type=float, default=0.2, dest="poll_interval")
    parser.add_argument(
        "--once", action="store_true", help="exit after completing one job"
    )
    parser.add_argument(
        "--stop-when-idle",
        action="store_true",
        help="exit when the server reports an empty queue",
    )
    parser.add_argument("--kill-marker", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--hang-marker", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--request-timeout", type=float, default=10.0)
    args = parser.parse_args(argv)

    completed = run_worker(
        args.url,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        stop_when_idle=args.stop_when_idle,
        max_jobs=1 if args.once else None,
        kill_marker=args.kill_marker,
        hang_marker=args.hang_marker,
        request_timeout=args.request_timeout,
    )
    print(f"worker exiting after {completed} completed job(s)", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = ["main", "run_worker"]
