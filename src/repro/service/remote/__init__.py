"""Remote worker service: HTTP job queue, streaming telemetry, result cache.

The remote layer distributes the crash-safe orchestrator across machines
with nothing but the standard library:

* :class:`~repro.service.remote.server.JobQueueServer` — a threaded HTTP
  job queue (enqueue / lease / heartbeat / complete / fail) with lease
  expiry, :class:`~repro.service.retry.RetryPolicy` triage, an SSE
  telemetry stream, and a shared content-keyed result cache
  (:class:`~repro.service.remote.cache.ResultCache`) in front of the
  checkpoint journal;
* :func:`~repro.service.remote.worker.run_worker` — the worker agent
  (``python -m repro.service.worker --url ...``) that leases jobs, runs
  them through the same shard runners as the multiprocessing route, and
  heartbeats while they compute;
* :class:`~repro.service.remote.client.RemoteDispatch` — the coordinator
  side, engaged through ``run_study_service(remote=RemoteConfig(...))``;
* ``python -m repro.service.status --url ...`` — a live tail of the
  telemetry stream.

All wire records are versioned canonical-JSON (see
:mod:`repro.service.remote.protocol`); unknown ``__type__`` or newer
``version`` headers are rejected loudly.
"""

from repro.service.remote.cache import ResultCache
from repro.service.remote.client import RemoteDispatch, run_remote
from repro.service.remote.protocol import (
    CacheHitRecord,
    JobRecord,
    LeaseRecord,
    RemoteConfig,
    TelemetryRecord,
    as_remote_config,
)
from repro.service.remote.server import JobQueueServer
from repro.service.remote.telemetry import TelemetryLog, iter_sse_events, sse_encode
from repro.service.remote.worker import run_worker

__all__ = [
    "CacheHitRecord",
    "JobQueueServer",
    "JobRecord",
    "LeaseRecord",
    "RemoteConfig",
    "RemoteDispatch",
    "ResultCache",
    "TelemetryLog",
    "TelemetryRecord",
    "as_remote_config",
    "iter_sse_events",
    "run_remote",
    "run_worker",
    "sse_encode",
]
