"""Server-side telemetry log and the server-sent-events wire format.

The queue server appends one :class:`~repro.service.remote.protocol.TelemetryRecord`
per shard lifecycle transition to a :class:`TelemetryLog` — an in-memory,
monotonically sequenced, thread-safe buffer guarded by a condition
variable.  The ``GET /events`` endpoint streams the log as standard
server-sent events (``id:``/``data:`` frames, one JSON record per frame):
a subscriber passes ``?after=<seq>`` (or the SSE ``Last-Event-ID`` header)
to replay everything it missed before going live, so a coordinator that
reconnects mid-study loses nothing.

The client half (:func:`iter_sse_events`) parses an SSE byte stream back
into record dicts; it is what the coordinator's telemetry thread and the
``python -m repro.service.status`` tail command both run on.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Iterator, List, Optional

from repro.service.remote.protocol import TELEMETRY_EVENTS, TelemetryRecord


class TelemetryLog:
    """Thread-safe, sequence-numbered buffer of telemetry records."""

    def __init__(self) -> None:
        self._records: List[TelemetryRecord] = []
        self._condition = threading.Condition()

    @property
    def last_seq(self) -> int:
        with self._condition:
            return len(self._records)

    def append(self, event: str, key: str, **fields) -> TelemetryRecord:
        """Record one lifecycle event; sequence numbers start at 1."""
        if event not in TELEMETRY_EVENTS:
            raise ValueError(f"unknown telemetry event {event!r}")
        with self._condition:
            record = TelemetryRecord(
                seq=len(self._records) + 1,
                event=event,
                key=key,
                timestamp=time.time(),
                **fields,
            )
            self._records.append(record)
            self._condition.notify_all()
            return record

    def since(self, after: int) -> List[TelemetryRecord]:
        """Every record with ``seq > after``, in order."""
        with self._condition:
            return list(self._records[after:]) if after < len(self._records) else []

    def wait(self, after: int, timeout: float) -> List[TelemetryRecord]:
        """Block up to ``timeout`` seconds for records past ``after``."""
        deadline = time.monotonic() + timeout
        with self._condition:
            while len(self._records) <= after:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._condition.wait(remaining):
                    return []
            return list(self._records[after:])


def sse_encode(record: TelemetryRecord) -> bytes:
    """One SSE frame: ``id:`` carries the sequence, ``data:`` the JSON record."""
    payload = json.dumps(record.to_dict(), separators=(",", ":"))
    return f"id: {record.seq}\ndata: {payload}\n\n".encode("utf-8")


def iter_sse_events(stream) -> Iterator[dict]:
    """Parse an SSE byte stream into record payload dicts.

    Accepts any iterable of ``bytes`` lines (an ``http.client`` response
    works directly).  Yields each frame's decoded ``data:`` JSON; comment
    frames (``:`` keep-alives) and bare ``id:`` lines are skipped.
    """
    data_lines: List[str] = []
    for raw in stream:
        line = raw.decode("utf-8", "replace").rstrip("\r\n")
        if line == "":
            if data_lines:
                yield json.loads("\n".join(data_lines))
                data_lines = []
            continue
        if line.startswith(":"):
            continue
        if line.startswith("data:"):
            data_lines.append(line[5:].lstrip())
    if data_lines:
        yield json.loads("\n".join(data_lines))


def format_event(payload: dict) -> str:
    """One human-readable line for the ``status`` tail command."""
    record = TelemetryRecord.from_dict(payload)
    parts = [f"[{record.seq:>5}]", f"{record.event:<9}", f"job={record.key[:12]}"]
    if record.worker is not None:
        parts.append(f"worker={record.worker}")
    if record.attempt is not None:
        parts.append(f"attempt={record.attempt}")
    if record.elapsed is not None:
        parts.append(f"elapsed={record.elapsed:.3f}s")
    if record.error_type is not None:
        parts.append(f"error={record.error_type}: {record.message}")
    return " ".join(parts)


__all__ = ["TelemetryLog", "format_event", "iter_sse_events", "sse_encode"]
