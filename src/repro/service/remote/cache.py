"""The shared result cache in front of the checkpoint journal.

Completed shard results are keyed by the same content hash the local
orchestrator journals under — ``content_key(job body)`` — so the cache
deduplicates **across studies and across coordinator restarts**: any study
that enqueues a shard identical to one ever completed (same spec slice,
config, certify and fault payloads) is served the journaled result without
a worker running.

The cache is two layers.  The in-memory dict absorbs the hot path; the
optional backing :class:`~repro.service.checkpoint.CheckpointJournal`
makes entries durable — a restarted queue server reloads every result it
ever served.  Writes go journal-first (fsync'd) so a SIGKILL between the
layers loses nothing.  Version policing is inherited from the journal and
codec layers: records written by a newer schema raise
:class:`~repro.exceptions.UnsupportedVersionError` naming the record type
instead of being half-decoded.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.service.checkpoint import CheckpointJournal


class ResultCache:
    """Content-keyed result store: in-memory dict over an optional journal."""

    def __init__(
        self, journal: Union[CheckpointJournal, str, Path, None] = None
    ) -> None:
        self._owns_journal = journal is not None and not isinstance(
            journal, CheckpointJournal
        )
        self._journal = (
            CheckpointJournal(journal)
            if self._owns_journal
            else (journal if isinstance(journal, CheckpointJournal) else None)
        )
        self._memory: Dict[str, dict] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            keys = set(self._memory)
            if self._journal is not None:
                keys.update(self._journal.keys())
            return len(keys)

    def __contains__(self, key: str) -> bool:
        return self.lookup(key)[0] is not None

    def lookup(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        """``(result payload, layer)`` for ``key`` — layer is ``"memory"``,
        ``"journal"``, or ``None`` on a miss.  Does not touch the counters."""
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                return result, "memory"
            if self._journal is not None:
                result = self._journal.get(key)
                if result is not None:
                    # Promote: later lookups skip the journal dict indirection.
                    self._memory[key] = result
                    return result, "journal"
            return None, None

    def get(self, key: str) -> Optional[dict]:
        """The cached result payload of ``key`` (counts a hit or miss)."""
        result, layer = self.lookup(key)
        with self._lock:
            if layer is None:
                self.misses += 1
            else:
                self.hits += 1
        return result

    def put(self, key: str, result: dict, kind: str = "shard") -> None:
        """Store one completed result (durably first, when journal-backed)."""
        with self._lock:
            if self._journal is not None:
                self._journal.put(key, result, kind=kind)
            self._memory[key] = result

    def close(self) -> None:
        if self._owns_journal and self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        backing = "journal" if self._journal is not None else "memory-only"
        return (
            f"ResultCache({backing}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


__all__ = ["ResultCache"]
