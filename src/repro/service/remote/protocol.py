"""Wire records and HTTP plumbing of the remote job-queue service.

Everything that crosses the coordinator/server/worker HTTP boundary is one
of four **versioned canonical-JSON records**, following the same format
contract as the campaign payloads (ROADMAP "reject unknown versions
loudly"): every record carries ``__type__`` and ``version`` headers, and
decoding a payload with an unknown type raises
:class:`~repro.exceptions.SerializationError` while a newer version raises
:class:`~repro.exceptions.UnsupportedVersionError` naming the record type.

* :class:`JobRecord` (``remote-job`` v1) — one content-keyed shard job, the
  exact ``{"kind", "body"}`` payload the local orchestrator ships to its
  ``multiprocessing`` workers, plus the key the body hashes to;
* :class:`LeaseRecord` (``remote-lease`` v1) — a bounded claim on a job:
  worker id, attempt number, lease token, and the heartbeat/expiry budgets
  the worker must honor;
* :class:`TelemetryRecord` (``remote-telemetry`` v1) — one shard lifecycle
  event (``enqueued``/``leased``/``completed``/``failed``/``retried``/
  ``cache-hit``) with worker id, attempt and timing, streamed over the SSE
  endpoint;
* :class:`CacheHitRecord` (``remote-cache-hit`` v1) — the server's answer
  when an enqueued job's key is already in the shared result cache: the
  job completes instantly, no worker runs.

:class:`RemoteConfig` is the coordinator-side handle passed as
``run_study_service(remote=...)``; :func:`http_json` is the one HTTP
client helper every remote component uses (stdlib ``urllib`` only).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.exceptions import ConfigError, RemoteServiceError
from repro.service.serialization import _check_header

JOB_TYPE = "remote-job"
LEASE_TYPE = "remote-lease"
TELEMETRY_TYPE = "remote-telemetry"
CACHE_HIT_TYPE = "remote-cache-hit"

#: Every shard lifecycle event the telemetry stream may carry.
TELEMETRY_EVENTS = (
    "enqueued",
    "leased",
    "completed",
    "failed",
    "retried",
    "cache-hit",
)


@dataclass(frozen=True)
class JobRecord:
    """One content-keyed job as it travels to (and from) the queue server."""

    key: str
    kind: str
    body: Dict[str, Any]

    def to_dict(self) -> dict:
        return {
            "__type__": JOB_TYPE,
            "version": 1,
            "key": self.key,
            "kind": self.kind,
            "body": self.body,
        }

    @staticmethod
    def from_dict(payload: dict) -> "JobRecord":
        _check_header(payload, JOB_TYPE)
        return JobRecord(
            key=payload["key"], kind=payload["kind"], body=payload["body"]
        )


@dataclass(frozen=True)
class LeaseRecord:
    """A worker's bounded claim on one job.

    ``lease_id`` authenticates heartbeats and completions for this attempt;
    ``expires_in`` is the seconds of heartbeat silence after which the
    server revokes the lease and re-queues the job (transient, per
    :func:`~repro.service.retry.is_transient_failure` semantics).
    """

    key: str
    lease_id: str
    worker: str
    attempt: int
    heartbeat_interval: float
    expires_in: float

    def to_dict(self) -> dict:
        return {
            "__type__": LEASE_TYPE,
            "version": 1,
            "key": self.key,
            "lease_id": self.lease_id,
            "worker": self.worker,
            "attempt": self.attempt,
            "heartbeat_interval": self.heartbeat_interval,
            "expires_in": self.expires_in,
        }

    @staticmethod
    def from_dict(payload: dict) -> "LeaseRecord":
        _check_header(payload, LEASE_TYPE)
        return LeaseRecord(
            key=payload["key"],
            lease_id=payload["lease_id"],
            worker=payload["worker"],
            attempt=payload["attempt"],
            heartbeat_interval=payload["heartbeat_interval"],
            expires_in=payload["expires_in"],
        )


@dataclass(frozen=True)
class TelemetryRecord:
    """One shard lifecycle event in the server's telemetry stream."""

    seq: int
    event: str
    key: str
    kind: Optional[str] = None
    worker: Optional[str] = None
    attempt: Optional[int] = None
    elapsed: Optional[float] = None
    error_type: Optional[str] = None
    message: Optional[str] = None
    timestamp: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "__type__": TELEMETRY_TYPE,
            "version": 1,
            "seq": self.seq,
            "event": self.event,
            "key": self.key,
            "kind": self.kind,
            "worker": self.worker,
            "attempt": self.attempt,
            "elapsed": self.elapsed,
            "error_type": self.error_type,
            "message": self.message,
            "timestamp": self.timestamp,
        }

    @staticmethod
    def from_dict(payload: dict) -> "TelemetryRecord":
        _check_header(payload, TELEMETRY_TYPE)
        return TelemetryRecord(
            seq=payload["seq"],
            event=payload["event"],
            key=payload["key"],
            kind=payload.get("kind"),
            worker=payload.get("worker"),
            attempt=payload.get("attempt"),
            elapsed=payload.get("elapsed"),
            error_type=payload.get("error_type"),
            message=payload.get("message"),
            timestamp=payload.get("timestamp"),
        )


@dataclass(frozen=True)
class CacheHitRecord:
    """The server's answer when an enqueued job is already in the cache."""

    key: str
    kind: str
    source: str  # "memory" or "journal"

    def to_dict(self) -> dict:
        return {
            "__type__": CACHE_HIT_TYPE,
            "version": 1,
            "key": self.key,
            "kind": self.kind,
            "source": self.source,
        }

    @staticmethod
    def from_dict(payload: dict) -> "CacheHitRecord":
        _check_header(payload, CACHE_HIT_TYPE)
        return CacheHitRecord(
            key=payload["key"], kind=payload["kind"], source=payload["source"]
        )


@dataclass(frozen=True)
class RemoteConfig:
    """Coordinator-side configuration of a remote study route.

    Pass as ``run_study_service(remote=RemoteConfig(url=...))`` (a bare URL
    string is promoted to a default config).  Retry/lease policy lives on
    the *server* — the coordinator only needs to know where the queue is
    and how patiently to wait.

    Attributes
    ----------
    url:
        Base URL of the job-queue server, e.g. ``"http://127.0.0.1:8737"``.
    request_timeout:
        Per-HTTP-request timeout in seconds.
    poll_interval:
        Fallback polling cadence (seconds) used to double-check pending
        jobs if the telemetry stream goes quiet.
    job_timeout:
        Overall budget for the whole remote dispatch (``None`` = wait
        forever); guards against a queue with no live workers.
    """

    url: str
    request_timeout: float = 10.0
    poll_interval: float = 2.0
    job_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.url, str) or not self.url.startswith(("http://", "https://")):
            raise ConfigError(
                f"RemoteConfig.url must be an http(s) URL, got {self.url!r}"
            )
        object.__setattr__(self, "url", self.url.rstrip("/"))


def as_remote_config(remote) -> RemoteConfig:
    """Promote a URL string to a :class:`RemoteConfig` (configs pass through)."""
    if isinstance(remote, RemoteConfig):
        return remote
    if isinstance(remote, str):
        return RemoteConfig(url=remote)
    raise ConfigError(
        f"remote must be a RemoteConfig or a server URL, got {type(remote).__name__}"
    )


def http_json(
    url: str,
    payload: Optional[dict] = None,
    *,
    timeout: float = 10.0,
) -> dict:
    """One JSON round-trip with the queue server (POST if ``payload`` else GET).

    Raises :class:`~repro.exceptions.RemoteServiceError` on connection
    failures, non-2xx statuses, and non-JSON responses, carrying the HTTP
    status when one was received.
    """
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            text = response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = exc.read().decode("utf-8", "replace")[:500]
        except Exception:
            pass
        raise RemoteServiceError(
            f"{url} answered HTTP {exc.code}: {detail or exc.reason}",
            status=exc.code,
        ) from exc
    except OSError as exc:  # URLError, ConnectionRefusedError, timeouts
        raise RemoteServiceError(f"cannot reach {url}: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise RemoteServiceError(f"{url} returned non-JSON: {text[:200]!r}") from exc


__all__ = [
    "CACHE_HIT_TYPE",
    "CacheHitRecord",
    "JOB_TYPE",
    "JobRecord",
    "LEASE_TYPE",
    "LeaseRecord",
    "RemoteConfig",
    "TELEMETRY_EVENTS",
    "TELEMETRY_TYPE",
    "TelemetryRecord",
    "as_remote_config",
    "http_json",
]
