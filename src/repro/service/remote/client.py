"""Coordinator-side dispatch of shard jobs to a remote queue server.

:class:`RemoteDispatch` is the drop-in counterpart of the orchestrator's
in-process ``_Scheduler``: it takes the same content-keyed job list, fills
the same ``results`` / ``records`` / ``failures`` maps, and streams the
same :class:`~repro.service.orchestrator.ShardRecord` objects through
``on_shard`` — so ``run_study_service(remote=...)`` reuses journal replay,
``_collect`` and ``merge_ensemble_executions`` unchanged, and the merged
result stays bit-for-bit identical to the single-process run.

The dispatch is event-driven with a polling safety net: a daemon thread
subscribes to the server's SSE telemetry stream (``/events?after=seq``,
where ``seq`` is sampled *before* the jobs are enqueued so no lifecycle
event can be missed), and the main loop additionally polls ``GET /job``
for still-pending keys every ``poll_interval`` seconds in case the stream
drops.  Results are journaled locally as they arrive, so a coordinator
SIGKILLed mid-dispatch resumes from its own journal exactly like the
multiprocessing route — and jobs completed while it was dead are served
from the server's shared cache on re-enqueue.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
import time
import urllib.request
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import RemoteServiceError
from repro.service.checkpoint import CheckpointJournal
from repro.service.remote.protocol import (
    JobRecord,
    RemoteConfig,
    TelemetryRecord,
    http_json,
)
from repro.service.remote.telemetry import iter_sse_events
from repro.service.worker import error_from_descriptor

_SSE_CLOSED = object()


class RemoteDispatch:
    """Run a job list against a remote queue server; mirror ``_Scheduler``."""

    def __init__(
        self,
        jobs: List[Any],
        *,
        remote: RemoteConfig,
        journal: Optional[CheckpointJournal],
    ) -> None:
        self._jobs = list(jobs)
        self._remote = remote
        self._journal = journal
        self.results: Dict[str, Any] = {}
        self.failures: Dict[str, Any] = {}
        self.records: Dict[str, Any] = {}
        self._events: "queue_module.Queue" = queue_module.Queue()
        self._sse_response = None
        self._on_shard: Optional[Callable[[Any], None]] = None

    # ------------------------------------------------------------------ #
    # Book-keeping shared with the local scheduler
    # ------------------------------------------------------------------ #

    def _record(self, job, *, source: str, attempts: int, elapsed: float):
        from repro.service.orchestrator import ShardRecord

        record = ShardRecord(
            shard=job.shards[0],
            key=job.key,
            start=job.payload["service"]["start"],
            stop=job.payload["service"]["stop"],
            attempts=attempts,
            source=source,
            elapsed=elapsed,
        )
        self.records[job.key] = record
        return record

    def _replay_journal(self) -> None:
        if self._journal is None:
            return
        for job in self._jobs:
            cached = self._journal.get(job.key)
            if cached is None:
                continue
            self.results[job.key] = cached
            record = self._record(job, source="journal", attempts=0, elapsed=0.0)
            if self._on_shard is not None:
                self._on_shard(record)

    def _finish(
        self, job, payload: dict, *, source: str, attempts: int, elapsed: float
    ) -> None:
        self.results[job.key] = payload
        if self._journal is not None:
            self._journal.put(job.key, payload, kind=job.payload["kind"])
        record = self._record(job, source=source, attempts=attempts, elapsed=elapsed)
        if self._on_shard is not None:
            self._on_shard(record)

    def _fail(self, job, descriptor: Optional[dict], attempts: int) -> None:
        from repro.service.orchestrator import ShardFailure

        descriptor = descriptor or {}
        error = error_from_descriptor(descriptor)
        self.failures[job.key] = ShardFailure(
            shard=job.shards[0],
            key=job.key,
            attempts=attempts,
            error=error,
            error_type=descriptor.get("type", type(error).__name__),
            message=descriptor.get("message", str(error)),
            traceback=descriptor.get("traceback"),
        )

    # ------------------------------------------------------------------ #
    # Server round-trips
    # ------------------------------------------------------------------ #

    def _call(self, endpoint: str, payload: Optional[dict] = None) -> dict:
        return http_json(
            f"{self._remote.url}{endpoint}",
            payload,
            timeout=self._remote.request_timeout,
        )

    def _fetch_result(self, job, *, source: str, attempts: int, elapsed: float) -> None:
        answer = self._call(f"/result?key={job.key}")
        payload = answer.get("result")
        if payload is None:
            raise RemoteServiceError(
                f"server reported job {job.key[:12]} completed but has no result"
            )
        self._finish(job, payload, source=source, attempts=attempts, elapsed=elapsed)

    def _fetch_error(self, job, attempts: int) -> None:
        answer = self._call(f"/error?key={job.key}")
        self._fail(job, answer.get("error"), attempts)

    # ------------------------------------------------------------------ #
    # Telemetry subscription
    # ------------------------------------------------------------------ #

    def _subscribe(self, after: int) -> None:
        url = f"{self._remote.url}/events?after={after}"

        def _reader() -> None:
            try:
                response = urllib.request.urlopen(url, timeout=None)
            except OSError:
                self._events.put(_SSE_CLOSED)
                return
            self._sse_response = response
            try:
                for payload in iter_sse_events(response):
                    self._events.put(payload)
            except Exception:
                pass  # stream torn down; the polling net takes over
            finally:
                self._events.put(_SSE_CLOSED)
                try:
                    # The reader owns close(): HTTPResponse.close() taken from
                    # another thread would block on the read lock readline()
                    # holds until the server's next keep-alive frame.
                    response.close()
                except Exception:
                    pass

        threading.Thread(target=_reader, daemon=True).start()

    def _close_stream(self) -> None:
        """Unblock the reader thread's pending readline() immediately.

        Shutting the socket down makes the blocked read return EOF at once;
        the reader thread then closes the response itself and exits.
        """
        response = self._sse_response
        if response is None:
            return
        try:
            response.fp.raw._sock.shutdown(socket.SHUT_RDWR)  # CPython layout
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self, on_shard: Optional[Callable[[Any], None]] = None) -> None:
        self._on_shard = on_shard
        self._replay_journal()
        pending: Dict[str, Any] = {
            job.key: job
            for job in self._jobs
            if job.key not in self.results and job.key not in self.failures
        }
        if not pending:
            return
        # Sample the telemetry cursor BEFORE enqueueing: every event about
        # our jobs lands strictly after it, so the stream cannot miss one.
        seq0 = int(self._call("/status").get("telemetry_seq", 0))
        self._subscribe(seq0)
        try:
            for job in list(pending.values()):
                record = JobRecord(
                    key=job.key, kind=job.payload["kind"], body=job.payload["body"]
                )
                answer = self._call("/enqueue", record.to_dict())
                status = answer.get("status")
                if status == "cached":
                    self._fetch_result(job, source="cache", attempts=0, elapsed=0.0)
                    del pending[job.key]
                elif status == "completed":
                    # Enqueued by an earlier run (or another study) and done.
                    self._fetch_result(job, source="cache", attempts=0, elapsed=0.0)
                    del pending[job.key]
                elif status == "failed":
                    self._fetch_error(job, attempts=0)
                    del pending[job.key]
            deadline = (
                None
                if self._remote.job_timeout is None
                else time.monotonic() + self._remote.job_timeout
            )
            last_poll = time.monotonic()
            while pending:
                if deadline is not None and time.monotonic() > deadline:
                    raise RemoteServiceError(
                        f"remote dispatch exceeded job_timeout="
                        f"{self._remote.job_timeout}s with {len(pending)} "
                        f"job(s) still pending (are any workers running?)"
                    )
                try:
                    event = self._events.get(timeout=self._remote.poll_interval)
                except queue_module.Empty:
                    event = None
                if event is not None and event is not _SSE_CLOSED:
                    self._handle_event(event, pending)
                    continue
                # Stream quiet (or gone): poll the pending keys directly.
                now = time.monotonic()
                if event is _SSE_CLOSED or now - last_poll >= self._remote.poll_interval:
                    last_poll = now
                    self._poll_pending(pending)
                    if event is _SSE_CLOSED:
                        time.sleep(self._remote.poll_interval)
        finally:
            self._close_stream()

    def _handle_event(self, payload: dict, pending: Dict[str, Any]) -> None:
        try:
            event = TelemetryRecord.from_dict(payload)
        except Exception:
            return  # not a telemetry record; ignore
        job = pending.get(event.key)
        if job is None:
            return
        if event.event == "completed":
            self._fetch_result(
                job,
                source="worker",
                attempts=event.attempt if event.attempt is not None else 1,
                elapsed=event.elapsed if event.elapsed is not None else 0.0,
            )
            del pending[event.key]
        elif event.event == "failed":
            self._fetch_error(
                job, attempts=event.attempt if event.attempt is not None else 1
            )
            del pending[event.key]
        elif event.event == "cache-hit":
            self._fetch_result(job, source="cache", attempts=0, elapsed=0.0)
            del pending[event.key]

    def _poll_pending(self, pending: Dict[str, Any]) -> None:
        for key, job in list(pending.items()):
            answer = self._call(f"/job?key={key}")
            status = answer.get("status")
            attempts = int(answer.get("attempts") or 0)
            if status == "completed":
                self._fetch_result(
                    job, source="worker", attempts=max(attempts, 1), elapsed=0.0
                )
                del pending[key]
            elif status == "failed":
                self._fetch_error(job, attempts=max(attempts, 1))
                del pending[key]
            elif status is None:
                # The server forgot the job (restarted queue): re-enqueue.
                record = JobRecord(
                    key=job.key, kind=job.payload["kind"], body=job.payload["body"]
                )
                self._call("/enqueue", record.to_dict())


def run_remote(
    jobs: List[Any],
    *,
    remote: RemoteConfig,
    journal: Optional[CheckpointJournal],
    on_shard: Optional[Callable[[Any], None]],
) -> RemoteDispatch:
    """Dispatch ``jobs`` remotely and return the filled scheduler-alike."""
    dispatch = RemoteDispatch(jobs, remote=remote, journal=journal)
    dispatch.run(on_shard)
    return dispatch


__all__ = ["RemoteDispatch", "run_remote"]
