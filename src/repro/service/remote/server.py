"""The HTTP job-queue server: enqueue, lease, complete, fail, stream.

A long-running :class:`JobQueueServer` (stdlib ``ThreadingHTTPServer``, no
dependencies) turns the crash-safe orchestrator into a distributed system:
coordinators enqueue content-keyed shard jobs, remote worker agents lease
them, and a shared :class:`~repro.service.remote.cache.ResultCache` in
front of the checkpoint journal serves any shard ever completed — across
studies and across restarts — without re-execution.

Endpoints (JSON bodies unless noted):

=====================  ======================================================
``POST /enqueue``      one ``remote-job`` record; answers ``enqueued``,
                       ``duplicate`` (job already known) or ``cached`` (a
                       ``remote-cache-hit`` record rides along)
``POST /lease``        claim the oldest ready job; answers the job plus a
                       ``remote-lease`` record, or ``lease: null``
``POST /heartbeat``    extend a lease; ``ok: false`` means it was revoked
``POST /complete``     deliver a result payload (journal-first, durable)
``POST /fail``         deliver an error descriptor; the server triages it
                       through :class:`~repro.service.retry.RetryPolicy`
``GET /result?key=``   the completed result payload (or ``null``)
``GET /error?key=``    the terminal error descriptor (or ``null``)
``GET /job?key=``      job status and attempt count
``GET /status``        queue/cache/telemetry summary
``GET /events``        server-sent-events telemetry stream; ``?after=seq``
                       (or ``Last-Event-ID``) replays missed records first
=====================  ======================================================

Failure semantics reuse the local orchestrator's triage verbatim: a lease
that expires without heartbeats is a :class:`~repro.exceptions.ShardTimeoutError`
(kind ``"lease"``) — *transient*, so the job is re-queued with the policy's
deterministic backoff and a ``retried`` telemetry record — while a worker
that reports a deterministic :class:`~repro.exceptions.ReproError` fails
the job fast.  Completions are accepted first-writer-wins even from an
expired lease: results are content-keyed and deterministic, so a late
result is the *same* result.
"""

from __future__ import annotations

import argparse
import json
import secrets
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.exceptions import ShardTimeoutError
from repro.service.checkpoint import content_key
from repro.service.remote.cache import ResultCache
from repro.service.remote.protocol import CacheHitRecord, JobRecord, LeaseRecord
from repro.service.remote.telemetry import TelemetryLog, sse_encode
from repro.service.retry import RetryPolicy
from repro.service.worker import describe_error, error_from_descriptor

_KEEPALIVE = b": keep-alive\n\n"


@dataclass
class _JobState:
    """Server-side lifecycle of one enqueued job."""

    record: JobRecord
    order: int
    status: str = "pending"  # pending | leased | completed | failed
    attempts: int = 0
    ready_at: float = 0.0
    lease_id: Optional[str] = None
    worker: Optional[str] = None
    leased_at: float = 0.0
    lease_expires: float = 0.0
    error: Optional[Dict[str, Any]] = field(default=None)


class JobQueueServer:
    """A threaded HTTP job queue with leases, retries, telemetry and a cache.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`url`).
    cache:
        A :class:`~repro.service.remote.cache.ResultCache`, a journal (or
        journal path) to back one with, or ``None`` for a memory-only cache.
    retry:
        The :class:`~repro.service.retry.RetryPolicy` triaging worker
        failures and lease expiries (transient → re-queued with backoff,
        deterministic → failed fast).
    lease_timeout:
        Seconds of heartbeat silence before a lease is revoked and its job
        re-queued.
    heartbeat_interval:
        The heartbeat cadence handed to workers with each lease.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache=None,
        retry: Optional[RetryPolicy] = None,
        lease_timeout: float = 30.0,
        heartbeat_interval: float = 0.2,
    ) -> None:
        self.cache = cache if isinstance(cache, ResultCache) else ResultCache(cache)
        self.retry = retry if retry is not None else RetryPolicy()
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.telemetry = TelemetryLog()
        self._jobs: Dict[str, _JobState] = {}
        self._order = 0
        self._lock = threading.Lock()
        self._running = False
        self._thread: Optional[threading.Thread] = None

        server = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.0"

            def log_message(self, format, *args):  # silence per-request noise
                pass

            def _json(self, payload: dict, status: int = 200) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _read_body(self) -> dict:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except json.JSONDecodeError:
                    return {}
                return payload if isinstance(payload, dict) else {}

            def do_POST(self) -> None:
                path = urlparse(self.path).path
                handler = {
                    "/enqueue": server._handle_enqueue,
                    "/lease": server._handle_lease,
                    "/heartbeat": server._handle_heartbeat,
                    "/complete": server._handle_complete,
                    "/fail": server._handle_fail,
                }.get(path)
                if handler is None:
                    self._json({"error": f"unknown endpoint {path}"}, status=404)
                    return
                try:
                    payload = self._read_body()
                    result, status = handler(payload)
                except Exception as exc:  # surface, don't kill the thread
                    self._json({"error": f"{type(exc).__name__}: {exc}"}, status=500)
                    return
                self._json(result, status=status)

            def do_GET(self) -> None:
                parsed = urlparse(self.path)
                if parsed.path == "/events":
                    self._stream_events(parse_qs(parsed.query))
                    return
                handler = {
                    "/result": server._handle_result,
                    "/error": server._handle_error,
                    "/job": server._handle_job,
                    "/status": server._handle_status,
                }.get(parsed.path)
                if handler is None:
                    self._json({"error": f"unknown endpoint {parsed.path}"}, status=404)
                    return
                try:
                    result, status = handler(parse_qs(parsed.query))
                except Exception as exc:
                    self._json({"error": f"{type(exc).__name__}: {exc}"}, status=500)
                    return
                self._json(result, status=status)

            def _stream_events(self, query: Dict[str, List[str]]) -> None:
                after = 0
                if "after" in query:
                    after = int(query["after"][0])
                elif self.headers.get("Last-Event-ID"):
                    after = int(self.headers["Last-Event-ID"])
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-cache")
                self.end_headers()
                idle_loops = 0
                try:
                    while server._running:
                        records = server.telemetry.wait(after, timeout=0.5)
                        # The stream doubles as the server's clock: expire
                        # leases even when no worker is polling /lease.
                        server._expire_leases()
                        if not records:
                            idle_loops += 1
                            if idle_loops >= 10:
                                self.wfile.write(_KEEPALIVE)
                                self.wfile.flush()
                                idle_loops = 0
                            continue
                        idle_loops = 0
                        for record in records:
                            self.wfile.write(sse_encode(record))
                            after = record.seq
                        self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    return  # subscriber went away

        daemon_server = ThreadingHTTPServer((host, port), _Handler)
        daemon_server.daemon_threads = True
        # SSE handler threads block in wait(); don't let shutdown() join them.
        daemon_server.block_on_close = False
        self._server = daemon_server

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "JobQueueServer":
        self._running = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.cache.close()

    def __enter__(self) -> "JobQueueServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------ #
    # Lease expiry: the transient path of the retry policy
    # ------------------------------------------------------------------ #

    def _expire_leases(self) -> None:
        now = time.monotonic()
        with self._lock:
            for job in self._jobs.values():
                if job.status != "leased" or now <= job.lease_expires:
                    continue
                error = ShardTimeoutError(
                    f"lease {job.lease_id} on job {job.record.key[:12]} "
                    f"(worker {job.worker}, attempt {job.attempts}) expired "
                    f"after {self.lease_timeout}s without a heartbeat",
                    elapsed=now - job.leased_at,
                    kind="lease",
                )
                worker = job.worker
                job.lease_id = None
                job.worker = None
                if self.retry.should_retry(error, job.attempts):
                    job.status = "pending"
                    job.ready_at = now + self.retry.delay_before(
                        job.attempts + 1, job.record.key
                    )
                    self.telemetry.append(
                        "retried",
                        job.record.key,
                        kind=job.record.kind,
                        worker=worker,
                        attempt=job.attempts,
                        error_type="ShardTimeoutError",
                        message=str(error),
                    )
                else:
                    job.status = "failed"
                    job.error = describe_error(error)
                    self.telemetry.append(
                        "failed",
                        job.record.key,
                        kind=job.record.kind,
                        worker=worker,
                        attempt=job.attempts,
                        error_type="ShardTimeoutError",
                        message=str(error),
                    )

    # ------------------------------------------------------------------ #
    # Endpoint implementations (each returns (payload, http status))
    # ------------------------------------------------------------------ #

    def _handle_enqueue(self, payload: dict):
        record = JobRecord.from_dict(payload)
        if content_key(record.body) != record.key:
            return (
                {"error": "job key does not hash its body", "key": record.key},
                400,
            )
        cached, layer = self.cache.lookup(record.key)
        with self._lock:
            existing = self._jobs.get(record.key)
            if existing is not None:
                return {"status": existing.status, "key": record.key}, 200
            if cached is not None:
                # Served from the shared cache: the job is born completed.
                self._jobs[record.key] = _JobState(
                    record=record, order=self._order, status="completed"
                )
                self._order += 1
            else:
                self._jobs[record.key] = _JobState(record=record, order=self._order)
                self._order += 1
        if cached is not None:
            hit = CacheHitRecord(key=record.key, kind=record.kind, source=layer)
            self.telemetry.append("cache-hit", record.key, kind=record.kind)
            return {"status": "cached", "cache_hit": hit.to_dict()}, 200
        self.telemetry.append("enqueued", record.key, kind=record.kind)
        return {"status": "enqueued", "key": record.key}, 200

    def _handle_lease(self, payload: dict):
        self._expire_leases()
        worker = str(payload.get("worker") or "anonymous")
        now = time.monotonic()
        with self._lock:
            pending = [j for j in self._jobs.values() if j.status == "pending"]
            leased = sum(1 for j in self._jobs.values() if j.status == "leased")
            ready = [j for j in pending if j.ready_at <= now]
            ready.sort(key=lambda j: j.order)
            if not ready:
                return {"lease": None, "pending": len(pending), "leased": leased}, 200
            job = ready[0]
            job.status = "leased"
            job.attempts += 1
            job.lease_id = secrets.token_hex(8)
            job.worker = worker
            job.leased_at = now
            job.lease_expires = now + self.lease_timeout
            lease = LeaseRecord(
                key=job.record.key,
                lease_id=job.lease_id,
                worker=worker,
                attempt=job.attempts,
                heartbeat_interval=self.heartbeat_interval,
                expires_in=self.lease_timeout,
            )
            job_payload = job.record.to_dict()
            attempt = job.attempts
        self.telemetry.append(
            "leased", lease.key, kind=job.record.kind, worker=worker, attempt=attempt
        )
        return {"lease": lease.to_dict(), "job": job_payload}, 200

    def _handle_heartbeat(self, payload: dict):
        key = payload.get("key")
        lease_id = payload.get("lease_id")
        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.status != "leased" or job.lease_id != lease_id:
                return {"ok": False}, 200
            job.lease_expires = time.monotonic() + self.lease_timeout
            return {"ok": True}, 200

    def _handle_complete(self, payload: dict):
        key = payload.get("key")
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                return {"ok": False, "error": f"unknown job {key!r}"}, 404
            if job.status == "completed":
                return {"ok": True, "duplicate": True}, 200
            # First result wins, even from an expired lease: the job body is
            # content-keyed and the engines deterministic, so a late result
            # is bit-for-bit the result.
            stale = job.lease_id != payload.get("lease_id")
            elapsed = time.monotonic() - job.leased_at if job.leased_at else None
            attempt = job.attempts
            worker = payload.get("worker") or job.worker
            job.status = "completed"
            job.lease_id = None
        self.cache.put(key, payload["result"], kind=job.record.kind)
        self.telemetry.append(
            "completed",
            key,
            kind=job.record.kind,
            worker=worker,
            attempt=attempt,
            elapsed=elapsed,
        )
        return {"ok": True, "stale_lease": stale}, 200

    def _handle_fail(self, payload: dict):
        key = payload.get("key")
        descriptor = payload.get("error") or {}
        error = error_from_descriptor(descriptor)
        now = time.monotonic()
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                return {"ok": False, "error": f"unknown job {key!r}"}, 404
            if job.status in ("completed", "failed"):
                return {"ok": True, "duplicate": True}, 200
            worker = payload.get("worker") or job.worker
            attempt = job.attempts
            job.lease_id = None
            job.worker = None
            if self.retry.should_retry(error, job.attempts):
                job.status = "pending"
                job.ready_at = now + self.retry.delay_before(
                    job.attempts + 1, job.record.key
                )
                event = "retried"
            else:
                job.status = "failed"
                job.error = descriptor
                event = "failed"
        self.telemetry.append(
            event,
            key,
            kind=job.record.kind,
            worker=worker,
            attempt=attempt,
            error_type=descriptor.get("type"),
            message=descriptor.get("message"),
        )
        return {"ok": True, "retried": event == "retried"}, 200

    def _handle_result(self, query: Dict[str, List[str]]):
        key = query.get("key", [None])[0]
        result, _layer = self.cache.lookup(key) if key else (None, None)
        return {"key": key, "result": result}, 200

    def _handle_error(self, query: Dict[str, List[str]]):
        key = query.get("key", [None])[0]
        with self._lock:
            job = self._jobs.get(key)
            descriptor = job.error if job is not None else None
        return {"key": key, "error": descriptor}, 200

    def _handle_job(self, query: Dict[str, List[str]]):
        self._expire_leases()
        key = query.get("key", [None])[0]
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                return {"key": key, "status": None}, 200
            return (
                {
                    "key": key,
                    "status": job.status,
                    "attempts": job.attempts,
                    "worker": job.worker,
                },
                200,
            )

    def _handle_status(self, query: Dict[str, List[str]]):
        self._expire_leases()
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
        return (
            {
                "telemetry_seq": self.telemetry.last_seq,
                "jobs": counts,
                "cache": {
                    "entries": len(self.cache),
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                },
                "lease_timeout": self.lease_timeout,
            },
            200,
        )


def main(argv=None) -> int:
    """CLI: ``python -m repro.service.remote.server --port 8737 --cache c.jsonl``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.remote.server",
        description="Run the remote job-queue server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8737, help="0 picks a free port")
    parser.add_argument(
        "--cache", default=None, help="checkpoint journal backing the result cache"
    )
    parser.add_argument("--lease-timeout", type=float, default=30.0)
    parser.add_argument("--heartbeat-interval", type=float, default=0.2)
    parser.add_argument("--max-attempts", type=int, default=3)
    args = parser.parse_args(argv)

    server = JobQueueServer(
        host=args.host,
        port=args.port,
        cache=args.cache,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        lease_timeout=args.lease_timeout,
        heartbeat_interval=args.heartbeat_interval,
    )
    server.start()
    print(f"repro job-queue server listening on {server.url}", flush=True)
    try:
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = ["JobQueueServer", "main"]
