"""Versioned JSON codecs for specs, plans, configs and results.

Everything the orchestrator ships to a worker process — and everything a
worker journals back — crosses the boundary as JSON produced here.  The
encodings are

* **bit-for-bit faithful**: float arrays travel as base64-encoded raw
  bytes (dtype and shape alongside), scalar floats rely on Python's
  shortest-repr round-trip, so a decoded :class:`~repro.api.StudyResult`
  is array-for-array identical to the one the worker computed;
* **versioned**: every payload carries ``__type__`` and ``version``
  headers, and decoding a payload written by a newer schema raises
  :class:`~repro.exceptions.SerializationError` instead of guessing; and
* **canonical**: a given object always encodes to the same payload
  (sorted recipient sets, registry-named algorithms), which is what lets
  the checkpoint journal content-hash ``(spec, config, shard)`` and
  deduplicate identical shards across studies.

Not everything is serializable by design: adversary-routed studies carry
an adaptive :class:`~repro.models.patterns.AdversarialPattern` whose
decision procedure is arbitrary code — replay its committed schedules as
a ``graphs=`` study instead — and algorithms built from arbitrary
callables (``CallableWeightAveraging``) are likewise rejected with a
clear error.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Callable, Dict, Optional, Tuple, Type

import numpy as np

from repro.exceptions import SerializationError, UnsupportedVersionError

_ARRAY = "ndarray"


def canonical_json(payload: Any) -> str:
    """The canonical JSON text of a payload (stable key order, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=True)


def _check_header(payload: Any, expected: str, max_version: int = 1) -> None:
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a dict payload for {expected}, got {type(payload).__name__}"
        )
    found = payload.get("__type__")
    if found != expected:
        raise SerializationError(f"expected a {expected} payload, got __type__={found!r}")
    version = payload.get("version")
    if not isinstance(version, int) or version < 1:
        raise SerializationError(
            f"{expected} payload version {version!r} is not supported "
            f"(this library reads versions 1..{max_version})"
        )
    if version > max_version:
        raise UnsupportedVersionError(
            f"{expected} record version {version} is newer than supported "
            f"(this library reads versions 1..{max_version}); refusing to decode",
            record_type=expected,
            version=version,
            supported=max_version,
        )


# ---------------------------------------------------------------------- #
# Arrays and opaque state values
# ---------------------------------------------------------------------- #


def encode_array(array: np.ndarray) -> dict:
    """Encode an ndarray as raw little-endian bytes (bit-for-bit)."""
    array = np.ascontiguousarray(array)
    if array.dtype == bool:
        dtype = "bool"
        data = np.packbits(array.reshape(-1))
    else:
        dtype = array.dtype.str
        data = array
    return {
        "__type__": _ARRAY,
        "version": 1,
        "dtype": dtype,
        "shape": list(array.shape),
        "data": base64.b64encode(data.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    _check_header(payload, _ARRAY)
    raw = base64.b64decode(payload["data"])
    shape = tuple(payload["shape"])
    if payload["dtype"] == "bool":
        count = int(np.prod(shape)) if shape else 1
        flat = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), count=count)
        return flat.astype(bool).reshape(shape)
    return np.frombuffer(raw, dtype=np.dtype(payload["dtype"])).reshape(shape).copy()


#: Registered dataclass state types, by payload name.  Agent states recorded
#: in configurations are opaque to the engines; the codec handles any
#: dataclass registered here whose fields are themselves encodable values.
_STATE_TYPES: Dict[str, Type] = {}


def register_state_type(cls: Type, name: Optional[str] = None) -> Type:
    """Register a dataclass agent-state type with the value codec."""
    _STATE_TYPES[name or cls.__name__] = cls
    return cls


def _state_name(cls: Type) -> Optional[str]:
    for name, registered in _STATE_TYPES.items():
        if registered is cls:
            return name
    return None


def encode_value(value: Any) -> Any:
    """Encode an arbitrary (state-like) value tree as JSON.

    Handles JSON natives, numpy arrays and scalars, tuples vs lists
    (distinguished — configuration-state equality is type-sensitive),
    frozensets, string-keyed dicts, and registered dataclass state types.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    if isinstance(value, (np.bool_,)):
        return {"__type__": "npscalar", "kind": "bool", "value": bool(value)}
    if isinstance(value, np.integer):
        return {"__type__": "npscalar", "kind": "int", "value": int(value)}
    if isinstance(value, np.floating):
        # Encode through the array codec so NaN payloads and signed zeros
        # survive bit-for-bit.
        return {
            "__type__": "npscalar",
            "kind": "float",
            "value": encode_array(np.asarray(value)),
        }
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, tuple):
        return {"__type__": "tuple", "items": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"__type__": "list", "items": [encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        items = [encode_value(item) for item in value]
        items.sort(key=canonical_json)
        return {"__type__": "frozenset", "items": items}
    if isinstance(value, dict):
        if not all(isinstance(key, str) for key in value):
            raise SerializationError(
                "only string-keyed dicts are JSON-serializable; got keys "
                f"{sorted(map(repr, value))[:3]}"
            )
        return {
            "__type__": "dict",
            "items": {key: encode_value(item) for key, item in value.items()},
        }
    name = _state_name(type(value))
    if name is not None and hasattr(value, "__dataclass_fields__"):
        return {
            "__type__": "state",
            "version": 1,
            "state_type": name,
            "fields": {
                field: encode_value(getattr(value, field))
                for field in value.__dataclass_fields__
            },
        }
    raise SerializationError(
        f"cannot serialize a value of type {type(value).__name__}; register "
        "dataclass state types with repro.service.serialization.register_state_type"
    )


def decode_value(payload: Any) -> Any:
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if not isinstance(payload, dict):
        raise SerializationError(f"cannot decode value payload {payload!r}")
    kind = payload.get("__type__")
    if kind == _ARRAY:
        return decode_array(payload)
    if kind == "npscalar":
        if payload["kind"] == "bool":
            return np.bool_(payload["value"])
        if payload["kind"] == "int":
            return np.int64(payload["value"])
        return decode_array(payload["value"])[()]
    if kind == "tuple":
        return tuple(decode_value(item) for item in payload["items"])
    if kind == "list":
        return [decode_value(item) for item in payload["items"]]
    if kind == "frozenset":
        return frozenset(decode_value(item) for item in payload["items"])
    if kind == "dict":
        return {key: decode_value(item) for key, item in payload["items"].items()}
    if kind == "state":
        _check_header(payload, "state")
        name = payload["state_type"]
        cls = _STATE_TYPES.get(name)
        if cls is None:
            raise SerializationError(f"unknown registered state type {name!r}")
        return cls(
            **{field: decode_value(item) for field, item in payload["fields"].items()}
        )
    raise SerializationError(f"cannot decode value payload of type {kind!r}")


# ---------------------------------------------------------------------- #
# Graphs, models, patterns
# ---------------------------------------------------------------------- #


def encode_graph(graph) -> dict:
    from repro.graphs.digraph import CommunicationGraph

    if not isinstance(graph, CommunicationGraph):
        raise SerializationError(
            f"expected a CommunicationGraph, got {type(graph).__name__}"
        )
    return {
        "__type__": "CommunicationGraph",
        "version": 1,
        "n": graph.n,
        "adjacency": encode_array(graph.adjacency),
        "name": graph.name,
    }


def decode_graph(payload: dict):
    from repro.graphs.digraph import CommunicationGraph

    _check_header(payload, "CommunicationGraph")
    return CommunicationGraph(
        payload["n"], adjacency=decode_array(payload["adjacency"]), name=payload["name"]
    )


def encode_model(model) -> dict:
    from repro.models.network_model import NetworkModel

    if not isinstance(model, NetworkModel):
        raise SerializationError(f"expected a NetworkModel, got {type(model).__name__}")
    return {
        "__type__": "NetworkModel",
        "version": 1,
        "graphs": [encode_graph(graph) for graph in model.graphs],
        "name": model.name,
    }


def decode_model(payload: dict):
    from repro.models.network_model import NetworkModel

    _check_header(payload, "NetworkModel")
    return NetworkModel(
        [decode_graph(item) for item in payload["graphs"]], name=payload["name"]
    )


#: Oblivious pattern codecs, by payload name: (class, encode, decode).
_PATTERN_CODECS: Dict[str, Tuple[Type, Callable, Callable]] = {}


def _register_patterns() -> None:
    if _PATTERN_CODECS:
        return
    from repro.models.patterns import (
        ConstantPattern,
        PeriodicPattern,
        RandomPattern,
        SequencePattern,
        SigmaBlockPattern,
    )

    _PATTERN_CODECS.update(
        {
            "constant": (
                ConstantPattern,
                lambda p: {"graph": encode_graph(p._graph)},
                lambda body: ConstantPattern(decode_graph(body["graph"])),
            ),
            "periodic": (
                PeriodicPattern,
                lambda p: {"graphs": [encode_graph(g) for g in p._graphs]},
                lambda body: PeriodicPattern(
                    [decode_graph(g) for g in body["graphs"]]
                ),
            ),
            "sequence": (
                SequencePattern,
                lambda p: {
                    "prefix": [encode_graph(g) for g in p._prefix],
                    "suffix": encode_pattern(p._suffix),
                },
                lambda body: SequencePattern(
                    [decode_graph(g) for g in body["prefix"]],
                    suffix=decode_pattern(body["suffix"]),
                ),
            ),
            "random": (
                RandomPattern,
                lambda p: {
                    "graphs": [encode_graph(g) for g in p._graphs],
                    "seed": p._seed,
                },
                lambda body: RandomPattern(
                    [decode_graph(g) for g in body["graphs"]], seed=body["seed"]
                ),
            ),
            "sigma-block": (
                SigmaBlockPattern,
                lambda p: {
                    "n": p._n,
                    "choices": list(p._choices) if p._choices is not None else None,
                    "seed": p._seed,
                },
                lambda body: SigmaBlockPattern(
                    body["n"], choices=body["choices"], seed=body["seed"]
                ),
            ),
        }
    )


def encode_pattern(pattern) -> dict:
    from repro.models.patterns import AdversarialPattern

    _register_patterns()
    if isinstance(pattern, AdversarialPattern):
        raise SerializationError(
            "adversarial patterns are not serializable: their decision procedure "
            "is arbitrary code; run the adversary fault-free and replay its "
            "committed schedules as a graphs= study instead"
        )
    for name, (cls, encode, _decode) in _PATTERN_CODECS.items():
        if type(pattern) is cls:
            body = encode(pattern)
            return {"__type__": "pattern", "version": 1, "pattern": name, **body}
    raise SerializationError(
        f"no pattern codec is registered for {type(pattern).__name__}; "
        "serializable patterns: " + ", ".join(sorted(_PATTERN_CODECS))
    )


def decode_pattern(payload: dict):
    _register_patterns()
    _check_header(payload, "pattern")
    name = payload["pattern"]
    codec = _PATTERN_CODECS.get(name)
    if codec is None:
        raise SerializationError(f"unknown pattern codec {name!r}")
    return codec[2](payload)


# ---------------------------------------------------------------------- #
# Algorithms
# ---------------------------------------------------------------------- #

#: Algorithm codecs, by payload name: (class, encode params, decode).
_ALGORITHM_CODECS: Dict[str, Tuple[Type, Callable, Callable]] = {}


def register_algorithm_codec(
    name: str, cls: Type, encode: Callable, decode: Callable
) -> None:
    """Register a codec for an :class:`~repro.algorithms.base.Algorithm` type.

    ``encode(algorithm)`` returns a JSON-safe constructor-parameter dict;
    ``decode(params)`` rebuilds an equivalent instance.  New algorithms
    become service-shardable by registering here.
    """
    _ALGORITHM_CODECS[name] = (cls, encode, decode)


def _register_algorithms() -> None:
    if _ALGORITHM_CODECS:
        return
    from repro.algorithms import (
        AmortizedMidpointAlgorithm,
        DecidingAlgorithm,
        FloodingExactConsensus,
        HegselmannKrauseAlgorithm,
        MassSplittingAlgorithm,
        MeanAlgorithm,
        MidpointAlgorithm,
        SelfWeightedAveraging,
        TwoAgentThirdsAlgorithm,
    )
    from repro.asynchrony import MinRelaySyncAlgorithm

    register_algorithm_codec(
        "midpoint", MidpointAlgorithm, lambda a: {}, lambda p: MidpointAlgorithm()
    )
    register_algorithm_codec(
        "mean", MeanAlgorithm, lambda a: {}, lambda p: MeanAlgorithm()
    )
    register_algorithm_codec(
        "two-agent-thirds",
        TwoAgentThirdsAlgorithm,
        lambda a: {},
        lambda p: TwoAgentThirdsAlgorithm(),
    )
    register_algorithm_codec(
        "amortized-midpoint",
        AmortizedMidpointAlgorithm,
        lambda a: {"phase_length": a._phase_length_override},
        lambda p: AmortizedMidpointAlgorithm(phase_length=p["phase_length"]),
    )
    register_algorithm_codec(
        "hegselmann-krause",
        HegselmannKrauseAlgorithm,
        lambda a: {"confidence": a.confidence, "validate": a._validate},
        lambda p: HegselmannKrauseAlgorithm(p["confidence"], validate=p["validate"]),
    )
    register_algorithm_codec(
        "self-weighted",
        SelfWeightedAveraging,
        lambda a: {"self_weight": a._self_weight, "validate": a._validate},
        lambda p: SelfWeightedAveraging(p["self_weight"], validate=p["validate"]),
    )
    register_algorithm_codec(
        "flooding-exact",
        FloodingExactConsensus,
        lambda a: {"horizon": a.horizon},
        lambda p: FloodingExactConsensus(p["horizon"]),
    )
    register_algorithm_codec(
        "mass-splitting",
        MassSplittingAlgorithm,
        lambda a: {"graph": encode_graph(a.graph)},
        lambda p: MassSplittingAlgorithm(decode_graph(p["graph"])),
    )
    register_algorithm_codec(
        "min-relay-sync",
        MinRelaySyncAlgorithm,
        lambda a: {},
        lambda p: MinRelaySyncAlgorithm(),
    )
    register_algorithm_codec(
        "deciding",
        DecidingAlgorithm,
        lambda a: {
            "inner": encode_algorithm(a.inner),
            "decision_round": a.decision_round,
        },
        lambda p: DecidingAlgorithm(
            decode_algorithm(p["inner"]), p["decision_round"]
        ),
    )


def encode_algorithm(algorithm) -> dict:
    _register_algorithms()
    for name, (cls, encode, _decode) in _ALGORITHM_CODECS.items():
        if type(algorithm) is cls:
            return {
                "__type__": "algorithm",
                "version": 1,
                "algorithm": name,
                "params": encode(algorithm),
            }
    raise SerializationError(
        f"no algorithm codec is registered for {type(algorithm).__name__}; "
        "register one with repro.service.serialization.register_algorithm_codec "
        "(algorithms built from arbitrary callables cannot cross process "
        "boundaries)"
    )


def decode_algorithm(payload: dict):
    _register_algorithms()
    _check_header(payload, "algorithm")
    name = payload["algorithm"]
    codec = _ALGORITHM_CODECS.get(name)
    if codec is None:
        raise SerializationError(f"unknown algorithm codec {name!r}")
    return codec[2](payload["params"])


def registered_algorithm_names() -> Tuple[str, ...]:
    """The names of every registered algorithm codec, sorted.

    This is the authoritative list of serializable algorithms — the campaign
    registry audit (:func:`repro.campaign.registry.audit_registry`) compares
    it against the fuzz registry so every algorithm that can cross a process
    boundary is also differentially fuzzed.
    """
    _register_algorithms()
    return tuple(sorted(_ALGORITHM_CODECS))


# ---------------------------------------------------------------------- #
# Scenario and certify specs
# ---------------------------------------------------------------------- #


def encode_scenario_spec(spec) -> dict:
    from repro.api import ScenarioSpec

    if not isinstance(spec, ScenarioSpec):
        raise SerializationError(f"expected a ScenarioSpec, got {type(spec).__name__}")
    if spec.adversary is not None:
        raise SerializationError(
            "adversary-routed scenarios are not serializable (the adversary's "
            "decision procedure is arbitrary code); replay its committed "
            "schedules as a graphs= scenario instead"
        )
    pattern: Any = None
    if spec.pattern is not None:
        if isinstance(spec.pattern, (list, tuple)):
            pattern = {
                "kind": "per-scenario",
                "patterns": [encode_pattern(p) for p in spec.pattern],
            }
        else:
            pattern = {"kind": "shared", "patterns": [encode_pattern(spec.pattern)]}
    graphs: Any = None
    if spec.graphs is not None:
        rounds = []
        for entry in spec.graphs:
            if isinstance(entry, (list, tuple)):
                rounds.append(
                    {"kind": "per-scenario", "graphs": [encode_graph(g) for g in entry]}
                )
            else:
                rounds.append({"kind": "shared", "graphs": [encode_graph(entry)]})
        graphs = rounds
    values = np.asarray(spec.initial_values, dtype=float)
    return {
        "__type__": "ScenarioSpec",
        "version": 1,
        "initial_values": encode_array(values),
        "rounds": spec.rounds,
        "pattern": pattern,
        "graphs": graphs,
        "record_every": spec.record_every,
        "scenario_labels": (
            None
            if spec.scenario_labels is None
            else [encode_value(label) for label in spec.scenario_labels]
        ),
    }


def decode_scenario_spec(payload: dict):
    from repro.api import ScenarioSpec

    _check_header(payload, "ScenarioSpec")
    pattern = None
    if payload["pattern"] is not None:
        decoded = [decode_pattern(p) for p in payload["pattern"]["patterns"]]
        pattern = decoded if payload["pattern"]["kind"] == "per-scenario" else decoded[0]
    graphs = None
    if payload["graphs"] is not None:
        graphs = []
        for entry in payload["graphs"]:
            decoded = [decode_graph(g) for g in entry["graphs"]]
            graphs.append(decoded if entry["kind"] == "per-scenario" else decoded[0])
    labels = payload["scenario_labels"]
    return ScenarioSpec(
        initial_values=decode_array(payload["initial_values"]),
        rounds=None if graphs is not None else payload["rounds"],
        pattern=pattern,
        graphs=graphs,
        record_every=payload["record_every"],
        scenario_labels=(
            None if labels is None else [decode_value(label) for label in labels]
        ),
    )


def encode_certify_spec(spec) -> dict:
    from repro.api import CertifySpec

    if not isinstance(spec, CertifySpec):
        raise SerializationError(f"expected a CertifySpec, got {type(spec).__name__}")
    return {
        "__type__": "CertifySpec",
        "version": 1,
        "suffix_rounds": spec.suffix_rounds,
        "exploration_depth": spec.exploration_depth,
        "use_batch": spec.use_batch,
        "scenario_chunk": spec.scenario_chunk,
    }


def decode_certify_spec(payload: dict):
    from repro.api import CertifySpec

    _check_header(payload, "CertifySpec")
    return CertifySpec(
        suffix_rounds=payload["suffix_rounds"],
        exploration_depth=payload["exploration_depth"],
        use_batch=payload["use_batch"],
        scenario_chunk=payload["scenario_chunk"],
    )


# ---------------------------------------------------------------------- #
# Executions, certificates, results
# ---------------------------------------------------------------------- #


def _encode_configuration(configuration) -> dict:
    return {
        "round_number": configuration.round_number,
        "outputs": encode_array(configuration.outputs),
        "states": [encode_value(state) for state in configuration.states],
    }


def _decode_configuration(payload: dict):
    from repro.execution.state import Configuration

    return Configuration(
        states=tuple(decode_value(state) for state in payload["states"]),
        outputs=decode_array(payload["outputs"]),
        round_number=payload["round_number"],
    )


def encode_execution(execution) -> dict:
    from repro.execution.batch import AdversarialEnsembleExecution, EnsembleExecution
    from repro.execution.execution import Execution

    if isinstance(execution, EnsembleExecution):
        payload = {
            "__type__": "EnsembleExecution",
            "version": 1,
            "algorithm_name": execution.algorithm_name,
            "recorded_rounds": list(execution.recorded_rounds),
            "recorded_outputs": encode_array(execution.recorded_outputs),
            "scenario_labels": (
                None
                if execution.scenario_labels is None
                else [encode_value(label) for label in execution.scenario_labels]
            ),
            "batched": execution.batched,
            "recorded_configurations": (
                None
                if execution.recorded_configurations is None
                else [
                    [_encode_configuration(c) for c in per_round]
                    for per_round in execution.recorded_configurations
                ]
            ),
            "fault_plan": (
                None if execution.fault_plan is None else execution.fault_plan.to_dict()
            ),
        }
        if isinstance(execution, AdversarialEnsembleExecution):
            payload["__type__"] = "AdversarialEnsembleExecution"
            payload["round_choices"] = [
                [encode_graph(graph) for graph in choices]
                for choices in execution.round_choices
            ]
        return payload
    if isinstance(execution, Execution):
        return {
            "__type__": "Execution",
            "version": 1,
            "algorithm_name": execution.algorithm_name,
            "configurations": [
                _encode_configuration(c) for c in execution.configurations
            ],
            "graphs": [encode_graph(graph) for graph in execution.graphs],
        }
    raise SerializationError(
        f"expected an Execution or EnsembleExecution, got {type(execution).__name__}"
    )


def decode_execution(payload: dict):
    from repro.execution.batch import AdversarialEnsembleExecution, EnsembleExecution
    from repro.execution.execution import Execution
    from repro.faults import FaultPlan

    kind = payload.get("__type__") if isinstance(payload, dict) else None
    if kind == "Execution":
        _check_header(payload, "Execution")
        return Execution(
            algorithm_name=payload["algorithm_name"],
            configurations=[
                _decode_configuration(c) for c in payload["configurations"]
            ],
            graphs=[decode_graph(graph) for graph in payload["graphs"]],
        )
    if kind in ("EnsembleExecution", "AdversarialEnsembleExecution"):
        _check_header(payload, kind)
        labels = payload["scenario_labels"]
        recorded = payload["recorded_configurations"]
        common = dict(
            algorithm_name=payload["algorithm_name"],
            recorded_rounds=list(payload["recorded_rounds"]),
            recorded_outputs=decode_array(payload["recorded_outputs"]),
            scenario_labels=(
                None if labels is None else [decode_value(label) for label in labels]
            ),
            batched=payload["batched"],
            recorded_configurations=(
                None
                if recorded is None
                else [
                    [_decode_configuration(c) for c in per_round]
                    for per_round in recorded
                ]
            ),
            fault_plan=(
                None
                if payload["fault_plan"] is None
                else FaultPlan.from_dict(payload["fault_plan"])
            ),
        )
        if kind == "AdversarialEnsembleExecution":
            return AdversarialEnsembleExecution(
                **common,
                round_choices=[
                    [decode_graph(graph) for graph in choices]
                    for choices in payload["round_choices"]
                ],
            )
        return EnsembleExecution(**common)
    raise SerializationError(f"cannot decode execution payload of type {kind!r}")


def _encode_float(value: Optional[float]) -> Any:
    # json handles nan/inf via the non-strict allow_nan mode; None passes.
    return value if value is None else float(value)


def _encode_estimate(estimate) -> dict:
    return {
        "limits": encode_array(estimate.limits),
        "lower_diameter": _encode_float(estimate.lower_diameter),
        "upper_diameter": _encode_float(estimate.upper_diameter),
    }


def _decode_estimate(payload: dict):
    from repro.core.valency import ValencyEstimate

    return ValencyEstimate(
        limits=decode_array(payload["limits"]),
        lower_diameter=payload["lower_diameter"],
        upper_diameter=payload["upper_diameter"],
    )


def _encode_certificates(certificates) -> dict:
    return {
        "estimates": [_encode_estimate(e) for e in certificates.estimates],
        "valency_trace": [float(v) for v in certificates.valency_trace],
        "output_rate": _encode_float(certificates.output_rate),
        "rate_interval": [
            _encode_float(certificates.rate_interval[0]),
            _encode_float(certificates.rate_interval[1]),
        ],
    }


def _decode_certificates(payload: dict):
    from repro.api import StudyCertificates

    return StudyCertificates(
        estimates=[_decode_estimate(e) for e in payload["estimates"]],
        valency_trace=list(payload["valency_trace"]),
        output_rate=payload["output_rate"],
        rate_interval=(payload["rate_interval"][0], payload["rate_interval"][1]),
    )


def encode_provenance(provenance) -> dict:
    return {
        "__type__": "StudyProvenance",
        "version": 1,
        "route": provenance.route,
        "fast_path": provenance.fast_path,
        "batched": provenance.batched,
        "config": provenance.config.to_dict(),
        "faulted": provenance.faulted,
    }


def decode_provenance(payload: dict):
    from repro.api import StudyProvenance
    from repro.config import EngineConfig

    _check_header(payload, "StudyProvenance")
    return StudyProvenance(
        route=payload["route"],
        fast_path=payload["fast_path"],
        batched=payload["batched"],
        config=EngineConfig.from_dict(payload["config"]),
        faulted=payload["faulted"],
    )


def encode_study_result(result) -> dict:
    from repro.api import StudyResult

    if not isinstance(result, StudyResult):
        raise SerializationError(f"expected a StudyResult, got {type(result).__name__}")
    if result.certificates is None:
        certificates: Any = None
    elif isinstance(result.certificates, list):
        certificates = {
            "kind": "per-scenario",
            "items": [_encode_certificates(c) for c in result.certificates],
        }
    else:
        certificates = {
            "kind": "single",
            "items": [_encode_certificates(result.certificates)],
        }
    return {
        "__type__": "StudyResult",
        "version": 1,
        "execution": encode_execution(result.execution),
        "provenance": encode_provenance(result.provenance),
        "certificates": certificates,
    }


def decode_study_result(payload: dict):
    from repro.api import StudyResult

    _check_header(payload, "StudyResult")
    encoded = payload["certificates"]
    if encoded is None:
        certificates: Any = None
    elif encoded["kind"] == "per-scenario":
        certificates = [_decode_certificates(c) for c in encoded["items"]]
    else:
        certificates = _decode_certificates(encoded["items"][0])
    return StudyResult(
        execution=decode_execution(payload["execution"]),
        provenance=decode_provenance(payload["provenance"]),
        certificates=certificates,
    )


def _register_default_states() -> None:
    from repro.algorithms.amortized_midpoint import (
        AmortizedMidpointBatchState,
        AmortizedMidpointState,
    )
    from repro.algorithms.approximate import DecidingBatchState, DecidingState

    for cls in (
        AmortizedMidpointState,
        AmortizedMidpointBatchState,
        DecidingState,
        DecidingBatchState,
    ):
        if _state_name(cls) is None:
            register_state_type(cls)


_register_default_states()
