"""Seeded random generators for communication graphs.

These are used by tests (property-based testing on random graphs), by the
ablation benchmarks, and by the example applications to build random dynamic
networks.  All generators take an explicit :class:`numpy.random.Generator`;
they never touch global random state.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.properties import is_nonsplit, is_rooted


def random_graph(
    n: int, rng: np.random.Generator, edge_probability: float = 0.5, name: Optional[str] = None
) -> CommunicationGraph:
    """A random digraph on ``n`` agents: each non-loop edge present independently.

    Self-loops are always present (as required by the system model).
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    adj = rng.random((n, n)) < edge_probability
    np.fill_diagonal(adj, True)
    return CommunicationGraph(n, adjacency=adj, name=name)


def random_rooted_graph(
    n: int,
    rng: np.random.Generator,
    edge_probability: float = 0.3,
    max_tries: int = 1000,
) -> CommunicationGraph:
    """A random *rooted* digraph (contains a rooted spanning tree).

    A random spanning arborescence rooted at a random agent is planted first,
    then extra edges are added independently, so the result is always rooted
    regardless of ``edge_probability``.
    """
    if n < 1:
        raise GraphError("need at least one agent")
    del max_tries  # kept for API compatibility; construction never fails
    root = int(rng.integers(n))
    order = [root] + list(rng.permutation([i for i in range(n) if i != root]))
    adj = rng.random((n, n)) < edge_probability
    np.fill_diagonal(adj, True)
    # Plant a random arborescence: each non-root node receives an edge from an
    # earlier node in the random order.
    for idx in range(1, n):
        child = order[idx]
        parent = order[int(rng.integers(idx))]
        adj[parent, child] = True
    graph = CommunicationGraph(n, adjacency=adj, name="random-rooted")
    assert is_rooted(graph)
    return graph


def random_nonsplit_graph(
    n: int,
    rng: np.random.Generator,
    edge_probability: float = 0.3,
) -> CommunicationGraph:
    """A random *non-split* digraph (any two agents have a common in-neighbor).

    A random "broadcaster" agent that sends to everyone is planted, which makes
    the graph non-split by construction; extra edges are added independently.
    """
    if n < 1:
        raise GraphError("need at least one agent")
    adj = rng.random((n, n)) < edge_probability
    np.fill_diagonal(adj, True)
    broadcaster = int(rng.integers(n))
    adj[broadcaster, :] = True
    graph = CommunicationGraph(n, adjacency=adj, name="random-nonsplit")
    assert is_nonsplit(graph)
    return graph


def random_rooted_model(
    n: int,
    size: int,
    rng: np.random.Generator,
    edge_probability: float = 0.3,
) -> List[CommunicationGraph]:
    """A list of ``size`` random rooted graphs (a random rooted network model)."""
    return [random_rooted_graph(n, rng, edge_probability) for _ in range(size)]


def random_nonsplit_model(
    n: int,
    size: int,
    rng: np.random.Generator,
    edge_probability: float = 0.3,
) -> List[CommunicationGraph]:
    """A list of ``size`` random non-split graphs (a random non-split network model)."""
    return [random_nonsplit_graph(n, rng, edge_probability) for _ in range(size)]
