"""Communication-graph substrate.

This package implements the graph-theoretic objects of the paper's dynamic
system model (Section 2): directed communication graphs with self-loops,
their structural properties (roots, rooted, non-split), graph products,
the specific graph families used in the lower-bound proofs (H0/H1/H2,
deaf(G), the Ψ graphs), random generators, the α/β relations of Coulouma et
al. used in Section 7, and solvability characterizations.
"""

from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import (
    complete_graph,
    crash_tolerant_graphs,
    cycle_graph,
    deaf_family,
    deaf_variant,
    directed_path_graph,
    directed_star_graph,
    psi_family,
    psi_graph,
    two_agent_graphs,
)
from repro.graphs.generators import (
    random_graph,
    random_nonsplit_graph,
    random_rooted_graph,
)
from repro.graphs.packed import (
    in_neighborhood_ids,
    is_nonsplit_stack,
    is_rooted_stack,
    is_strongly_connected_stack,
    pack_adjacency_rows,
    product_sequence_stack,
    product_stack,
    reachability_stack,
    roots_stack,
    stack_adjacencies,
)
from repro.graphs.products import power, product, product_sequence, product_sequence_batch
from repro.graphs.properties import (
    is_complete,
    is_nonsplit,
    is_rooted,
    is_strongly_connected,
    reachable_set,
    roots,
)
from repro.graphs.relations import (
    alpha_classes,
    alpha_diameter,
    alpha_related,
    alpha_related_union,
    alpha_relation_matrix,
    alpha_star_related,
    alpha_witness_tensor,
    beta_classes,
    is_source_incompatible,
)
from repro.graphs.solvability import (
    asymptotic_consensus_solvable,
    exact_consensus_solvable,
    unsolvable_beta_classes,
)

__all__ = [
    "CommunicationGraph",
    "complete_graph",
    "crash_tolerant_graphs",
    "cycle_graph",
    "deaf_family",
    "deaf_variant",
    "directed_path_graph",
    "directed_star_graph",
    "psi_family",
    "psi_graph",
    "two_agent_graphs",
    "random_graph",
    "random_nonsplit_graph",
    "random_rooted_graph",
    "power",
    "product",
    "product_sequence",
    "product_sequence_batch",
    "stack_adjacencies",
    "pack_adjacency_rows",
    "in_neighborhood_ids",
    "product_stack",
    "product_sequence_stack",
    "reachability_stack",
    "roots_stack",
    "is_rooted_stack",
    "is_nonsplit_stack",
    "is_strongly_connected_stack",
    "is_complete",
    "is_nonsplit",
    "is_rooted",
    "is_strongly_connected",
    "reachable_set",
    "roots",
    "alpha_classes",
    "alpha_diameter",
    "alpha_related",
    "alpha_related_union",
    "alpha_relation_matrix",
    "alpha_star_related",
    "alpha_witness_tensor",
    "beta_classes",
    "is_source_incompatible",
    "asymptotic_consensus_solvable",
    "exact_consensus_solvable",
    "unsolvable_beta_classes",
]
