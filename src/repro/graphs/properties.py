"""Structural properties of communication graphs.

The paper's solvability and lower-bound results are phrased in terms of a few
structural predicates on communication graphs:

* ``roots(G)`` — the set ``R(G)`` of agents with a directed path to every
  other agent (Section 7).
* ``is_rooted(G)`` — ``G`` contains a rooted spanning tree, i.e.
  ``R(G) != {}`` (the solvability characterization of asymptotic consensus,
  Theorem 1 of [Charron-Bost et al., ICALP'15] quoted as Theorem 1/Section 2.2).
* ``is_nonsplit(G)`` — any two agents have a common in-neighbor (Section 1,
  Section 5).

All functions accept a :class:`~repro.graphs.digraph.CommunicationGraph`.
"""

from __future__ import annotations

from typing import FrozenSet

import numpy as np

from repro.graphs.digraph import CommunicationGraph


def reachability_matrix(graph: CommunicationGraph) -> np.ndarray:
    """Boolean matrix ``R`` with ``R[i, j]`` true iff there is a directed path i -> j.

    Self-loops make every node reachable from itself.  Computed by repeated
    boolean squaring of ``I + A``, which needs ``O(log n)`` boolean matrix
    products.
    """
    closure = graph.adjacency.copy()
    n = graph.n
    # Repeated squaring: after k squarings, paths of length up to 2^k are covered.
    steps = max(1, int(np.ceil(np.log2(max(n, 2)))))
    for _ in range(steps):
        closure = closure | (closure @ closure)
    return closure


def reachable_set(graph: CommunicationGraph, source: int) -> FrozenSet[int]:
    """Agents reachable from ``source`` by a directed path (including ``source``)."""
    closure = reachability_matrix(graph)
    return frozenset(np.nonzero(closure[source, :])[0].tolist())


def roots(graph: CommunicationGraph) -> FrozenSet[int]:
    """The set ``R(G)`` of roots of ``G``.

    A *root* is an agent that has a directed path to every other agent.  The
    paper (Section 7) uses ``R(G)`` both to define the α relation and to
    state source-incompatibility.
    """
    closure = reachability_matrix(graph)
    all_reached = closure.all(axis=1)
    return frozenset(np.nonzero(all_reached)[0].tolist())


def is_rooted(graph: CommunicationGraph) -> bool:
    """True iff ``G`` contains a rooted spanning tree (``R(G)`` is non-empty).

    Rooted network models are exactly the models in which asymptotic
    consensus is solvable (Section 2.2).
    """
    return len(roots(graph)) > 0


def is_strongly_connected(graph: CommunicationGraph) -> bool:
    """True iff every agent can reach every other agent."""
    return bool(reachability_matrix(graph).all())


def is_nonsplit(graph: CommunicationGraph) -> bool:
    """True iff any two agents have a common in-neighbor.

    Non-split graphs are the communication graphs arising in benign classical
    failure models (synchronous crashes, asynchronous minority crashes, send
    omissions) and admit the midpoint algorithm with contraction rate 1/2.
    """
    adj = graph.adjacency
    # (Aᵀ A)[i, j] is true iff i and j share an in-neighbor; non-split means
    # the whole boolean Gram matrix is true (one matmul instead of the
    # O(n²) pairwise Python loop).
    return bool((adj.T @ adj).all())


def is_complete(graph: CommunicationGraph) -> bool:
    """True iff the graph is the complete digraph ``K_n`` (all edges present)."""
    return bool(graph.adjacency.all())


def common_in_neighbors(graph: CommunicationGraph, i: int, j: int) -> FrozenSet[int]:
    """The set of common in-neighbors of agents ``i`` and ``j``."""
    return graph.in_neighbors(i) & graph.in_neighbors(j)


def has_rooted_spanning_tree(graph: CommunicationGraph) -> bool:
    """Alias of :func:`is_rooted`, matching the phrasing of the solvability theorem."""
    return is_rooted(graph)


def nonsplit_implies_rooted_witness(graph: CommunicationGraph) -> bool:
    """Check the textbook fact that every non-split graph is rooted.

    Returns True when the implication holds for ``graph`` (i.e. the graph is
    either split or rooted).  Exposed mainly for property-based tests.
    """
    return (not is_nonsplit(graph)) or is_rooted(graph)
