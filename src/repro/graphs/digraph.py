"""Immutable directed communication graphs with self-loops.

A communication graph models the communications of a single round
(Section 2 of the paper): nodes are agents, and an edge ``(i, j)`` means that
agent ``j`` receives agent ``i``'s round-``t`` message.  Every agent can
always "communicate with itself instantaneously", so every communication
graph contains a self-loop at each node; the constructor enforces this.

The class is immutable and hashable, so graphs can be collected into sets
(network models) and used as dictionary keys (e.g. when memoizing valencies
per successor graph).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.types import pack_bool_rows

Edge = Tuple[int, int]


class CommunicationGraph:
    """A directed graph on agents ``0 .. n-1`` with a self-loop at every node.

    Parameters
    ----------
    n:
        Number of agents.  Must be at least 1.
    edges:
        Iterable of ``(i, j)`` pairs meaning *i sends to j* (``j`` receives
        from ``i``).  Self-loops are added automatically and need not be
        listed.  Mutually exclusive with ``adjacency``.
    adjacency:
        Boolean ``(n, n)`` matrix with ``adjacency[i, j]`` true iff there is
        an edge ``i -> j``.  The diagonal is forced to ``True``.
    name:
        Optional human-readable name (e.g. ``"H1"`` or ``"Psi_2"``), used in
        ``repr`` and reports; it does not participate in equality or hashing.

    Examples
    --------
    >>> g = CommunicationGraph(2, edges=[(0, 1)], name="H1")
    >>> sorted(g.in_neighbors(1))
    [0, 1]
    >>> sorted(g.in_neighbors(0))
    [0]
    """

    __slots__ = ("_n", "_adj", "_name", "_hash", "_in_cache", "_out_cache", "_packed_receive")

    def __init__(
        self,
        n: int,
        edges: Optional[Iterable[Edge]] = None,
        adjacency: Optional[np.ndarray] = None,
        name: Optional[str] = None,
    ) -> None:
        if n < 1:
            raise GraphError(f"a communication graph needs at least one agent, got n={n}")
        if edges is not None and adjacency is not None:
            raise GraphError("pass either edges or adjacency, not both")

        if adjacency is not None:
            adj = np.asarray(adjacency, dtype=bool)
            if adj.shape != (n, n):
                raise GraphError(
                    f"adjacency must have shape ({n}, {n}), got {adj.shape}"
                )
            adj = adj.copy()
        else:
            adj = np.zeros((n, n), dtype=bool)
            for edge in edges or ():
                try:
                    i, j = edge
                except (TypeError, ValueError) as exc:
                    raise GraphError(f"edges must be (i, j) pairs, got {edge!r}") from exc
                if not (0 <= i < n and 0 <= j < n):
                    raise GraphError(
                        f"edge {edge!r} out of range for n={n} agents (agents are 0-based)"
                    )
                adj[i, j] = True

        np.fill_diagonal(adj, True)
        adj.setflags(write=False)
        self._n = n
        self._adj = adj
        self._name = name
        self._hash = hash((n, adj.tobytes()))
        # Lazily built per-agent neighborhood caches.  The graph is immutable,
        # so the frozensets are computed once and shared by every caller
        # (in_neighbors/out_neighbors are hit per agent per round in the
        # per-agent execution path and throughout graphs/relations.py).
        self._in_cache: Optional[Tuple[FrozenSet[int], ...]] = None
        self._out_cache: Optional[Tuple[FrozenSet[int], ...]] = None
        # Bitset-resident adjacency cache, built on first access (see
        # packed_receive_rows).
        self._packed_receive: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of agents."""
        return self._n

    @property
    def name(self) -> Optional[str]:
        """Optional display name (not part of graph identity)."""
        return self._name

    @property
    def adjacency(self) -> np.ndarray:
        """Read-only boolean adjacency matrix (``adj[i, j]`` iff edge i -> j)."""
        return self._adj

    @property
    def packed_receive_rows(self) -> np.ndarray:
        """The receive mask as bitset-packed rows, ``(n, ceil(n/8))`` uint8.

        Row ``j`` packs the in-neighborhood indicator of agent ``j`` (bit
        ``i`` set iff ``j`` receives from ``i``, ``np.packbits`` big-bit
        order).  Computed once per graph and shared: the α-relation kernels
        (:func:`repro.graphs.packed.packed_in_neighborhoods`) consume it
        instead of re-packing every graph's in-neighborhoods on every
        ``alpha_classes`` / ``beta_classes`` / ``alpha_diameter`` call.
        """
        if self._packed_receive is None:
            packed = pack_bool_rows(self._adj.T)
            packed.setflags(write=False)
            self._packed_receive = packed
        return self._packed_receive

    def agents(self) -> range:
        """The agent identifiers ``0 .. n-1``."""
        return range(self._n)

    def has_edge(self, i: int, j: int) -> bool:
        """True iff ``j`` receives from ``i`` in this graph."""
        self._check_agent(i)
        self._check_agent(j)
        return bool(self._adj[i, j])

    def edges(self, include_self_loops: bool = True) -> Iterator[Edge]:
        """Iterate over edges as ``(sender, receiver)`` pairs."""
        senders, receivers = np.nonzero(self._adj)
        for i, j in zip(senders.tolist(), receivers.tolist()):
            if include_self_loops or i != j:
                yield (i, j)

    def edge_count(self, include_self_loops: bool = True) -> int:
        """Number of edges (self-loops included by default)."""
        total = int(self._adj.sum())
        return total if include_self_loops else total - self._n

    def in_neighbors(self, j: int) -> FrozenSet[int]:
        """``In_j(G)``: agents whose round message ``j`` receives (includes ``j``)."""
        self._check_agent(j)
        if self._in_cache is None:
            self._in_cache = tuple(
                frozenset(np.nonzero(self._adj[:, column])[0].tolist())
                for column in range(self._n)
            )
        return self._in_cache[j]

    def out_neighbors(self, i: int) -> FrozenSet[int]:
        """``Out_i(G)``: agents that receive ``i``'s round message (includes ``i``)."""
        self._check_agent(i)
        if self._out_cache is None:
            self._out_cache = tuple(
                frozenset(np.nonzero(self._adj[row, :])[0].tolist())
                for row in range(self._n)
            )
        return self._out_cache[i]

    def in_degree(self, j: int) -> int:
        """Number of in-neighbors of ``j`` (self-loop included)."""
        self._check_agent(j)
        return int(self._adj[:, j].sum())

    def out_degree(self, i: int) -> int:
        """Number of out-neighbors of ``i`` (self-loop included)."""
        self._check_agent(i)
        return int(self._adj[i, :].sum())

    def is_deaf(self, i: int) -> bool:
        """True iff agent ``i`` is *deaf* in this graph (its only in-neighbor is itself)."""
        return self.in_neighbors(i) == frozenset({i})

    def deaf_agents(self) -> FrozenSet[int]:
        """The set of agents that are deaf in this graph."""
        return frozenset(i for i in self.agents() if self.is_deaf(i))

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def with_name(self, name: Optional[str]) -> "CommunicationGraph":
        """Return the same graph carrying a different display name."""
        return CommunicationGraph(self._n, adjacency=self._adj, name=name)

    def make_deaf(self, i: int) -> "CommunicationGraph":
        """Return the graph obtained by removing all incoming edges of ``i`` except its self-loop.

        This is the ``F_i`` construction of Section 5:
        ``F_i = G \\ {(j, i) : j != i}``.
        """
        self._check_agent(i)
        adj = self._adj.copy()
        adj[:, i] = False
        adj[i, i] = True
        base = self._name or "G"
        return CommunicationGraph(self._n, adjacency=adj, name=f"deaf({base},{i})")

    def remove_edge(self, i: int, j: int) -> "CommunicationGraph":
        """Return a copy without the edge ``i -> j`` (self-loops cannot be removed)."""
        self._check_agent(i)
        self._check_agent(j)
        if i == j:
            raise GraphError("self-loops are mandatory and cannot be removed")
        adj = self._adj.copy()
        adj[i, j] = False
        return CommunicationGraph(self._n, adjacency=adj, name=self._name)

    def add_edge(self, i: int, j: int) -> "CommunicationGraph":
        """Return a copy with the edge ``i -> j`` added."""
        self._check_agent(i)
        self._check_agent(j)
        adj = self._adj.copy()
        adj[i, j] = True
        return CommunicationGraph(self._n, adjacency=adj, name=self._name)

    def transpose(self) -> "CommunicationGraph":
        """Return the graph with all edges reversed."""
        return CommunicationGraph(self._n, adjacency=self._adj.T, name=self._name)

    def restricted_to(self, agents: Sequence[int]) -> "CommunicationGraph":
        """Return the subgraph induced by ``agents`` (relabelled ``0..len(agents)-1``)."""
        agents = list(agents)
        for a in agents:
            self._check_agent(a)
        idx = np.asarray(agents, dtype=int)
        sub = self._adj[np.ix_(idx, idx)]
        return CommunicationGraph(len(agents), adjacency=sub, name=self._name)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationGraph):
            return NotImplemented
        return self._n == other._n and bool(np.array_equal(self._adj, other._adj))

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        non_loop = self.edge_count(include_self_loops=False)
        return f"CommunicationGraph(n={self._n}{label}, edges={non_loop}+self-loops)"

    def describe(self) -> str:
        """Multi-line human-readable description listing in-neighborhoods."""
        lines = [repr(self)]
        for j in self.agents():
            ins = ", ".join(str(i) for i in sorted(self.in_neighbors(j)))
            lines.append(f"  In_{j} = {{{ins}}}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _check_agent(self, i: int) -> None:
        if not (0 <= i < self._n):
            raise GraphError(f"agent {i} out of range for n={self._n} (agents are 0-based)")

    def _check_same_size(self, other: "CommunicationGraph") -> None:
        if self._n != other._n:
            raise GraphError(
                f"graphs act on different agent sets (n={self._n} vs n={other._n})"
            )
