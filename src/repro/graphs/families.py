"""The specific communication-graph families used in the paper.

* :func:`two_agent_graphs` — the three rooted graphs ``H0, H1, H2`` for
  ``n = 2`` (Figure 1, Theorem 1).
* :func:`deaf_variant` / :func:`deaf_family` — the graphs ``F_i`` obtained by
  making agent ``i`` deaf in a base graph ``G`` (Section 5, Theorem 2).
* :func:`psi_graph` / :func:`psi_family` — the rooted graphs ``Ψ_i``
  (Figure 2, Theorem 3).
* :func:`crash_tolerant_graphs` — the graphs of the asynchronous-with-crashes
  network model ``N_A`` in which every agent has at least ``n - f``
  in-neighbors (Section 8.1).
* standard graphs (complete, cycle, path, star) used as base graphs and in
  examples and tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.digraph import CommunicationGraph


# --------------------------------------------------------------------------- #
# Standard base graphs
# --------------------------------------------------------------------------- #

def complete_graph(n: int) -> CommunicationGraph:
    """The complete digraph ``K_n`` (every agent hears every agent)."""
    edges = [(i, j) for i in range(n) for j in range(n) if i != j]
    return CommunicationGraph(n, edges=edges, name=f"K_{n}")


def cycle_graph(n: int) -> CommunicationGraph:
    """The directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (plus self-loops)."""
    if n < 2:
        raise GraphError("a directed cycle needs at least two agents")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return CommunicationGraph(n, edges=edges, name=f"C_{n}")


def directed_path_graph(n: int) -> CommunicationGraph:
    """The directed path ``0 -> 1 -> ... -> n-1`` (plus self-loops)."""
    if n < 1:
        raise GraphError("a path needs at least one agent")
    edges = [(i, i + 1) for i in range(n - 1)]
    return CommunicationGraph(n, edges=edges, name=f"P_{n}")


def directed_star_graph(n: int, center: int = 0) -> CommunicationGraph:
    """The out-star: the ``center`` agent sends to everyone else."""
    if not 0 <= center < n:
        raise GraphError(f"center {center} out of range for n={n}")
    edges = [(center, j) for j in range(n) if j != center]
    return CommunicationGraph(n, edges=edges, name=f"Star_{n}({center})")


def from_in_neighborhoods(
    in_neighborhoods: Sequence[Sequence[int]], name: Optional[str] = None
) -> CommunicationGraph:
    """Build a graph from per-agent in-neighborhoods.

    ``in_neighborhoods[j]`` lists the agents that ``j`` receives from; ``j``
    itself is added automatically (self-loop).
    """
    n = len(in_neighborhoods)
    edges: List[Tuple[int, int]] = []
    for j, in_set in enumerate(in_neighborhoods):
        for i in in_set:
            edges.append((i, j))
    return CommunicationGraph(n, edges=edges, name=name)


# --------------------------------------------------------------------------- #
# Figure 1: the two-agent graphs H0, H1, H2
# --------------------------------------------------------------------------- #

def two_agent_graphs() -> Tuple[CommunicationGraph, CommunicationGraph, CommunicationGraph]:
    """The three rooted (and non-split) communication graphs for ``n = 2``.

    Following Figure 1 (with the paper's agents 1, 2 renamed 0, 1):

    * ``H0`` — all messages are received (the complete graph ``K_2``).
    * ``H1`` — agent 1 receives agent 0's message but not vice versa, so
      agent 0 is deaf in ``H1``.
    * ``H2`` — agent 0 receives agent 1's message but not vice versa, so
      agent 1 is deaf in ``H2``.
    """
    h0 = CommunicationGraph(2, edges=[(0, 1), (1, 0)], name="H0")
    h1 = CommunicationGraph(2, edges=[(0, 1)], name="H1")
    h2 = CommunicationGraph(2, edges=[(1, 0)], name="H2")
    return h0, h1, h2


# --------------------------------------------------------------------------- #
# Section 5: deaf variants
# --------------------------------------------------------------------------- #

def deaf_variant(graph: CommunicationGraph, agent: int) -> CommunicationGraph:
    """The graph ``F_i`` obtained from ``graph`` by making ``agent`` deaf.

    All incoming edges of ``agent`` except its self-loop are removed;
    everything else is unchanged (Section 5).
    """
    return graph.make_deaf(agent)


def deaf_family(graph: CommunicationGraph) -> List[CommunicationGraph]:
    """The network-model family ``deaf(G) = {F_0, ..., F_{n-1}}`` of Section 5.

    ``F_i`` is ``graph`` with agent ``i`` made deaf.  Theorem 2 shows that any
    network model containing ``deaf(G)`` for some graph ``G`` forces a
    contraction rate of at least 1/2 for ``n >= 3`` agents.
    """
    return [deaf_variant(graph, i) for i in range(graph.n)]


# --------------------------------------------------------------------------- #
# Figure 2 / Section 6: the Ψ graphs
# --------------------------------------------------------------------------- #

def psi_graph(n: int, deaf_special: int) -> CommunicationGraph:
    """The rooted graph ``Ψ_i`` of Section 6 (Figure 2), for ``n >= 4`` agents.

    The construction (translated to 0-based agents; the paper's agents
    ``1, 2, 3`` are ``0, 1, 2`` here and its chain ``4 .. n`` is ``3 .. n-1``):

    * chain agents ``3 .. n-2`` form a path with edges ``j -> j+1``;
    * every special agent in ``{0, 1, 2}`` has agent ``3`` as an out-neighbor;
    * the last chain agent ``n-1`` sends to the two special agents different
      from ``deaf_special``;
    * ``deaf_special`` receives nothing (other than from itself): it is deaf.

    ``Ψ_i`` is rooted with the deaf special agent as a root: its value can
    flow along the chain to every other agent.

    Parameters
    ----------
    n:
        Total number of agents, at least 4.
    deaf_special:
        Which of the three special agents (0, 1 or 2) is deaf in the graph.
    """
    if n < 4:
        raise GraphError(f"Psi graphs require n >= 4 agents, got n={n}")
    if deaf_special not in (0, 1, 2):
        raise GraphError(f"deaf_special must be one of 0, 1, 2; got {deaf_special}")
    edges: List[Tuple[int, int]] = []
    # Path among the chain agents 3 .. n-1 (edges j -> j+1).
    for j in range(3, n - 1):
        edges.append((j, j + 1))
    # All three special agents send to the first chain agent.
    for a in (0, 1, 2):
        edges.append((a, 3))
    # The last chain agent sends to the two non-deaf special agents.
    for a in (0, 1, 2):
        if a != deaf_special:
            edges.append((n - 1, a))
    return CommunicationGraph(n, edges=edges, name=f"Psi_{deaf_special}(n={n})")


def psi_family(n: int) -> List[CommunicationGraph]:
    """The three graphs ``Ψ_0, Ψ_1, Ψ_2`` used in the Theorem 3 lower bound."""
    return [psi_graph(n, i) for i in (0, 1, 2)]


def sigma_sequence(n: int, deaf_special: int) -> List[CommunicationGraph]:
    """The block ``σ_i``: the graph ``Ψ_i`` repeated ``n - 2`` times (Section 6)."""
    return [psi_graph(n, deaf_special)] * (n - 2)


# --------------------------------------------------------------------------- #
# Section 8.1: asynchronous rounds with crashes
# --------------------------------------------------------------------------- #

def crash_tolerant_graphs(
    n: int, f: int, limit: Optional[int] = None
) -> Iterator[CommunicationGraph]:
    """Enumerate the graphs of the crash network model ``N_A`` of Section 8.1.

    ``N_A`` contains every communication graph on ``n`` agents in which every
    agent has at least ``n - f`` in-neighbors — the graphs realizable when
    agents operating in asynchronous rounds wait for ``n - f`` round messages.

    The family grows extremely quickly with ``n``; pass ``limit`` to stop the
    enumeration early (useful in tests), or use
    :func:`crash_round_graph` to build individual members.
    """
    if not 0 <= f < n:
        raise GraphError(f"need 0 <= f < n, got n={n}, f={f}")
    per_agent_choices: List[List[frozenset]] = []
    for j in range(n):
        others = [i for i in range(n) if i != j]
        choices = []
        # j always hears itself; it additionally hears at least n - f - 1 others.
        for extra in range(n - f - 1, n):
            for subset in combinations(others, extra):
                choices.append(frozenset(subset) | {j})
        per_agent_choices.append(choices)

    count = 0

    def recurse(j: int, chosen: List[frozenset]) -> Iterator[CommunicationGraph]:
        nonlocal count
        if limit is not None and count >= limit:
            return
        if j == n:
            count += 1
            yield from_in_neighborhoods([sorted(s) for s in chosen])
            return
        for choice in per_agent_choices[j]:
            if limit is not None and count >= limit:
                return
            yield from recurse(j + 1, chosen + [choice])

    yield from recurse(0, [])


def crash_round_graph(n: int, f: int, missed: Dict[int, Sequence[int]]) -> CommunicationGraph:
    """A single member of ``N_A``: agent ``j`` misses the messages listed in ``missed[j]``.

    Each agent may miss at most ``f`` messages (and never its own).
    """
    if not 0 <= f < n:
        raise GraphError(f"need 0 <= f < n, got n={n}, f={f}")
    in_sets: List[List[int]] = []
    for j in range(n):
        missing = set(missed.get(j, ()))
        if j in missing:
            raise GraphError(f"agent {j} cannot miss its own message")
        if len(missing) > f:
            raise GraphError(
                f"agent {j} misses {len(missing)} messages, but at most f={f} are allowed"
            )
        in_sets.append([i for i in range(n) if i not in missing])
    return from_in_neighborhoods(in_sets, name="N_A-graph")


def lemma24_chain(
    graph_g: CommunicationGraph, graph_h: CommunicationGraph, f: int
) -> List[Tuple[CommunicationGraph, CommunicationGraph]]:
    """The α-chain of Lemma 24 connecting two graphs of ``N_A``.

    Returns the list of ``(H_r, K_r)`` pairs, ``r = 1 .. ⌈n/f⌉``, where the
    ``H_r`` interpolate between ``G`` and ``H`` by switching in-neighborhoods
    over blocks of ``f`` agents, and ``K_r`` is the graph in which the agents
    of block ``r`` hear only themselves while everyone else hears everyone.
    The chain witnesses that the α-diameter of ``N_A`` is at most ``⌈n/f⌉``.
    """
    graph_g._check_same_size(graph_h)
    n = graph_g.n
    if not 0 < f < n:
        raise GraphError(f"need 0 < f < n, got n={n}, f={f}")
    q = -(-n // f)  # ceil(n / f)
    chain: List[Tuple[CommunicationGraph, CommunicationGraph]] = []
    for r in range(1, q + 1):
        block = set(range((r - 1) * f, min(r * f, n)))
        in_sets_h: List[List[int]] = []
        in_sets_k: List[List[int]] = []
        for j in range(n):
            # H_r: the first r*f agents already use H's in-neighborhoods.
            source = graph_h if j < r * f else graph_g
            in_sets_h.append(sorted(source.in_neighbors(j)))
            # K_r: nobody hears the agents of the current block (except the
            # mandatory self-loops), so R(K_r) = [n] \ block.
            in_sets_k.append(sorted((set(range(n)) - block) | {j}))
        h_r = from_in_neighborhoods(in_sets_h, name=f"H_{r}")
        k_r = from_in_neighborhoods(in_sets_k, name=f"K_{r}")
        chain.append((h_r, k_r))
    return chain
