"""Bitset-packed kernels over stacks of communication graphs.

Every structural analysis the certification layer needs — graph products,
reachability, roots, rootedness, non-splitness, in-neighborhood equality —
is a boolean computation on adjacency matrices.  This module runs them over
whole ``(K, n, n)`` *stacks* of graphs at once: one batched boolean matmul
or one packed row comparison replaces ``K`` (or ``K²``) Python-level calls.

Two representations are used:

* the **dense stack** — a boolean ``(K, n, n)`` tensor
  (:func:`stack_adjacencies`), on which products and reachability are
  batched ``@`` operations; and
* the **packed stack** — rows packed into uint8 ``(K, n, ceil(n/8))``
  tensors via :func:`repro.types.pack_bool_rows`
  (:func:`pack_adjacency_rows`), on which row-equality questions (the α
  relation's ``In_i(G) = In_i(H)``) become byte comparisons, 8x denser than
  bool and amenable to :func:`repro.types.packed_row_ids` deduplication.

All kernels are exact boolean computations, so their results are identical
to the per-graph reference implementations in :mod:`repro.graphs.properties`
and :mod:`repro.graphs.products` (enforced by
``tests/test_packed_kernels.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import CommunicationGraph
from repro.types import pack_bool_rows, packed_row_ids


def stack_adjacencies(graphs: Sequence[CommunicationGraph]) -> np.ndarray:
    """The boolean ``(K, n, n)`` adjacency tensor of a non-empty graph sequence."""
    graphs = list(graphs)
    if not graphs:
        raise GraphError("stack_adjacencies needs at least one graph")
    n = graphs[0].n
    for graph in graphs:
        if graph.n != n:
            raise GraphError(
                f"all stacked graphs must share the agent count; got {graph.n} and {n}"
            )
    return np.stack([graph.adjacency for graph in graphs])


def pack_adjacency_rows(stack: np.ndarray) -> np.ndarray:
    """Pack the sender axis of a ``(..., n, n)`` stack into ``(..., n, ceil(n/8))`` bytes.

    Row ``[..., i, :]`` of the result is the packed out-neighborhood of agent
    ``i``; pack the transpose (``stack.swapaxes(-1, -2)``) to get packed
    in-neighborhoods instead.
    """
    return pack_bool_rows(np.asarray(stack, dtype=bool))


def in_neighborhood_ids(stack: np.ndarray) -> np.ndarray:
    """Integer ids of per-agent in-neighborhoods across a ``(K, n, n)`` stack.

    ``result[k, i] == result[m, i]`` iff agent ``i`` has the same in-neighbor
    set in graphs ``k`` and ``m`` — the vectorized form of the α relation's
    per-root test ``In_i(G) = In_i(H)``.
    """
    stack = np.asarray(stack, dtype=bool)
    packed_in = pack_adjacency_rows(stack.swapaxes(-1, -2))
    return packed_row_ids(packed_in)


def packed_in_neighborhoods(graphs: Sequence[CommunicationGraph]) -> np.ndarray:
    """Stacked bitset in-neighborhoods of a graph sequence, ``(K, n, ceil(n/8))``.

    Equal to ``pack_adjacency_rows(stack_adjacencies(graphs).swapaxes(-1, -2))``
    but served from each graph's bitset-resident adjacency cache
    (:attr:`~repro.graphs.digraph.CommunicationGraph.packed_receive_rows`):
    graphs are immutable, so the per-graph packing happens once per graph
    ever, and repeated relation analyses over the same model (α/β classes,
    α-diameter sweeps) stack cached bytes instead of re-packing ``K · n``
    boolean rows per call.
    """
    graphs = list(graphs)
    if not graphs:
        raise GraphError("packed_in_neighborhoods needs at least one graph")
    n = graphs[0].n
    for graph in graphs:
        if graph.n != n:
            raise GraphError(
                f"all stacked graphs must share the agent count; got {graph.n} and {n}"
            )
    return np.stack([graph.packed_receive_rows for graph in graphs])


def graph_in_neighborhood_ids(graphs: Sequence[CommunicationGraph]) -> np.ndarray:
    """Integer in-neighborhood ids of a graph sequence, ``(K, n)``.

    The graph-level counterpart of :func:`in_neighborhood_ids`, reading the
    packed rows from the graphs' bitset caches via
    :func:`packed_in_neighborhoods`.
    """
    return packed_row_ids(packed_in_neighborhoods(graphs))


def product_stack(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Batched graph product: ``result[k] = first[k] ∘ second[k]``.

    With ``adj[i, j]`` meaning edge ``i -> j``, the product is the boolean
    matrix product, evaluated for a whole ``(K, n, n)`` stack in one
    batched matmul.
    """
    return np.asarray(first, dtype=bool) @ np.asarray(second, dtype=bool)


def product_sequence_stack(round_stacks: Sequence[np.ndarray]) -> np.ndarray:
    """Left-to-right product of per-round ``(K, n, n)`` stacks.

    ``round_stacks[t][k]`` is the round-``t`` adjacency of candidate ``k``;
    the result's ``k``-th slice is the product ``G_1^k ∘ ... ∘ G_T^k``.  This
    is the batched counterpart of
    :func:`repro.graphs.products.product_sequence` over candidate stacks.
    """
    round_stacks = list(round_stacks)
    if not round_stacks:
        raise GraphError("product_sequence_stack needs at least one round")
    result = np.asarray(round_stacks[0], dtype=bool)
    for stack in round_stacks[1:]:
        result = result @ np.asarray(stack, dtype=bool)
    return result


def reachability_stack(stack: np.ndarray) -> np.ndarray:
    """Batched transitive closure: ``result[k, i, j]`` iff a path ``i -> j`` in graph ``k``.

    Repeated boolean squaring, exactly mirroring
    :func:`repro.graphs.properties.reachability_matrix` (self-loops make the
    starting matrix reflexive, so ``O(log n)`` squarings cover all paths).
    """
    closure = np.array(stack, dtype=bool)
    n = closure.shape[-1]
    steps = max(1, int(np.ceil(np.log2(max(n, 2)))))
    for _ in range(steps):
        closure = closure | (closure @ closure)
    return closure


def roots_stack(stack: np.ndarray) -> np.ndarray:
    """Batched root sets: boolean ``(K, n)`` with ``result[k, i]`` iff ``i ∈ R(G_k)``."""
    return reachability_stack(stack).all(axis=-1)


def is_rooted_stack(stack: np.ndarray) -> np.ndarray:
    """Batched rootedness: ``(K,)`` booleans, ``result[k]`` iff ``R(G_k)`` is non-empty."""
    return roots_stack(stack).any(axis=-1)


def is_nonsplit_stack(stack: np.ndarray) -> np.ndarray:
    """Batched non-splitness: ``(K,)`` booleans.

    ``(Aᵀ A)[i, j]`` is true iff agents ``i`` and ``j`` have a common
    in-neighbor, so a graph is non-split iff that boolean Gram matrix is all
    true — one batched matmul for the whole stack.
    """
    adjacency = np.asarray(stack, dtype=bool)
    common = adjacency.swapaxes(-1, -2) @ adjacency
    return common.all(axis=(-2, -1))


def is_strongly_connected_stack(stack: np.ndarray) -> np.ndarray:
    """Batched strong connectivity: ``(K,)`` booleans."""
    return reachability_stack(stack).all(axis=(-2, -1))
