"""The α and β relations of Coulouma, Godard and Peters, and the α-diameter.

Section 7 of the paper imports the machinery of [Coulouma et al., TCS 2015]:

* ``G α_{N,K} H`` holds when the agents in ``R(K)`` (the roots of ``K``)
  cannot distinguish a round with graph ``G`` from a round with graph ``H``.
  Definition 15 states the condition as equality of the *union*
  ``In_{R(K)}(G) = In_{R(K)}(H)``; the proofs (Lemma 20 and Lemma 24) use the
  stronger per-root condition ``In_i(G) = In_i(H)`` for every root ``i`` of
  ``K``.  This module implements the per-root condition as
  :func:`alpha_related` (the form the lower bounds need) and also exposes the
  union form as :func:`alpha_related_union`.

* ``α*_N`` is the transitive closure of the union over ``K`` of ``α_{N,K}``.

* ``β_N`` is the coarsest equivalence relation included in ``α*_N`` that
  satisfies the closure property of Definition 16.  It is computed here by
  partition refinement: starting from the α*-classes, each class is repeatedly
  split into the connected components of the α relation *restricted to
  witnesses K inside the class*, until a fixpoint is reached.

* The **α-diameter** (Definition 22) of ``N`` is the smallest ``D >= 1`` such
  that any two graphs of ``N`` are connected by an α-chain of length at most
  ``D``; it drives the general lower bound 1/(D+1) of Theorem 5.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import resolve_use_packed
from repro.exceptions import ModelError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.packed import (
    graph_in_neighborhood_ids,
    roots_stack,
    stack_adjacencies,
)
from repro.graphs.properties import roots
from repro.types import pack_bool_rows, packed_row_ids


def _check_model(graphs: Sequence[CommunicationGraph]) -> List[CommunicationGraph]:
    graphs = list(graphs)
    if not graphs:
        raise ModelError("a network model must contain at least one graph")
    n = graphs[0].n
    for g in graphs:
        if g.n != n:
            raise ModelError("all graphs of a network model must have the same number of agents")
    return graphs


def alpha_related(
    graph_g: CommunicationGraph,
    graph_h: CommunicationGraph,
    witness: CommunicationGraph,
) -> bool:
    """Per-root α relation: ``In_i(G) = In_i(H)`` for every root ``i`` of ``witness``.

    This is the condition actually used in the indistinguishability arguments
    (Lemma 20): if it holds, the roots of ``witness`` cannot tell a ``G``
    round from an ``H`` round, and running ``witness`` forever afterwards
    forces the two executions to the same limit.
    """
    graph_g._check_same_size(graph_h)
    graph_g._check_same_size(witness)
    witness_roots = roots(witness)
    if not witness_roots:
        return False
    return all(graph_g.in_neighbors(i) == graph_h.in_neighbors(i) for i in witness_roots)


def alpha_related_union(
    graph_g: CommunicationGraph,
    graph_h: CommunicationGraph,
    witness: CommunicationGraph,
) -> bool:
    """Union-form α relation of Definition 15: ``In_{R(K)}(G) = In_{R(K)}(H)``."""
    graph_g._check_same_size(graph_h)
    graph_g._check_same_size(witness)
    witness_roots = roots(witness)
    if not witness_roots:
        return False
    union_g: Set[int] = set()
    union_h: Set[int] = set()
    for i in witness_roots:
        union_g |= graph_g.in_neighbors(i)
        union_h |= graph_h.in_neighbors(i)
    return union_g == union_h


def alpha_witness_tensor(
    graphs: Sequence[CommunicationGraph],
    witnesses: Optional[Sequence[CommunicationGraph]] = None,
    use_union_form: bool = False,
) -> np.ndarray:
    """The per-witness α relation as a boolean ``(W, G, G)`` tensor.

    ``result[w, g, h]`` is true iff ``graphs[g] α_{N,K} graphs[h]`` with
    witness ``K = witnesses[w]`` (witnesses default to ``graphs``).  The
    whole tensor is computed without any per-pair Python work:

    * witness roots come from one batched reachability pass
      (:func:`repro.graphs.packed.roots_stack`);
    * per-agent in-neighborhoods are packed into bytes and deduplicated into
      integer ids, so ``In_i(G) = In_i(H)`` for all pairs and agents is one
      integer-comparison broadcast; and
    * the per-root quantification over each witness's root set is one
      boolean matmul against the root masks.

    Witnesses without roots relate nothing (their slice is all false),
    mirroring :func:`alpha_related`.  The β-refinement reuses sub-blocks of
    this tensor, which is why it is exposed rather than just the any-witness
    matrix.
    """
    graphs = _check_model(graphs)
    witnesses = list(witnesses) if witnesses is not None else graphs
    if not witnesses:
        return np.zeros((0, len(graphs), len(graphs)), dtype=bool)
    n = graphs[0].n
    for witness in witnesses:
        if witness.n != n:
            raise ModelError("witnesses must have the same number of agents as the model")
    witness_stack = stack_adjacencies(witnesses)
    root_mask = roots_stack(witness_stack)  # (W, n)
    valid = root_mask.any(axis=-1)  # (W,)

    if use_union_form:
        # union_in[g, w, s] iff some root i of witness w hears s in graph g:
        # one broadcast boolean matmul (W, n) x (G, n, n).
        in_neighborhoods = stack_adjacencies(graphs).swapaxes(-1, -2)  # (G, agent, sender)
        unions = np.matmul(root_mask[None, :, :], in_neighborhoods)  # (G, W, n)
        union_ids = packed_row_ids(pack_bool_rows(unions)).T  # (W, G)
        related = union_ids[:, :, None] == union_ids[:, None, :]  # (W, G, G)
    else:
        # Served from the graphs' bitset-resident adjacency caches: repeated
        # relation analyses over one model never re-pack the in-neighborhoods.
        ids = graph_in_neighborhood_ids(graphs)  # (G, n)
        differs = ids[:, None, :] != ids[None, :, :]  # (G, G, n)
        # any_viol[g, h, w]: some root of witness w distinguishes g from h.
        any_violation = differs @ root_mask.swapaxes(0, 1)  # (G, G, W)
        related = np.moveaxis(~any_violation, -1, 0)  # (W, G, G)
    return related & valid[:, None, None]


def alpha_relation_matrix(
    graphs: Sequence[CommunicationGraph],
    witnesses: Optional[Sequence[CommunicationGraph]] = None,
    use_union_form: bool = False,
) -> np.ndarray:
    """The one-step α relation as a boolean ``(G, G)`` matrix (any witness)."""
    tensor = alpha_witness_tensor(graphs, witnesses=witnesses, use_union_form=use_union_form)
    return tensor.any(axis=0)


def _unique_graphs(graphs: Sequence[CommunicationGraph]) -> List[CommunicationGraph]:
    """First occurrences of the graphs, matching the reference code's dict keying."""
    return list(dict.fromkeys(graphs))


def _components_from_matrix(
    graphs: Sequence[CommunicationGraph], matrix: np.ndarray
) -> List[FrozenSet[CommunicationGraph]]:
    """Connected components of a symmetric boolean relation matrix.

    The transitive closure by repeated boolean squaring makes component
    membership a row-equality question; components are emitted in order of
    their first member, matching the reference BFS.
    """
    return [
        frozenset(graphs[i] for i in component) for component in _index_components(matrix)
    ]


def alpha_step_graph(
    graphs: Sequence[CommunicationGraph],
    witnesses: Optional[Sequence[CommunicationGraph]] = None,
    use_union_form: bool = False,
    use_packed: Optional[bool] = None,
) -> Dict[CommunicationGraph, Set[CommunicationGraph]]:
    """The one-step α relation on ``graphs`` as an adjacency mapping.

    ``result[G]`` contains every ``H`` such that ``G α_{N,K} H`` for some
    witness ``K`` (witnesses default to ``graphs`` themselves, i.e. the
    network model).  The relation is symmetric, and reflexive on every graph
    for which some witness exists.  ``use_packed`` (the default) computes the
    relation through the vectorized :func:`alpha_relation_matrix`;
    ``use_packed=False`` keeps the per-pair reference loop.
    """
    graphs = _check_model(graphs)
    use_packed = resolve_use_packed(use_packed)
    witnesses = list(witnesses) if witnesses is not None else graphs
    adjacency: Dict[CommunicationGraph, Set[CommunicationGraph]] = {g: set() for g in graphs}
    if use_packed:
        matrix = alpha_relation_matrix(graphs, witnesses=witnesses, use_union_form=use_union_form)
        for idx_g, idx_h in zip(*np.nonzero(matrix)):
            adjacency[graphs[idx_g]].add(graphs[idx_h])
        return adjacency
    related = alpha_related_union if use_union_form else alpha_related
    for idx_g, g in enumerate(graphs):
        for h in graphs[idx_g:]:
            if any(related(g, h, k) for k in witnesses):
                adjacency[g].add(h)
                adjacency[h].add(g)
    return adjacency


def alpha_star_related(
    graphs: Sequence[CommunicationGraph],
    graph_g: CommunicationGraph,
    graph_h: CommunicationGraph,
    use_union_form: bool = False,
    use_packed: Optional[bool] = None,
) -> bool:
    """Whether ``G α*_N H`` (transitive closure of the one-step α relation)."""
    classes = alpha_classes(graphs, use_union_form=use_union_form, use_packed=use_packed)
    for cls in classes:
        if graph_g in cls and graph_h in cls:
            return True
    return False


def alpha_classes(
    graphs: Sequence[CommunicationGraph],
    use_union_form: bool = False,
    use_packed: Optional[bool] = None,
) -> List[FrozenSet[CommunicationGraph]]:
    """The equivalence classes of ``α*_N`` (connected components of the α step graph).

    The default packed path computes the whole one-step relation as a
    boolean matrix (no per-pair Python set comparisons) and extracts
    components by boolean closure; ``use_packed=False`` keeps the reference
    per-pair BFS.
    """
    graphs = _check_model(graphs)
    use_packed = resolve_use_packed(use_packed)
    if use_packed:
        unique = _unique_graphs(graphs)
        matrix = alpha_relation_matrix(unique, use_union_form=use_union_form)
        return _components_from_matrix(unique, matrix)
    adjacency = alpha_step_graph(graphs, use_union_form=use_union_form, use_packed=False)
    return _connected_components(graphs, adjacency)


def beta_classes(
    graphs: Sequence[CommunicationGraph],
    use_union_form: bool = False,
    use_packed: Optional[bool] = None,
) -> List[FrozenSet[CommunicationGraph]]:
    """The β_N-classes of Definition 16, via partition refinement.

    Starting from the α*-classes, each class ``Q`` is split into the connected
    components of the α relation restricted to witnesses ``K ∈ Q``; this is
    iterated until no class splits.  At the fixpoint every class satisfies the
    closure property (any two members are α-chain connected through members
    and witnesses of the same class), and since splits only happen when the
    closure property fails, the fixpoint is the coarsest such refinement.

    On the packed path the per-witness α tensor is computed once and every
    refinement step just slices it, so no α relations are ever recomputed.
    """
    graphs = _check_model(graphs)
    use_packed = resolve_use_packed(use_packed)
    if use_packed:
        unique = _unique_graphs(graphs)
        tensor = alpha_witness_tensor(unique, use_union_form=use_union_form)
        matrix = tensor.any(axis=0)
        index_partition: List[np.ndarray] = [
            np.asarray(sorted(indices), dtype=int)
            for indices in _index_components(matrix)
        ]
        changed = True
        while changed:
            changed = False
            refined: List[np.ndarray] = []
            for class_indices in index_partition:
                sub = tensor[np.ix_(class_indices, class_indices, class_indices)].any(axis=0)
                components = _index_components(sub)
                if len(components) > 1:
                    changed = True
                refined.extend(class_indices[np.asarray(sorted(c), dtype=int)] for c in components)
            index_partition = refined
        return [frozenset(unique[i] for i in indices) for indices in index_partition]
    partition: List[List[CommunicationGraph]] = [
        list(cls)
        for cls in alpha_classes(graphs, use_union_form=use_union_form, use_packed=False)
    ]
    changed = True
    while changed:
        changed = False
        refined: List[List[CommunicationGraph]] = []
        for cls in partition:
            adjacency = alpha_step_graph(
                cls, witnesses=cls, use_union_form=use_union_form, use_packed=False
            )
            components = _connected_components(cls, adjacency)
            if len(components) > 1:
                changed = True
            refined.extend([list(c) for c in components])
        partition = refined
    return [frozenset(cls) for cls in partition]


def _index_components(matrix: np.ndarray) -> List[List[int]]:
    """Connected components of a symmetric boolean matrix, as index lists."""
    count = matrix.shape[0]
    closure = matrix | np.eye(count, dtype=bool)
    while True:
        expanded = closure | (closure @ closure)
        if np.array_equal(expanded, closure):
            break
        closure = expanded
    components: List[List[int]] = []
    seen = np.zeros(count, dtype=bool)
    for index in range(count):
        if seen[index]:
            continue
        members = closure[index]
        seen |= members
        components.append(np.nonzero(members)[0].tolist())
    return components


def is_source_incompatible(graphs: Sequence[CommunicationGraph]) -> bool:
    """Definition 18: no agent is a root of *every* graph of the model."""
    graphs = _check_model(graphs)
    common = roots(graphs[0])
    for g in graphs[1:]:
        common = common & roots(g)
        if not common:
            return True
    return len(common) == 0


def alpha_diameter(
    graphs: Sequence[CommunicationGraph],
    use_union_form: bool = False,
    use_packed: Optional[bool] = None,
) -> float:
    """The α-diameter ``D`` of a network model (Definition 22).

    ``D`` is the smallest integer such that any two graphs of the model are
    connected by a chain of at most ``D`` α-steps (each step witnessed by some
    graph of the model).  Returns ``float('inf')`` when the α step graph is
    disconnected.  Models with a single graph have diameter 1 when the graph
    is α-related to itself (which holds whenever the model has a rooted
    witness) — matching the paper's convention ``D >= 1``.

    The packed path replaces the per-source BFS with a simultaneous
    frontier expansion on the relation matrix (one boolean matmul per
    distance level).
    """
    graphs = _check_model(graphs)
    use_packed = resolve_use_packed(use_packed)
    if use_packed:
        unique = _unique_graphs(graphs)
        matrix = alpha_relation_matrix(unique, use_union_form=use_union_form)
        count = len(unique)
        reached = np.eye(count, dtype=bool)
        frontier = reached.copy()
        diameter = 1  # Definition 22 requires D >= 1.
        level = 0
        while frontier.any():
            level += 1
            frontier = (frontier @ matrix) & ~reached
            if frontier.any():
                diameter = max(diameter, level)
                reached |= frontier
        if not reached.all():
            return float("inf")
        return float(diameter)
    adjacency = alpha_step_graph(graphs, use_union_form=use_union_form, use_packed=False)
    diameter = 1  # Definition 22 requires D >= 1.
    for source in graphs:
        distances = _bfs_distances(source, graphs, adjacency)
        for target in graphs:
            dist = distances.get(target)
            if dist is None:
                return float("inf")
            diameter = max(diameter, dist)
    return float(diameter)


def alpha_chain(
    graphs: Sequence[CommunicationGraph],
    graph_g: CommunicationGraph,
    graph_h: CommunicationGraph,
    use_union_form: bool = False,
) -> Optional[List[CommunicationGraph]]:
    """A shortest α-chain ``G = H_0, ..., H_q = H`` within the model, or None.

    The chain witnesses ``G α*_N H`` and its length (number of steps ``q``) is
    at most the α-diameter of the model.
    """
    graphs = _check_model(graphs)
    adjacency = alpha_step_graph(graphs, use_union_form=use_union_form)
    if graph_g == graph_h:
        return [graph_g]
    predecessors: Dict[CommunicationGraph, CommunicationGraph] = {}
    queue = deque([graph_g])
    seen = {graph_g}
    while queue:
        current = queue.popleft()
        for neighbor in adjacency.get(current, ()):  # pragma: no branch
            if neighbor in seen:
                continue
            seen.add(neighbor)
            predecessors[neighbor] = current
            if neighbor == graph_h:
                chain = [neighbor]
                while chain[-1] != graph_g:
                    chain.append(predecessors[chain[-1]])
                return list(reversed(chain))
            queue.append(neighbor)
    return None


# --------------------------------------------------------------------------- #
# Internal helpers
# --------------------------------------------------------------------------- #

def _connected_components(
    graphs: Sequence[CommunicationGraph],
    adjacency: Dict[CommunicationGraph, Set[CommunicationGraph]],
) -> List[FrozenSet[CommunicationGraph]]:
    remaining = list(graphs)
    seen: Set[CommunicationGraph] = set()
    components: List[FrozenSet[CommunicationGraph]] = []
    for start in remaining:
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            current = queue.popleft()
            for neighbor in adjacency.get(current, ()):  # pragma: no branch
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(frozenset(component))
    return components


def _bfs_distances(
    source: CommunicationGraph,
    graphs: Sequence[CommunicationGraph],
    adjacency: Dict[CommunicationGraph, Set[CommunicationGraph]],
) -> Dict[CommunicationGraph, int]:
    distances: Dict[CommunicationGraph, int] = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in adjacency.get(current, ()):  # pragma: no branch
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    del graphs  # only needed for the signature symmetry with callers
    return distances
