"""The α and β relations of Coulouma, Godard and Peters, and the α-diameter.

Section 7 of the paper imports the machinery of [Coulouma et al., TCS 2015]:

* ``G α_{N,K} H`` holds when the agents in ``R(K)`` (the roots of ``K``)
  cannot distinguish a round with graph ``G`` from a round with graph ``H``.
  Definition 15 states the condition as equality of the *union*
  ``In_{R(K)}(G) = In_{R(K)}(H)``; the proofs (Lemma 20 and Lemma 24) use the
  stronger per-root condition ``In_i(G) = In_i(H)`` for every root ``i`` of
  ``K``.  This module implements the per-root condition as
  :func:`alpha_related` (the form the lower bounds need) and also exposes the
  union form as :func:`alpha_related_union`.

* ``α*_N`` is the transitive closure of the union over ``K`` of ``α_{N,K}``.

* ``β_N`` is the coarsest equivalence relation included in ``α*_N`` that
  satisfies the closure property of Definition 16.  It is computed here by
  partition refinement: starting from the α*-classes, each class is repeatedly
  split into the connected components of the α relation *restricted to
  witnesses K inside the class*, until a fixpoint is reached.

* The **α-diameter** (Definition 22) of ``N`` is the smallest ``D >= 1`` such
  that any two graphs of ``N`` are connected by an α-chain of length at most
  ``D``; it drives the general lower bound 1/(D+1) of Theorem 5.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ModelError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.properties import roots


def _check_model(graphs: Sequence[CommunicationGraph]) -> List[CommunicationGraph]:
    graphs = list(graphs)
    if not graphs:
        raise ModelError("a network model must contain at least one graph")
    n = graphs[0].n
    for g in graphs:
        if g.n != n:
            raise ModelError("all graphs of a network model must have the same number of agents")
    return graphs


def alpha_related(
    graph_g: CommunicationGraph,
    graph_h: CommunicationGraph,
    witness: CommunicationGraph,
) -> bool:
    """Per-root α relation: ``In_i(G) = In_i(H)`` for every root ``i`` of ``witness``.

    This is the condition actually used in the indistinguishability arguments
    (Lemma 20): if it holds, the roots of ``witness`` cannot tell a ``G``
    round from an ``H`` round, and running ``witness`` forever afterwards
    forces the two executions to the same limit.
    """
    graph_g._check_same_size(graph_h)
    graph_g._check_same_size(witness)
    witness_roots = roots(witness)
    if not witness_roots:
        return False
    return all(graph_g.in_neighbors(i) == graph_h.in_neighbors(i) for i in witness_roots)


def alpha_related_union(
    graph_g: CommunicationGraph,
    graph_h: CommunicationGraph,
    witness: CommunicationGraph,
) -> bool:
    """Union-form α relation of Definition 15: ``In_{R(K)}(G) = In_{R(K)}(H)``."""
    graph_g._check_same_size(graph_h)
    graph_g._check_same_size(witness)
    witness_roots = roots(witness)
    if not witness_roots:
        return False
    union_g: Set[int] = set()
    union_h: Set[int] = set()
    for i in witness_roots:
        union_g |= graph_g.in_neighbors(i)
        union_h |= graph_h.in_neighbors(i)
    return union_g == union_h


def alpha_step_graph(
    graphs: Sequence[CommunicationGraph],
    witnesses: Optional[Sequence[CommunicationGraph]] = None,
    use_union_form: bool = False,
) -> Dict[CommunicationGraph, Set[CommunicationGraph]]:
    """The one-step α relation on ``graphs`` as an adjacency mapping.

    ``result[G]`` contains every ``H`` such that ``G α_{N,K} H`` for some
    witness ``K`` (witnesses default to ``graphs`` themselves, i.e. the
    network model).  The relation is symmetric, and reflexive on every graph
    for which some witness exists.
    """
    graphs = _check_model(graphs)
    witnesses = list(witnesses) if witnesses is not None else graphs
    related = alpha_related_union if use_union_form else alpha_related
    adjacency: Dict[CommunicationGraph, Set[CommunicationGraph]] = {g: set() for g in graphs}
    for idx_g, g in enumerate(graphs):
        for h in graphs[idx_g:]:
            if any(related(g, h, k) for k in witnesses):
                adjacency[g].add(h)
                adjacency[h].add(g)
    return adjacency


def alpha_star_related(
    graphs: Sequence[CommunicationGraph],
    graph_g: CommunicationGraph,
    graph_h: CommunicationGraph,
    use_union_form: bool = False,
) -> bool:
    """Whether ``G α*_N H`` (transitive closure of the one-step α relation)."""
    classes = alpha_classes(graphs, use_union_form=use_union_form)
    for cls in classes:
        if graph_g in cls and graph_h in cls:
            return True
    return False


def alpha_classes(
    graphs: Sequence[CommunicationGraph], use_union_form: bool = False
) -> List[FrozenSet[CommunicationGraph]]:
    """The equivalence classes of ``α*_N`` (connected components of the α step graph)."""
    graphs = _check_model(graphs)
    adjacency = alpha_step_graph(graphs, use_union_form=use_union_form)
    return _connected_components(graphs, adjacency)


def beta_classes(
    graphs: Sequence[CommunicationGraph], use_union_form: bool = False
) -> List[FrozenSet[CommunicationGraph]]:
    """The β_N-classes of Definition 16, via partition refinement.

    Starting from the α*-classes, each class ``Q`` is split into the connected
    components of the α relation restricted to witnesses ``K ∈ Q``; this is
    iterated until no class splits.  At the fixpoint every class satisfies the
    closure property (any two members are α-chain connected through members
    and witnesses of the same class), and since splits only happen when the
    closure property fails, the fixpoint is the coarsest such refinement.
    """
    graphs = _check_model(graphs)
    partition: List[List[CommunicationGraph]] = [
        list(cls) for cls in alpha_classes(graphs, use_union_form=use_union_form)
    ]
    changed = True
    while changed:
        changed = False
        refined: List[List[CommunicationGraph]] = []
        for cls in partition:
            adjacency = alpha_step_graph(cls, witnesses=cls, use_union_form=use_union_form)
            components = _connected_components(cls, adjacency)
            if len(components) > 1:
                changed = True
            refined.extend([list(c) for c in components])
        partition = refined
    return [frozenset(cls) for cls in partition]


def is_source_incompatible(graphs: Sequence[CommunicationGraph]) -> bool:
    """Definition 18: no agent is a root of *every* graph of the model."""
    graphs = _check_model(graphs)
    common = roots(graphs[0])
    for g in graphs[1:]:
        common = common & roots(g)
        if not common:
            return True
    return len(common) == 0


def alpha_diameter(
    graphs: Sequence[CommunicationGraph],
    use_union_form: bool = False,
) -> float:
    """The α-diameter ``D`` of a network model (Definition 22).

    ``D`` is the smallest integer such that any two graphs of the model are
    connected by a chain of at most ``D`` α-steps (each step witnessed by some
    graph of the model).  Returns ``float('inf')`` when the α step graph is
    disconnected.  Models with a single graph have diameter 1 when the graph
    is α-related to itself (which holds whenever the model has a rooted
    witness) — matching the paper's convention ``D >= 1``.
    """
    graphs = _check_model(graphs)
    adjacency = alpha_step_graph(graphs, use_union_form=use_union_form)
    diameter = 1  # Definition 22 requires D >= 1.
    for source in graphs:
        distances = _bfs_distances(source, graphs, adjacency)
        for target in graphs:
            dist = distances.get(target)
            if dist is None:
                return float("inf")
            diameter = max(diameter, dist)
    return float(diameter)


def alpha_chain(
    graphs: Sequence[CommunicationGraph],
    graph_g: CommunicationGraph,
    graph_h: CommunicationGraph,
    use_union_form: bool = False,
) -> Optional[List[CommunicationGraph]]:
    """A shortest α-chain ``G = H_0, ..., H_q = H`` within the model, or None.

    The chain witnesses ``G α*_N H`` and its length (number of steps ``q``) is
    at most the α-diameter of the model.
    """
    graphs = _check_model(graphs)
    adjacency = alpha_step_graph(graphs, use_union_form=use_union_form)
    if graph_g == graph_h:
        return [graph_g]
    predecessors: Dict[CommunicationGraph, CommunicationGraph] = {}
    queue = deque([graph_g])
    seen = {graph_g}
    while queue:
        current = queue.popleft()
        for neighbor in adjacency.get(current, ()):  # pragma: no branch
            if neighbor in seen:
                continue
            seen.add(neighbor)
            predecessors[neighbor] = current
            if neighbor == graph_h:
                chain = [neighbor]
                while chain[-1] != graph_g:
                    chain.append(predecessors[chain[-1]])
                return list(reversed(chain))
            queue.append(neighbor)
    return None


# --------------------------------------------------------------------------- #
# Internal helpers
# --------------------------------------------------------------------------- #

def _connected_components(
    graphs: Sequence[CommunicationGraph],
    adjacency: Dict[CommunicationGraph, Set[CommunicationGraph]],
) -> List[FrozenSet[CommunicationGraph]]:
    remaining = list(graphs)
    seen: Set[CommunicationGraph] = set()
    components: List[FrozenSet[CommunicationGraph]] = []
    for start in remaining:
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            current = queue.popleft()
            for neighbor in adjacency.get(current, ()):  # pragma: no branch
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(frozenset(component))
    return components


def _bfs_distances(
    source: CommunicationGraph,
    graphs: Sequence[CommunicationGraph],
    adjacency: Dict[CommunicationGraph, Set[CommunicationGraph]],
) -> Dict[CommunicationGraph, int]:
    distances: Dict[CommunicationGraph, int] = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in adjacency.get(current, ()):  # pragma: no branch
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    del graphs  # only needed for the signature symmetry with callers
    return distances
