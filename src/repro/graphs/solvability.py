"""Solvability characterizations for consensus problems in dynamic networks.

Two characterizations are used throughout the paper:

* **Asymptotic consensus** is solvable in a network model ``N`` iff every
  graph of ``N`` is rooted (Theorem 1 of [Charron-Bost et al., ICALP'15],
  quoted in Section 2.2).
* **Exact consensus** is solvable in ``N`` iff no ``β_N``-class is
  source-incompatible (Theorem 19, the generalization of
  [Coulouma et al., TCS 2015] Theorem 4.10).

When exact consensus *is* solvable the optimal contraction rate is 0 (decide
then stop), so the paper's lower bounds only kick in on models where exact
consensus is unsolvable; :func:`unsolvable_beta_classes` exposes the
witnessing classes, which Theorem 5 / Corollary 23 then feed into the
α-diameter bound.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.graphs.digraph import CommunicationGraph
from repro.graphs.properties import is_rooted
from repro.graphs.relations import beta_classes, is_source_incompatible


def asymptotic_consensus_solvable(graphs: Sequence[CommunicationGraph]) -> bool:
    """True iff asymptotic consensus is solvable in the model (all graphs rooted)."""
    graphs = list(graphs)
    return bool(graphs) and all(is_rooted(g) for g in graphs)


def exact_consensus_solvable(
    graphs: Sequence[CommunicationGraph], use_union_form: bool = False
) -> bool:
    """True iff exact consensus is solvable in the model.

    By Theorem 19, exact consensus is solvable iff every ``β_N``-class has a
    common root (i.e. no class is source-incompatible).
    """
    for cls in beta_classes(graphs, use_union_form=use_union_form):
        if is_source_incompatible(list(cls)):
            return False
    return True


def unsolvable_beta_classes(
    graphs: Sequence[CommunicationGraph], use_union_form: bool = False
) -> List[List[CommunicationGraph]]:
    """The source-incompatible ``β_N``-classes (empty iff exact consensus is solvable).

    These are exactly the sub-models to which Theorem 5 can be applied via
    Corollary 23 to obtain a strictly positive contraction-rate lower bound.
    """
    result: List[List[CommunicationGraph]] = []
    for cls in beta_classes(graphs, use_union_form=use_union_form):
        members = list(cls)
        if is_source_incompatible(members):
            result.append(members)
    return result
