"""Products of communication graphs.

The product ``G ∘ H`` (Section 2) has an edge ``i -> j`` whenever there is a
``k`` with ``(i, k)`` in ``G`` and ``(k, j)`` in ``H``; it describes the
two-round "heard-of" relation when ``G`` is the round-``t`` graph and ``H``
the round-``t+1`` graph.  Because all graphs contain self-loops, the product
of two graphs contains both factors' edge sets.

A key structural fact used by the amortized midpoint algorithm (Section 1,
property (ii)) is that the product of any ``n-1`` rooted graphs on ``n``
nodes is non-split; :func:`product_is_nonsplit_after` exposes the minimal
prefix length for a given sequence.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.packed import product_sequence_stack, stack_adjacencies
from repro.graphs.properties import is_nonsplit


def product(first: CommunicationGraph, second: CommunicationGraph) -> CommunicationGraph:
    """The graph product ``first ∘ second``.

    Edge ``i -> j`` exists iff some ``k`` satisfies ``(i, k)`` in ``first``
    and ``(k, j)`` in ``second``.  With the convention ``adj[i, j]`` = edge
    ``i -> j`` this is the boolean matrix product of the adjacency matrices.
    """
    first._check_same_size(second)
    adj = first.adjacency @ second.adjacency
    name = None
    if first.name and second.name:
        name = f"{first.name}∘{second.name}"
    return CommunicationGraph(first.n, adjacency=adj, name=name)


def product_sequence(graphs: Sequence[CommunicationGraph]) -> CommunicationGraph:
    """Left-to-right product ``G_1 ∘ G_2 ∘ ... ∘ G_k`` of a non-empty sequence.

    The result's edge ``i -> j`` means that agent ``j``'s state after the last
    round may depend on agent ``i``'s state before the first round (a
    "heard-of" chain exists).
    """
    graphs = list(graphs)
    if not graphs:
        raise GraphError("product_sequence needs at least one graph")
    result = graphs[0]
    for g in graphs[1:]:
        result = product(result, g)
    return result


def product_sequence_batch(
    sequences: Sequence[Sequence[CommunicationGraph]],
) -> np.ndarray:
    """Products of ``K`` candidate graph sequences as batched boolean matmuls.

    ``sequences`` holds ``K`` non-empty graph sequences of one common length
    ``T``; the result is the boolean ``(K, n, n)`` tensor whose ``k``-th
    slice equals ``product_sequence(sequences[k]).adjacency``.  Each round
    becomes one stacked ``(K, n, n) @ (K, n, n)`` matmul, so evaluating a
    whole candidate set costs ``T`` array operations instead of ``K · T``
    Python-level products.
    """
    candidate_sequences = [list(sequence) for sequence in sequences]
    if not candidate_sequences:
        raise GraphError("product_sequence_batch needs at least one sequence")
    lengths = {len(sequence) for sequence in candidate_sequences}
    if len(lengths) != 1 or 0 in lengths:
        raise GraphError(
            "product_sequence_batch needs candidate sequences sharing one non-zero length"
        )
    rounds = [
        stack_adjacencies([sequence[t] for sequence in candidate_sequences])
        for t in range(lengths.pop())
    ]
    return product_sequence_stack(rounds)


def power(graph: CommunicationGraph, exponent: int) -> CommunicationGraph:
    """The ``exponent``-fold product of ``graph`` with itself (``exponent >= 1``)."""
    if exponent < 1:
        raise GraphError(f"power exponent must be >= 1, got {exponent}")
    return product_sequence([graph] * exponent)


def product_is_nonsplit_after(graphs: Iterable[CommunicationGraph]) -> Optional[int]:
    """Length of the shortest prefix whose product is non-split, or None.

    By [Charron-Bost et al., ICALP'15], any product of ``n - 1`` rooted graphs
    with ``n`` nodes is non-split, so for sequences of rooted graphs the
    returned value is at most ``n - 1`` whenever the sequence is that long.
    """
    prefix: List[CommunicationGraph] = []
    running: Optional[CommunicationGraph] = None
    for g in graphs:
        prefix.append(g)
        running = g if running is None else product(running, g)
        if is_nonsplit(running):
            return len(prefix)
    return None
