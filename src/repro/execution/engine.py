"""The synchronous round engine.

``run_execution`` drives an :class:`~repro.algorithms.base.Algorithm` for a
given number of rounds against a communication pattern, producing an
:class:`~repro.execution.execution.Execution` record.  ``apply_graph`` (the
``G.C`` operation of Section 2) performs a single round and is also used by
the valency estimator and by adaptive adversaries to evaluate candidate
successor configurations without committing to them.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import Algorithm
from repro.exceptions import ExecutionError
from repro.execution.execution import Execution
from repro.execution.state import Configuration
from repro.graphs.digraph import CommunicationGraph
from repro.models.patterns import CommunicationPattern, RoundContext
from repro.types import ValuesLike, as_value_matrix


def initial_configuration(
    algorithm: Algorithm, initial_values: ValuesLike
) -> Configuration:
    """Build ``C_0`` for ``algorithm`` from the agents' initial values."""
    values = as_value_matrix(initial_values)
    n = values.shape[0]
    if n < 1:
        raise ExecutionError("at least one agent is required")
    states = tuple(algorithm.initial_state(i, values[i], n) for i in range(n))
    outputs = np.vstack([np.asarray(algorithm.output(i, states[i]), dtype=float) for i in range(n)])
    return Configuration(states=states, outputs=outputs, round_number=0)


def apply_graph(
    algorithm: Algorithm,
    configuration: Configuration,
    graph: CommunicationGraph,
) -> Configuration:
    """The successor configuration ``G.C``: one synchronous round with graph ``G``.

    Every agent broadcasts its message, receives the messages of its
    in-neighbors in ``graph`` (always including its own), and applies the
    algorithm's transition function.
    """
    n = configuration.n
    if graph.n != n:
        raise ExecutionError(
            f"communication graph has {graph.n} agents but the configuration has {n}"
        )
    round_number = configuration.round_number + 1
    messages = [algorithm.message(i, configuration.states[i]) for i in range(n)]
    new_states: List[Any] = []
    for j in range(n):
        received = {i: messages[i] for i in graph.in_neighbors(j)}
        new_states.append(
            algorithm.transition(j, configuration.states[j], received, round_number)
        )
    outputs = np.vstack(
        [np.asarray(algorithm.output(j, new_states[j]), dtype=float) for j in range(n)]
    )
    return Configuration(states=tuple(new_states), outputs=outputs, round_number=round_number)


def successor_outputs(
    algorithm: Algorithm,
    configuration: Configuration,
    graph: CommunicationGraph,
) -> np.ndarray:
    """The output matrix of ``G.C`` (convenience wrapper around :func:`apply_graph`)."""
    return apply_graph(algorithm, configuration, graph).outputs


def run_execution(
    algorithm: Algorithm,
    initial_values: ValuesLike,
    pattern: CommunicationPattern,
    rounds: int,
    record_every: int = 1,
) -> Execution:
    """Run ``algorithm`` for ``rounds`` rounds against ``pattern``.

    Parameters
    ----------
    algorithm:
        The local algorithm to run.
    initial_values:
        One initial value per agent (scalars or d-vectors).
    pattern:
        The communication pattern; adaptive patterns receive a
        :class:`~repro.models.patterns.RoundContext` each round.
    rounds:
        Number of rounds ``T`` to execute (``T >= 0``).
    record_every:
        Keep every ``record_every``-th configuration in addition to the
        initial and final ones (1 keeps everything).  The graphs list always
        has one entry per executed round.

    Returns
    -------
    Execution
        The recorded execution prefix.
    """
    if rounds < 0:
        raise ExecutionError(f"rounds must be non-negative, got {rounds}")
    if record_every < 1:
        raise ExecutionError(f"record_every must be >= 1, got {record_every}")

    pattern.reset()
    configuration = initial_configuration(algorithm, initial_values)
    execution = Execution(algorithm_name=algorithm.name, configurations=[configuration], graphs=[])
    history: List[CommunicationGraph] = []

    for t in range(1, rounds + 1):
        context = RoundContext(
            round_number=t,
            outputs=configuration.outputs,
            states=configuration.states,
            algorithm=algorithm,
            simulate_outputs=lambda g, _c=configuration: successor_outputs(algorithm, _c, g),
            history=history,
        )
        graph = pattern.graph_at(t, context)
        configuration = apply_graph(algorithm, configuration, graph)
        history.append(graph)
        execution.graphs.append(graph)
        if t % record_every == 0 or t == rounds:
            execution.configurations.append(configuration)

    return execution


def run_from_configuration(
    algorithm: Algorithm,
    configuration: Configuration,
    graphs: Sequence[CommunicationGraph],
) -> Tuple[Configuration, List[Configuration]]:
    """Apply a fixed finite graph sequence starting from ``configuration``.

    Returns the final configuration and the list of all intermediate
    configurations (excluding the starting one).  Used by the valency
    estimator to evaluate candidate suffixes.
    """
    intermediate: List[Configuration] = []
    current = configuration
    for graph in graphs:
        current = apply_graph(algorithm, current, graph)
        intermediate.append(current)
    return current, intermediate
