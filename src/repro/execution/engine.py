"""The synchronous round engine.

``run_execution`` drives an :class:`~repro.algorithms.base.Algorithm` for a
given number of rounds against a communication pattern, producing an
:class:`~repro.execution.execution.Execution` record.  ``apply_graph`` (the
``G.C`` operation of Section 2) performs a single round and is also used by
the valency estimator and by adaptive adversaries to evaluate candidate
successor configurations without committing to them.

Two execution paths are available and produce equivalent executions:

* the **per-agent path** — the fully general reference implementation that
  builds a ``{sender: value}`` dict per agent per round and calls the
  algorithm's ``transition``; and
* the **vectorized fast path** — taken automatically whenever the algorithm
  implements the ``batch_*`` hooks of :class:`~repro.algorithms.base.Algorithm`
  (all convex-combination algorithms with a ``combine_all``, plus the
  amortized midpoint algorithm).  Whole rounds are computed as masked NumPy
  reductions over the graph's adjacency matrix, and per-agent states are only
  materialized for recorded configurations.

``use_fast_path=None`` (the default) auto-selects; ``False`` forces the
per-agent path (used by the equivalence tests and benchmarks) and ``True``
requires the fast path.  Adaptive patterns keep working on the fast path:
the :class:`~repro.models.patterns.RoundContext` exposes the same outputs and
(lazily materialized) states, and ``simulate_outputs`` routes through the
same dispatch.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import Algorithm, ConvexCombinationAlgorithm
from repro.config import resolve_use_fast_path
from repro.exceptions import ExecutionError
from repro.execution.execution import Execution
from repro.execution.state import Configuration
from repro.graphs.digraph import CommunicationGraph
from repro.models.patterns import CommunicationPattern, RoundContext
from repro.types import ValuesLike, as_value_matrix


def _fast_path_enabled(algorithm: Algorithm, use_fast_path: Optional[bool]) -> bool:
    """Resolve the ``use_fast_path`` tri-state against the algorithm's support.

    An explicit argument wins; ``None`` consults the active
    :class:`~repro.config.EngineConfig` (if any) before auto-selecting.
    """
    use_fast_path = resolve_use_fast_path(use_fast_path)
    if use_fast_path is None:
        return algorithm.supports_batch()
    if use_fast_path and not algorithm.supports_batch():
        raise ExecutionError(
            f"use_fast_path=True but {algorithm.name} does not implement the batch hooks"
        )
    return use_fast_path


class _LazyStates(Sequence):
    """A sequence of per-agent states materialized only on first access.

    The fast path hands this to :class:`~repro.models.patterns.RoundContext`
    so that oblivious patterns never pay for state materialization while
    adaptive adversaries still see the exact per-agent states.
    """

    __slots__ = ("_thunk", "_states")

    def __init__(self, thunk) -> None:
        self._thunk = thunk
        self._states: Optional[Tuple[Any, ...]] = None

    def _materialize(self) -> Tuple[Any, ...]:
        if self._states is None:
            self._states = tuple(self._thunk())
        return self._states

    def __getitem__(self, index):
        return self._materialize()[index]

    def __len__(self) -> int:
        return len(self._materialize())

    def __iter__(self):
        return iter(self._materialize())


class _AdjacencyCache:
    """Memoizes stacked ``(C, n, n)`` adjacency tensors across rounds.

    Candidate graph lists frequently repeat from decision to decision (a
    greedy adversary re-evaluates the same model every round, Ψ-block
    adversaries replay the committed block graph, constant suffixes repeat one
    list for a whole suffix); re-stacking the adjacency matrices every round
    is pure waste then.  Keys are the identities of the graph objects in the
    list — the cached tuple keeps them alive, so identity keys stay valid.
    """

    __slots__ = ("_store", "_max_entries", "_max_bytes", "_bytes")

    def __init__(self, max_entries: int = 64, max_bytes: int = 16 << 20) -> None:
        self._store: dict = {}
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._bytes = 0

    def stacked(self, graphs: Tuple[CommunicationGraph, ...]) -> np.ndarray:
        key = tuple(map(id, graphs))
        hit = self._store.get(key)
        if hit is not None:
            return hit[1]
        stacked = np.stack([graph.adjacency for graph in graphs])
        stacked.setflags(write=False)
        # Bounded in entries *and* bytes: memoization must never pin more
        # memory than the reductions it is saving (large churning per-scenario
        # stacks simply go uncached).
        if (
            len(self._store) < self._max_entries
            and self._bytes + stacked.nbytes <= self._max_bytes
        ):
            self._store[key] = (graphs, stacked)
            self._bytes += stacked.nbytes
        return stacked


def _make_batch_rollout(
    algorithm: Algorithm,
    batch_state: Any,
    round_number: int,
    n: int,
    cache: Optional[_AdjacencyCache] = None,
):
    """A ``RoundContext.batch_rollout`` evaluating candidate graph sequences.

    Each round of the rollout stacks the candidates' adjacency matrices into a
    ``(C, n, n)`` tensor and runs one ``batch_transition`` on it; the
    unbatched ``(n, d)``-shaped state broadcasts against the candidate axis,
    so ``C`` candidate simulations cost one vectorized pass per round instead
    of ``C`` Python-level simulations.
    """

    def rollout(sequences: Sequence[Sequence[CommunicationGraph]]) -> np.ndarray:
        candidate_sequences = [list(sequence) for sequence in sequences]
        lengths = {len(sequence) for sequence in candidate_sequences}
        if not candidate_sequences or len(lengths) != 1 or 0 in lengths:
            raise ExecutionError(
                "batch rollout needs candidate sequences sharing one non-zero length"
            )
        for sequence in candidate_sequences:
            for graph in sequence:
                if graph.n != n:
                    raise ExecutionError(
                        f"candidate graph has {graph.n} agents but the configuration has {n}"
                    )
        state = batch_state
        for offset in range(lengths.pop()):
            round_graphs = tuple(sequence[offset] for sequence in candidate_sequences)
            if cache is not None:
                adjacency = cache.stacked(round_graphs)
            else:
                adjacency = np.stack([graph.adjacency for graph in round_graphs])
            state = algorithm.batch_transition(state, adjacency, round_number + offset)
        outputs = np.asarray(algorithm.batch_outputs(state), dtype=float)
        # Outputs that did not change during the rollout (e.g. mid-phase
        # amortized midpoint) never grow the candidate axis; broadcast to the
        # full (C, n, d) shape so callers always see one row per candidate.
        return np.broadcast_to(
            outputs, (len(candidate_sequences), n, outputs.shape[-1])
        ).copy()

    return rollout


def initial_configuration(
    algorithm: Algorithm, initial_values: ValuesLike
) -> Configuration:
    """Build ``C_0`` for ``algorithm`` from the agents' initial values."""
    values = as_value_matrix(initial_values)
    n = values.shape[0]
    if n < 1:
        raise ExecutionError("at least one agent is required")
    states = tuple(algorithm.initial_state(i, values[i], n) for i in range(n))
    outputs = np.vstack([np.asarray(algorithm.output(i, states[i]), dtype=float) for i in range(n)])
    return Configuration(states=states, outputs=outputs, round_number=0)


def apply_graph(
    algorithm: Algorithm,
    configuration: Configuration,
    graph: CommunicationGraph,
    use_fast_path: Optional[bool] = None,
) -> Configuration:
    """The successor configuration ``G.C``: one synchronous round with graph ``G``.

    Every agent broadcasts its message, receives the messages of its
    in-neighbors in ``graph`` (always including its own), and applies the
    algorithm's transition function.  Convex-combination algorithms with a
    ``combine_all`` dispatch to the vectorized fast path automatically;
    other batch-capable algorithms take the per-agent path here (pass
    ``use_fast_path=True`` to get an error instead of a silent fallback).
    """
    n = configuration.n
    if graph.n != n:
        raise ExecutionError(
            f"communication graph has {graph.n} agents but the configuration has {n}"
        )
    round_number = configuration.round_number + 1

    # Fast path: for convex-combination algorithms the state *is* the output
    # matrix, so one masked reduction replaces the per-agent dict traffic.
    # Other batch-capable algorithms (e.g. the amortized midpoint) carry
    # state beyond the outputs that a single Configuration-level step cannot
    # reconstruct cheaply; only run_execution drives their fast path.
    if _fast_path_enabled(algorithm, use_fast_path):
        if isinstance(algorithm, ConvexCombinationAlgorithm):
            new_values = algorithm.batch_transition(
                configuration.outputs, graph.adjacency, round_number
            )
            return Configuration(
                states=tuple(new_values), outputs=new_values, round_number=round_number
            )
        if use_fast_path:
            raise ExecutionError(
                f"apply_graph's fast path only covers convex-combination algorithms; "
                f"run {algorithm.name} through run_execution(use_fast_path=True) instead"
            )

    messages = [algorithm.message(i, configuration.states[i]) for i in range(n)]
    new_states: List[Any] = []
    for j in range(n):
        received = {i: messages[i] for i in graph.in_neighbors(j)}
        new_states.append(
            algorithm.transition(j, configuration.states[j], received, round_number)
        )
    outputs = np.vstack(
        [np.asarray(algorithm.output(j, new_states[j]), dtype=float) for j in range(n)]
    )
    return Configuration(states=tuple(new_states), outputs=outputs, round_number=round_number)


def successor_outputs(
    algorithm: Algorithm,
    configuration: Configuration,
    graph: CommunicationGraph,
    use_fast_path: Optional[bool] = None,
) -> np.ndarray:
    """The output matrix of ``G.C`` (convenience wrapper around :func:`apply_graph`)."""
    return apply_graph(algorithm, configuration, graph, use_fast_path=use_fast_path).outputs


def run_execution(
    algorithm: Algorithm,
    initial_values: ValuesLike,
    pattern: CommunicationPattern,
    rounds: int,
    record_every: int = 1,
    use_fast_path: Optional[bool] = None,
) -> Execution:
    """Run ``algorithm`` for ``rounds`` rounds against ``pattern``.

    Parameters
    ----------
    algorithm:
        The local algorithm to run.
    initial_values:
        One initial value per agent (scalars or d-vectors).
    pattern:
        The communication pattern; adaptive patterns receive a
        :class:`~repro.models.patterns.RoundContext` each round.
    rounds:
        Number of rounds ``T`` to execute (``T >= 0``).
    record_every:
        Keep every ``record_every``-th configuration in addition to the
        initial and final ones (1 keeps everything).  The graphs list always
        has one entry per executed round.
    use_fast_path:
        ``None`` auto-selects the vectorized fast path when the algorithm
        supports it; ``False`` forces the per-agent reference path; ``True``
        requires the fast path (raising if unsupported).

    Returns
    -------
    Execution
        The recorded execution prefix.
    """
    if rounds < 0:
        raise ExecutionError(f"rounds must be non-negative, got {rounds}")
    if record_every < 1:
        raise ExecutionError(f"record_every must be >= 1, got {record_every}")

    pattern.reset()
    if _fast_path_enabled(algorithm, use_fast_path):
        return _run_execution_fast(algorithm, initial_values, pattern, rounds, record_every)

    configuration = initial_configuration(algorithm, initial_values)
    execution = Execution(algorithm_name=algorithm.name, configurations=[configuration], graphs=[])
    history: List[CommunicationGraph] = []

    for t in range(1, rounds + 1):
        context = RoundContext(
            round_number=t,
            outputs=configuration.outputs,
            states=configuration.states,
            algorithm=algorithm,
            simulate_outputs=lambda g, _c=configuration: successor_outputs(
                algorithm, _c, g, use_fast_path=False
            ),
            history=history,
        )
        graph = pattern.graph_at(t, context)
        configuration = apply_graph(algorithm, configuration, graph, use_fast_path=False)
        history.append(graph)
        execution.graphs.append(graph)
        if t % record_every == 0 or t == rounds:
            execution.configurations.append(configuration)

    return execution


def _run_execution_fast(
    algorithm: Algorithm,
    initial_values: ValuesLike,
    pattern: CommunicationPattern,
    rounds: int,
    record_every: int,
) -> Execution:
    """The vectorized drive loop behind :func:`run_execution`."""
    values = as_value_matrix(initial_values)
    if values.shape[0] < 1:
        raise ExecutionError("at least one agent is required")
    batch_state = algorithm.batch_initial(values)
    outputs = np.asarray(algorithm.batch_outputs(batch_state), dtype=float)
    execution = Execution(
        algorithm_name=algorithm.name,
        configurations=[
            Configuration(states=algorithm.batch_states(batch_state), outputs=outputs, round_number=0)
        ],
        graphs=[],
    )
    history: List[CommunicationGraph] = []
    rollout_cache = _AdjacencyCache()

    for t in range(1, rounds + 1):
        context = RoundContext(
            round_number=t,
            outputs=outputs,
            states=_LazyStates(lambda _bs=batch_state: algorithm.batch_states(_bs)),
            algorithm=algorithm,
            simulate_outputs=lambda g, _bs=batch_state, _t=t: np.asarray(
                algorithm.batch_outputs(algorithm.batch_transition(_bs, g.adjacency, _t)),
                dtype=float,
            ),
            history=history,
            batch_rollout=_make_batch_rollout(
                algorithm, batch_state, t, values.shape[0], cache=rollout_cache
            ),
        )
        graph = pattern.graph_at(t, context)
        if graph.n != values.shape[0]:
            raise ExecutionError(
                f"communication graph has {graph.n} agents but the configuration has {values.shape[0]}"
            )
        batch_state = algorithm.batch_transition(batch_state, graph.adjacency, t)
        outputs = np.asarray(algorithm.batch_outputs(batch_state), dtype=float)
        history.append(graph)
        execution.graphs.append(graph)
        if t % record_every == 0 or t == rounds:
            execution.configurations.append(
                Configuration(
                    states=algorithm.batch_states(batch_state), outputs=outputs, round_number=t
                )
            )

    return execution


def run_from_configuration(
    algorithm: Algorithm,
    configuration: Configuration,
    graphs: Sequence[CommunicationGraph],
    use_fast_path: Optional[bool] = None,
) -> Tuple[Configuration, List[Configuration]]:
    """Apply a fixed finite graph sequence starting from ``configuration``.

    Returns the final configuration and the list of all intermediate
    configurations (excluding the starting one).  Used by the valency
    estimator to evaluate candidate suffixes.
    """
    intermediate: List[Configuration] = []
    current = configuration
    for graph in graphs:
        current = apply_graph(algorithm, current, graph, use_fast_path=use_fast_path)
        intermediate.append(current)
    return current, intermediate
