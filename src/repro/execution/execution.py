"""Execution records.

An execution (Section 2) is the alternating sequence
``C_0, G_1, C_1, G_2, C_2, ...`` of configurations and communication graphs.
:class:`Execution` stores a finite prefix of such a sequence together with
convenience accessors for the output history ``y(0), y(1), ...`` used by the
contraction-rate and decision-time analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.execution.state import Configuration
from repro.graphs.digraph import CommunicationGraph
from repro.types import diameter


@dataclass
class Execution:
    """A finite prefix of an execution of an algorithm.

    Attributes
    ----------
    algorithm_name:
        Name of the algorithm that produced the execution.
    configurations:
        ``T + 1`` configurations ``C_0 .. C_T``.
    graphs:
        The ``T`` communication graphs ``G_1 .. G_T`` applied between them.
    """

    algorithm_name: str
    configurations: List[Configuration] = field(default_factory=list)
    graphs: List[CommunicationGraph] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def rounds(self) -> int:
        """Number of rounds executed (``T``)."""
        return len(self.graphs)

    @property
    def n(self) -> int:
        """Number of agents."""
        return self.configurations[0].n

    @property
    def dimension(self) -> int:
        """Dimension of the agents' values."""
        return self.configurations[0].dimension

    @property
    def initial_configuration(self) -> Configuration:
        """``C_0``."""
        return self.configurations[0]

    @property
    def final_configuration(self) -> Configuration:
        """``C_T``."""
        return self.configurations[-1]

    def configuration(self, round_number: int) -> Configuration:
        """``C_t`` for ``0 <= t <= T``."""
        return self.configurations[round_number]

    def outputs(self, round_number: Optional[int] = None) -> np.ndarray:
        """The output matrix ``y(t)`` (default: the final round)."""
        if round_number is None:
            round_number = self.rounds
        return self.configurations[round_number].outputs

    def output_history(self) -> np.ndarray:
        """Array of shape ``(T + 1, n, d)`` with all output matrices."""
        return np.stack([c.outputs for c in self.configurations])

    def value_trajectory(self, agent_id: int) -> np.ndarray:
        """Array of shape ``(T + 1, d)``: agent ``agent_id``'s outputs over time."""
        return np.stack([c.outputs[agent_id] for c in self.configurations])

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def diameters(self) -> np.ndarray:
        """``Δ(y(t))`` for every ``t`` (length ``T + 1``)."""
        return np.array([c.output_diameter() for c in self.configurations])

    def initial_diameter(self) -> float:
        """``Δ(y(0))``."""
        return self.configurations[0].output_diameter()

    def final_diameter(self) -> float:
        """``Δ(y(T))``."""
        return self.configurations[-1].output_diameter()

    def estimated_limit(self) -> np.ndarray:
        """An estimate of the common limit ``y*``: the centroid of the final outputs.

        Meaningful once the final diameter is small; the estimation error is
        at most the final diameter.
        """
        return self.configurations[-1].outputs.mean(axis=0)

    def validity_holds(self, tol: float = 1e-9) -> bool:
        """Whether every output ever produced lies in the bounding box of the initial values.

        This is a necessary condition of the Validity clause (and equivalent
        to it in dimension 1, coordinate-wise).
        """
        initial = self.configurations[0].outputs
        lo = initial.min(axis=0) - tol
        hi = initial.max(axis=0) + tol
        for config in self.configurations:
            if np.any(config.outputs < lo) or np.any(config.outputs > hi):
                return False
        return True

    def graph_names(self) -> List[str]:
        """Display names of the applied graphs (for reports)."""
        return [g.name or f"G_{t + 1}" for t, g in enumerate(self.graphs)]

    def __repr__(self) -> str:
        return (
            f"Execution({self.algorithm_name}, rounds={self.rounds}, n={self.n}, "
            f"diam {self.initial_diameter():.4g} -> {self.final_diameter():.4g})"
        )


def merge_executions(prefix: Execution, suffix: Execution) -> Execution:
    """Concatenate two executions where ``suffix`` starts at ``prefix``'s final configuration.

    Used by the valency estimator to extend adversarial prefixes with
    convergence suffixes.
    """
    if prefix.configurations and suffix.configurations:
        last = prefix.final_configuration.outputs
        first = suffix.initial_configuration.outputs
        if not np.allclose(last, first):
            raise ValueError("suffix execution does not start at the prefix's final configuration")
    return Execution(
        algorithm_name=prefix.algorithm_name,
        configurations=list(prefix.configurations) + list(suffix.configurations[1:]),
        graphs=list(prefix.graphs) + list(suffix.graphs),
    )


def diameters_of(executions: Sequence[Execution], round_number: int) -> float:
    """Diameter of the union of round-``round_number`` outputs across executions.

    Helper for valency-style analyses that compare sibling executions.
    """
    points = np.vstack([e.outputs(round_number) for e in executions])
    return diameter(points)
