"""B-axis threadpool sharding: the parallel execution backend.

The batched engine already turns ``B`` independent scenarios into stacked
``(B, n, d)`` array programs; every one of those NumPy kernels releases the
GIL, so slicing the scenario axis into contiguous shards and running each
shard's *serial* engine call on a worker thread scales the same code across
cores.  This module holds the two primitives behind
``EngineConfig(threads=...)``:

* :func:`shard_bounds` — split ``B`` scenarios into at most ``threads``
  contiguous, balanced ``(start, stop)`` slices.
* :func:`parallel_map` — run shard thunks on the active config block's
  worker pool (or a transient pool), re-entering the caller's merged
  :class:`~repro.config.EngineConfig` inside each worker thread.

Determinism contract
--------------------
Sharding must be invisible in the results: for every route the merged record
is bit-for-bit identical to the serial run.  Three properties make that hold:

1. Every reduction of the batched engine is elementwise-independent across
   the scenario axis (and the chunked/packed/scan implementations are
   bit-for-bit equal to the dense one), so slicing ``B`` then concatenating
   commutes with every round update.
2. Fault draws are counter-based: a shard covering global scenarios
   ``[start, stop)`` runs under ``replace(plan, scenario_base=plan.
   scenario_base + start)``, which makes its draws the exact slice of the
   unsharded plan's draws (see :class:`repro.faults.FaultPlan`).
3. The config stack is thread-local, so each worker re-enters the caller's
   merged config (with ``threads`` forced to 1 — shards never nest parallel
   runs) and resolves every knob exactly as the caller thread would.

The adversarial route shards because the batched adversary commits a
*per-scenario* argmax over per-scenario histories; each shard drives its own
``copy.deepcopy`` of the adversary, so stateful adversaries cannot race.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.config import _acquire_worker_pool, current_engine_config

T = TypeVar("T")


def shard_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``total`` items into at most ``parts`` contiguous balanced slices.

    Every slice is non-empty (``parts`` is clamped to ``total``) and the
    slice lengths differ by at most one, the longer slices first:

    >>> shard_bounds(7, 3)
    [(0, 3), (3, 5), (5, 7)]
    >>> shard_bounds(2, 7)
    [(0, 1), (1, 2)]
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    parts = min(parts, total)
    if parts == 0:
        return []
    base, extra = divmod(total, parts)
    bounds = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def parallel_map(tasks: Sequence[Callable[[], T]], threads: int) -> List[T]:
    """Run shard thunks on ``threads`` workers, preserving order.

    Pool worker threads start with an *empty* thread-local config stack, so
    each task runs inside the caller's merged :class:`~repro.config.
    EngineConfig` re-entered on the worker (with ``threads`` pinned to 1:
    shards are the leaves of the parallel run).  The pool itself is the
    active config block's lazily-created executor when one owns the thread
    count (torn down by the block's ``__exit__``); otherwise — an explicit
    ``threads=`` keyword or the ``REPRO_THREADS`` default — a transient pool
    lives just for this call.  A single task runs inline on the caller
    thread, under the same re-entered config for identical resolution.

    Exceptions raised by a task propagate to the caller (after all workers
    finish or are cancelled by pool shutdown).
    """
    tasks = list(tasks)
    if not tasks:
        return []
    worker_config = replace(current_engine_config(), threads=1)

    def _run(task: Callable[[], T]) -> T:
        with worker_config:
            return task()

    if len(tasks) == 1:
        return [_run(tasks[0])]
    pool = _acquire_worker_pool(threads)
    if pool is not None:
        return list(pool.map(_run, tasks))
    with ThreadPoolExecutor(
        max_workers=min(threads, len(tasks)), thread_name_prefix="repro-shard"
    ) as transient:
        return list(transient.map(_run, tasks))


__all__ = ["parallel_map", "shard_bounds"]
