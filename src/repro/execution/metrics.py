"""Convergence metrics on executions.

The quantities defined in Section 3 are all derived from the per-round output
diameters ``Δ(y(t))``:

* :func:`diameter_history` — the sequence ``Δ(y(0)), Δ(y(1)), ...``;
* :func:`empirical_contraction_rate` — a geometric-decay fit, i.e. the
  empirical counterpart of the contraction rate
  ``sup_E limsup_t (δ(C_t))^(1/t)``;
* :func:`convergence_round` — the first round where the diameter drops below
  a tolerance (the decision time of the induced approximate consensus
  algorithm);
* :func:`is_valid_execution` — checks the Validity clause.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.execution.execution import Execution


def diameter_history(execution: Execution) -> np.ndarray:
    """``Δ(y(t))`` for every recorded configuration of the execution."""
    return execution.diameters()


def empirical_contraction_rate(
    execution: Execution,
    skip_rounds: int = 0,
    floor: float = 1e-300,
) -> float:
    """Geometric contraction rate fitted from the execution's diameter history.

    Returns ``(Δ(y(T)) / Δ(y(s)))^(1/(T - s))`` where ``s = skip_rounds``;
    this equals the exact per-round factor when the decay is geometric (as it
    is for the optimal algorithms under the proof adversaries) and is the
    natural estimator of ``limsup_t (δ(C_t))^(1/t)`` otherwise.

    Returns 0.0 when the final diameter is (numerically) zero, matching the
    convention that exact agreement corresponds to contraction rate 0.
    """
    diameters = execution.diameters()
    if len(diameters) <= skip_rounds + 1:
        raise ValueError("execution is too short to estimate a contraction rate")
    start = float(diameters[skip_rounds])
    end = float(diameters[-1])
    horizon = len(diameters) - 1 - skip_rounds
    if start <= floor:
        return 0.0
    if end <= floor:
        return 0.0
    return float((end / start) ** (1.0 / horizon))


def per_round_contraction_factors(execution: Execution) -> np.ndarray:
    """The round-by-round factors ``Δ(y(t)) / Δ(y(t-1))`` (NaN where undefined)."""
    diameters = execution.diameters()
    factors = np.full(len(diameters) - 1, np.nan)
    for t in range(1, len(diameters)):
        if diameters[t - 1] > 0:
            factors[t - 1] = diameters[t] / diameters[t - 1]
    return factors


def convergence_round(execution: Execution, tolerance: float) -> Optional[int]:
    """First recorded round ``t`` with ``Δ(y(t)) <= tolerance``, or None.

    This is the earliest round at which all agents could decide while
    satisfying ε-Agreement with ``ε = tolerance`` (given Validity of the
    outputs), i.e. the decision time of the induced approximate consensus
    algorithm.
    """
    for config in execution.configurations:
        if config.output_diameter() <= tolerance:
            return config.round_number
    return None


def is_valid_execution(execution: Execution, tol: float = 1e-9) -> bool:
    """Whether all outputs stay within the bounding box of the initial values."""
    return execution.validity_holds(tol=tol)


def agreement_error(execution: Execution) -> float:
    """The final output diameter (how far from agreement the execution ended)."""
    return execution.final_diameter()
