"""Configurations: collections of per-agent states plus their outputs.

A *configuration* (Section 2) is a collection of ``n`` agent states, one per
agent.  The engine additionally materializes the output matrix ``y`` (shape
``(n, d)``) because almost every analysis in the library (diameters,
valencies, contraction rates, validity checks) operates on the outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from repro.types import diameter


@dataclass(frozen=True)
class Configuration:
    """An immutable snapshot of all agent states and their outputs.

    Attributes
    ----------
    states:
        Tuple of the ``n`` opaque agent states.
    outputs:
        ``(n, d)`` float array with row ``i`` equal to ``y_i``.
    round_number:
        The round after which this configuration holds (0 for the initial
        configuration).
    """

    states: Tuple[Any, ...]
    outputs: np.ndarray
    round_number: int

    @property
    def n(self) -> int:
        """Number of agents."""
        return len(self.states)

    @property
    def dimension(self) -> int:
        """Dimension ``d`` of the agents' values."""
        return int(self.outputs.shape[1])

    def output_of(self, agent_id: int) -> np.ndarray:
        """The output value ``y_i`` of agent ``agent_id``."""
        return self.outputs[agent_id]

    def output_diameter(self) -> float:
        """``Δ(y(t))``: the diameter of the set of output values."""
        return diameter(self.outputs)

    def indistinguishable_for(self, other: "Configuration", agent_id: int) -> bool:
        """The relation ``C ∼_i C'``: agent ``agent_id`` has the same state in both.

        States are compared with ``==``; numpy-array states are compared
        element-wise.
        """
        mine = self.states[agent_id]
        theirs = other.states[agent_id]
        return _states_equal(mine, theirs)

    def __repr__(self) -> str:
        return (
            f"Configuration(round={self.round_number}, n={self.n}, "
            f"diam={self.output_diameter():.6g})"
        )


def _states_equal(state_a: Any, state_b: Any) -> bool:
    """Structural equality of agent states, handling numpy arrays and containers."""
    if isinstance(state_a, np.ndarray) or isinstance(state_b, np.ndarray):
        return bool(np.array_equal(np.asarray(state_a), np.asarray(state_b)))
    if isinstance(state_a, dict) and isinstance(state_b, dict):
        if state_a.keys() != state_b.keys():
            return False
        return all(_states_equal(state_a[k], state_b[k]) for k in state_a)
    if isinstance(state_a, (list, tuple)) and isinstance(state_b, (list, tuple)):
        if len(state_a) != len(state_b) or type(state_a) is not type(state_b):
            return False
        return all(_states_equal(a, b) for a, b in zip(state_a, state_b))
    if hasattr(state_a, "__dataclass_fields__") and hasattr(state_b, "__dataclass_fields__"):
        if type(state_a) is not type(state_b):
            return False
        return all(
            _states_equal(getattr(state_a, f), getattr(state_b, f))
            for f in state_a.__dataclass_fields__
        )
    result = state_a == state_b
    if isinstance(result, np.ndarray):
        return bool(result.all())
    return bool(result)
