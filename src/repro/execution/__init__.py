"""Round-based execution engine for the dynamic system model.

The engine turns an algorithm, a vector of initial values and a communication
pattern into an :class:`~repro.execution.execution.Execution` record holding
the full history of configurations (Section 2): the per-round graphs, per-
round outputs ``y(t)`` and (optionally) the opaque agent states.
"""

from repro.execution.engine import apply_graph, run_execution, successor_outputs
from repro.execution.execution import Execution
from repro.execution.metrics import (
    convergence_round,
    diameter_history,
    empirical_contraction_rate,
    is_valid_execution,
)
from repro.execution.state import Configuration

__all__ = [
    "Configuration",
    "Execution",
    "apply_graph",
    "run_execution",
    "successor_outputs",
    "diameter_history",
    "empirical_contraction_rate",
    "convergence_round",
    "is_valid_execution",
]
