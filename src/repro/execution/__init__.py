"""Round-based execution engine for the dynamic system model.

The engine turns an algorithm, a vector of initial values and a communication
pattern into an :class:`~repro.execution.execution.Execution` record holding
the full history of configurations (Section 2): the per-round graphs, per-
round outputs ``y(t)`` and (optionally) the opaque agent states.

Two execution paths are provided: the per-agent reference path and a
vectorized fast path (see :mod:`repro.execution.engine`), plus a batched
ensemble runner (:mod:`repro.execution.batch`) that executes many scenarios
at once through the fast path.
"""

from repro.execution.batch import (
    AdversarialEnsembleExecution,
    EnsembleExecution,
    materialize_pattern,
    run_adversarial_ensemble,
    run_ensemble,
    run_pattern_ensemble,
    stack_initial_values,
    sweep,
)
from repro.execution.engine import (
    apply_graph,
    initial_configuration,
    run_execution,
    run_from_configuration,
    successor_outputs,
)
from repro.execution.execution import Execution
from repro.execution.metrics import (
    convergence_round,
    diameter_history,
    empirical_contraction_rate,
    is_valid_execution,
)
from repro.execution.state import Configuration

__all__ = [
    "AdversarialEnsembleExecution",
    "Configuration",
    "EnsembleExecution",
    "Execution",
    "apply_graph",
    "initial_configuration",
    "materialize_pattern",
    "run_adversarial_ensemble",
    "run_ensemble",
    "run_execution",
    "run_from_configuration",
    "run_pattern_ensemble",
    "stack_initial_values",
    "successor_outputs",
    "sweep",
    "diameter_history",
    "empirical_contraction_rate",
    "convergence_round",
    "is_valid_execution",
]
