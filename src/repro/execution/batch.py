"""Batched ensemble execution: many independent scenarios in one pass.

The vectorized fast path of :mod:`repro.execution.engine` computes a round as
a masked reduction over the adjacency matrix.  Because every reduction
broadcasts over leading axes, an entire *ensemble* of ``B`` independent
scenarios — stacked ``(B, n, d)`` value tensors combined with per-scenario
graph sequences stacked into ``(B, n, n)`` adjacency tensors — runs through
the same NumPy expressions at once.  This is what opens scenario diversity at
scale: initial-value grids, pattern grids, and Monte-Carlo ensembles execute
in a handful of array operations per round instead of ``B`` separate Python
drive loops.

Entry points
------------
* :func:`run_ensemble` — run ``B`` scenarios against explicit per-round
  graphs (shared across scenarios or one per scenario).
* :func:`run_pattern_ensemble` — the same with oblivious
  :class:`~repro.models.patterns.CommunicationPattern` objects.
* :func:`sweep` — cross-product convenience over initial-value and pattern
  grids.

Algorithms without batch hooks fall back to scenario-by-scenario execution
through :func:`repro.execution.engine.apply_graph`, so the API is total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.base import Algorithm
from repro.exceptions import ExecutionError
from repro.execution.engine import apply_graph, initial_configuration
from repro.graphs.digraph import CommunicationGraph
from repro.models.patterns import CommunicationPattern
from repro.types import ValuesLike, as_value_matrix

#: One round of ensemble communication: a single graph shared by every
#: scenario, or one graph per scenario (length ``B``).
RoundGraphs = Union[CommunicationGraph, Sequence[CommunicationGraph]]


@dataclass
class EnsembleExecution:
    """The recorded trajectory of a batched ensemble run.

    Attributes
    ----------
    algorithm_name:
        Name of the algorithm that produced the ensemble.
    recorded_rounds:
        The round numbers of the recorded snapshots (always includes 0 and
        the final round).
    recorded_outputs:
        Array of shape ``(R, B, n, d)``: one ``(B, n, d)`` output tensor per
        recorded round.
    scenario_labels:
        Optional per-scenario labels (e.g. ``(value_index, pattern_index)``
        pairs produced by :func:`sweep`).
    """

    algorithm_name: str
    recorded_rounds: List[int]
    recorded_outputs: np.ndarray
    scenario_labels: Optional[List[object]] = field(default=None)

    @property
    def batch_size(self) -> int:
        """Number of scenarios ``B``."""
        return int(self.recorded_outputs.shape[1])

    @property
    def n(self) -> int:
        """Number of agents per scenario."""
        return int(self.recorded_outputs.shape[2])

    @property
    def dimension(self) -> int:
        """Dimension ``d`` of the agents' values."""
        return int(self.recorded_outputs.shape[3])

    @property
    def rounds(self) -> int:
        """Number of executed rounds ``T``."""
        return self.recorded_rounds[-1]

    @property
    def final_outputs(self) -> np.ndarray:
        """The ``(B, n, d)`` output tensor after the last round."""
        return self.recorded_outputs[-1]

    def outputs_at_round(self, round_number: int) -> np.ndarray:
        """The ``(B, n, d)`` outputs of a recorded round."""
        try:
            index = self.recorded_rounds.index(round_number)
        except ValueError as exc:
            raise ExecutionError(
                f"round {round_number} was not recorded (recorded: {self.recorded_rounds})"
            ) from exc
        return self.recorded_outputs[index]

    def diameters(self) -> np.ndarray:
        """Per-scenario output diameters at every recorded round, shape ``(R, B)``."""
        return np.stack([_batch_diameters(snapshot) for snapshot in self.recorded_outputs])

    def final_diameters(self) -> np.ndarray:
        """Per-scenario output diameters after the last round, shape ``(B,)``."""
        return _batch_diameters(self.final_outputs)

    def convergence_rounds(self, tolerance: float) -> np.ndarray:
        """Per scenario, the first recorded round with diameter <= ``tolerance`` (-1 if never)."""
        diameters = self.diameters()
        result = np.full(self.batch_size, -1, dtype=int)
        for row, round_number in zip(diameters, self.recorded_rounds):
            hit = (row <= tolerance) & (result < 0)
            result[hit] = round_number
        return result

    def __repr__(self) -> str:
        return (
            f"EnsembleExecution({self.algorithm_name}, B={self.batch_size}, n={self.n}, "
            f"rounds={self.rounds}, mean final diam={float(self.final_diameters().mean()):.4g})"
        )


def _batch_diameters(outputs: np.ndarray) -> np.ndarray:
    """Euclidean output diameter of each scenario of a ``(B, n, d)`` tensor."""
    diffs = outputs[:, :, None, :] - outputs[:, None, :, :]
    distances = np.sqrt((diffs * diffs).sum(axis=-1))
    return distances.max(axis=(-1, -2))


def stack_initial_values(initial_values: Union[np.ndarray, Sequence[ValuesLike]]) -> np.ndarray:
    """Promote per-scenario initial values to a ``(B, n, d)`` float tensor."""
    if isinstance(initial_values, np.ndarray) and initial_values.ndim == 3:
        return initial_values.astype(float, copy=True)
    matrices = [as_value_matrix(values) for values in initial_values]
    if not matrices:
        raise ExecutionError("an ensemble needs at least one scenario")
    shape = matrices[0].shape
    for index, matrix in enumerate(matrices):
        if matrix.shape != shape:
            raise ExecutionError(
                f"scenario {index} has shape {matrix.shape}, expected {shape}: all scenarios "
                "of an ensemble must share n and d"
            )
    return np.stack(matrices)


def _round_adjacency(round_graphs: RoundGraphs, batch_size: int, n: int) -> np.ndarray:
    """The adjacency tensor of one ensemble round: ``(n, n)`` shared or ``(B, n, n)``."""
    if isinstance(round_graphs, CommunicationGraph):
        if round_graphs.n != n:
            raise ExecutionError(f"graph has {round_graphs.n} agents, scenarios have {n}")
        return round_graphs.adjacency
    graphs = list(round_graphs)
    if len(graphs) != batch_size:
        raise ExecutionError(
            f"per-scenario round needs {batch_size} graphs, got {len(graphs)}"
        )
    for graph in graphs:
        if graph.n != n:
            raise ExecutionError(f"graph has {graph.n} agents, scenarios have {n}")
    return np.stack([graph.adjacency for graph in graphs])


def _round_graph_of_scenario(round_graphs: RoundGraphs, scenario: int) -> CommunicationGraph:
    if isinstance(round_graphs, CommunicationGraph):
        return round_graphs
    return round_graphs[scenario]


def run_ensemble(
    algorithm: Algorithm,
    initial_values: Union[np.ndarray, Sequence[ValuesLike]],
    graph_rounds: Sequence[RoundGraphs],
    record_every: int = 1,
    scenario_labels: Optional[Sequence[object]] = None,
) -> EnsembleExecution:
    """Execute ``B`` independent scenarios through the vectorized fast path.

    Parameters
    ----------
    algorithm:
        The algorithm to run; batch-capable algorithms execute all scenarios
        at once, others fall back to a per-scenario loop.
    initial_values:
        A ``(B, n, d)`` tensor or a sequence of ``B`` per-agent value
        collections (all with the same ``n`` and ``d``).
    graph_rounds:
        One entry per round ``t``: either a single
        :class:`~repro.graphs.digraph.CommunicationGraph` applied to every
        scenario, or a length-``B`` sequence of per-scenario graphs.
    record_every:
        Keep every ``record_every``-th round snapshot in addition to the
        initial and final ones.
    scenario_labels:
        Optional labels stored on the result (one per scenario).
    """
    if record_every < 1:
        raise ExecutionError(f"record_every must be >= 1, got {record_every}")
    values = stack_initial_values(initial_values)
    batch_size, n, _d = values.shape
    labels = list(scenario_labels) if scenario_labels is not None else None
    if labels is not None and len(labels) != batch_size:
        raise ExecutionError(f"need {batch_size} scenario labels, got {len(labels)}")
    rounds = len(graph_rounds)

    if not algorithm.supports_batch():
        return _run_ensemble_slow(algorithm, values, graph_rounds, record_every, labels)

    batch_state = algorithm.batch_initial(values)
    recorded_rounds = [0]
    recorded = [np.array(algorithm.batch_outputs(batch_state), dtype=float)]
    for t, round_graphs in enumerate(graph_rounds, start=1):
        adjacency = _round_adjacency(round_graphs, batch_size, n)
        batch_state = algorithm.batch_transition(batch_state, adjacency, t)
        if t % record_every == 0 or t == rounds:
            recorded_rounds.append(t)
            recorded.append(np.array(algorithm.batch_outputs(batch_state), dtype=float))

    return EnsembleExecution(
        algorithm_name=algorithm.name,
        recorded_rounds=recorded_rounds,
        recorded_outputs=np.stack(recorded),
        scenario_labels=labels,
    )


def _run_ensemble_slow(
    algorithm: Algorithm,
    values: np.ndarray,
    graph_rounds: Sequence[RoundGraphs],
    record_every: int,
    labels: Optional[List[object]],
) -> EnsembleExecution:
    """Per-scenario fallback for algorithms without batch hooks."""
    batch_size = values.shape[0]
    rounds = len(graph_rounds)
    per_scenario: List[List[np.ndarray]] = []
    recorded_rounds = [0] + [
        t for t in range(1, rounds + 1) if t % record_every == 0 or t == rounds
    ]
    for scenario in range(batch_size):
        configuration = initial_configuration(algorithm, values[scenario])
        snapshots = [configuration.outputs.copy()]
        for t, round_graphs in enumerate(graph_rounds, start=1):
            graph = _round_graph_of_scenario(round_graphs, scenario)
            configuration = apply_graph(algorithm, configuration, graph)
            if t % record_every == 0 or t == rounds:
                snapshots.append(configuration.outputs.copy())
        per_scenario.append(snapshots)
    recorded = [
        np.stack([per_scenario[b][r] for b in range(batch_size)])
        for r in range(len(recorded_rounds))
    ]
    return EnsembleExecution(
        algorithm_name=algorithm.name,
        recorded_rounds=recorded_rounds,
        recorded_outputs=np.stack(recorded),
        scenario_labels=labels,
    )


def materialize_pattern(pattern: CommunicationPattern, rounds: int) -> List[CommunicationGraph]:
    """Evaluate an oblivious pattern's first ``rounds`` graphs.

    Adaptive patterns cannot be materialized ahead of the execution and raise
    :class:`~repro.exceptions.ExecutionError` (run them one scenario at a time
    through :func:`repro.execution.run_execution`).
    """
    pattern.reset()
    return [pattern.graph_at(t) for t in range(1, rounds + 1)]


def run_pattern_ensemble(
    algorithm: Algorithm,
    initial_values: Union[np.ndarray, Sequence[ValuesLike]],
    patterns: Union[CommunicationPattern, Sequence[CommunicationPattern]],
    rounds: int,
    record_every: int = 1,
    scenario_labels: Optional[Sequence[object]] = None,
) -> EnsembleExecution:
    """Run an ensemble against oblivious communication patterns.

    ``patterns`` is a single pattern shared by every scenario or one pattern
    per scenario.
    """
    if rounds < 0:
        raise ExecutionError(f"rounds must be non-negative, got {rounds}")
    values = stack_initial_values(initial_values)
    batch_size = values.shape[0]
    if isinstance(patterns, CommunicationPattern):
        graph_rounds: List[RoundGraphs] = list(materialize_pattern(patterns, rounds))
    else:
        pattern_list = list(patterns)
        if len(pattern_list) != batch_size:
            raise ExecutionError(
                f"need one pattern per scenario ({batch_size}), got {len(pattern_list)}"
            )
        per_pattern = [materialize_pattern(p, rounds) for p in pattern_list]
        graph_rounds = [
            [per_pattern[b][t] for b in range(batch_size)] for t in range(rounds)
        ]
    return run_ensemble(
        algorithm,
        values,
        graph_rounds,
        record_every=record_every,
        scenario_labels=scenario_labels,
    )


def sweep(
    algorithm: Algorithm,
    initial_values_grid: Sequence[ValuesLike],
    patterns: Union[CommunicationPattern, Sequence[CommunicationPattern]],
    rounds: int,
    record_every: int = 1,
) -> EnsembleExecution:
    """Cross-product sweep over initial-value and pattern grids.

    Builds one scenario per ``(initial values, pattern)`` pair and executes
    the whole grid as a single batched ensemble.  Each scenario is labelled
    ``(value_index, pattern_index)`` so results can be pivoted back onto the
    grid.
    """
    values_list = [as_value_matrix(values) for values in initial_values_grid]
    if not values_list:
        raise ExecutionError("a sweep needs at least one initial-value vector")
    pattern_list = (
        [patterns] if isinstance(patterns, CommunicationPattern) else list(patterns)
    )
    if not pattern_list:
        raise ExecutionError("a sweep needs at least one pattern")
    per_pattern = [materialize_pattern(p, rounds) for p in pattern_list]

    stacked: List[np.ndarray] = []
    labels: List[Tuple[int, int]] = []
    scenario_graphs: List[List[CommunicationGraph]] = []
    for value_index, values in enumerate(values_list):
        for pattern_index in range(len(pattern_list)):
            stacked.append(values)
            labels.append((value_index, pattern_index))
            scenario_graphs.append(per_pattern[pattern_index])
    graph_rounds: List[RoundGraphs] = [
        [scenario_graphs[b][t] for b in range(len(stacked))] for t in range(rounds)
    ]
    return run_ensemble(
        algorithm,
        stack_initial_values(stacked),
        graph_rounds,
        record_every=record_every,
        scenario_labels=labels,
    )
