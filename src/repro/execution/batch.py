"""Batched ensemble execution: many independent scenarios in one pass.

The vectorized fast path of :mod:`repro.execution.engine` computes a round as
a masked reduction over the adjacency matrix.  Because every reduction
broadcasts over leading axes, an entire *ensemble* of ``B`` independent
scenarios — stacked ``(B, n, d)`` value tensors combined with per-scenario
graph sequences stacked into ``(B, n, n)`` adjacency tensors — runs through
the same NumPy expressions at once.  This is what opens scenario diversity at
scale: initial-value grids, pattern grids, and Monte-Carlo ensembles execute
in a handful of array operations per round instead of ``B`` separate Python
drive loops.

Entry points
------------
* :func:`run_ensemble` — run ``B`` scenarios against explicit per-round
  graphs (shared across scenarios or one per scenario).
* :func:`run_pattern_ensemble` — the same with oblivious
  :class:`~repro.models.patterns.CommunicationPattern` objects.
* :func:`run_adversarial_ensemble` — drive ``B`` scenarios under an adaptive
  adversary, evaluating a ``(B, C, n, d)`` candidate tensor per decision and
  committing a per-scenario argmax.
* :func:`sweep` — cross-product convenience over initial-value and pattern
  grids.

Algorithms without batch hooks fall back to scenario-by-scenario execution
through :func:`repro.execution.engine.apply_graph`, so the API is total.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.base import Algorithm
from repro.config import resolve_threads, resolve_use_batch
from repro.exceptions import ConfigError, EnsembleShapeError, ExecutionError
from repro.execution.engine import _AdjacencyCache, apply_graph, initial_configuration
from repro.execution.parallel import parallel_map, shard_bounds
from repro.faults import FaultPlan, FaultSpec, as_fault_plan
from repro.execution.state import Configuration
from repro.graphs.digraph import CommunicationGraph
from repro.models.patterns import AdversarialPattern, CommunicationPattern, EnsemblePlan
from repro.types import ValuesLike, as_value_matrix, pairwise_diameters

#: One round of ensemble communication: a single graph shared by every
#: scenario, or one graph per scenario (length ``B``).
RoundGraphs = Union[CommunicationGraph, Sequence[CommunicationGraph]]


@dataclass
class EnsembleExecution:
    """The recorded trajectory of a batched ensemble run.

    Attributes
    ----------
    algorithm_name:
        Name of the algorithm that produced the ensemble.
    recorded_rounds:
        The round numbers of the recorded snapshots (always includes 0 and
        the final round).
    recorded_outputs:
        Array of shape ``(R, B, n, d)``: one ``(B, n, d)`` output tensor per
        recorded round.
    scenario_labels:
        Optional per-scenario labels (e.g. ``(value_index, pattern_index)``
        pairs produced by :func:`sweep`).
    batched:
        Provenance: ``True`` when the scenarios ran as one stacked ensemble
        through the batch hooks, ``False`` when the per-scenario fallback
        loop ran (``None`` on records predating the field).
    fault_plan:
        Provenance: the resolved :class:`~repro.faults.FaultPlan` the run
        was executed under (``None`` for fault-free runs — a zero plan is
        normalized to ``None`` before execution).
    recorded_configurations:
        Per-scenario configuration snapshots, present when the run was asked
        for them (``record_states=True``): entry ``[r][b]`` is scenario
        ``b``'s full :class:`~repro.execution.state.Configuration` (per-agent
        states plus outputs) at recorded round ``recorded_rounds[r]``.  On
        the batched path the snapshots are recorded batch states sliced per
        scenario through the algorithm's ``batch_map``/``batch_states``
        hooks, so they are exactly the configurations ``B`` independent
        single-scenario runs would record — which is what lets the ensemble
        certification engine restore them via ``batch_state_from_states``.
    """

    algorithm_name: str
    recorded_rounds: List[int]
    recorded_outputs: np.ndarray
    scenario_labels: Optional[List[object]] = field(default=None)
    batched: Optional[bool] = field(default=None)
    recorded_configurations: Optional[List[List[Configuration]]] = field(
        default=None, repr=False
    )
    fault_plan: Optional[FaultPlan] = field(default=None, repr=False)

    @property
    def batch_size(self) -> int:
        """Number of scenarios ``B``."""
        return int(self.recorded_outputs.shape[1])

    @property
    def n(self) -> int:
        """Number of agents per scenario."""
        return int(self.recorded_outputs.shape[2])

    @property
    def dimension(self) -> int:
        """Dimension ``d`` of the agents' values."""
        return int(self.recorded_outputs.shape[3])

    @property
    def rounds(self) -> int:
        """Number of executed rounds ``T``."""
        return self.recorded_rounds[-1]

    @property
    def final_outputs(self) -> np.ndarray:
        """The ``(B, n, d)`` output tensor after the last round."""
        return self.recorded_outputs[-1]

    def outputs_at_round(self, round_number: int) -> np.ndarray:
        """The ``(B, n, d)`` outputs of a recorded round."""
        try:
            index = self.recorded_rounds.index(round_number)
        except ValueError as exc:
            raise ExecutionError(
                f"round {round_number} was not recorded (recorded: {self.recorded_rounds})"
            ) from exc
        return self.recorded_outputs[index]

    def diameters(self) -> np.ndarray:
        """Per-scenario output diameters at every recorded round, shape ``(R, B)``."""
        return np.stack([_batch_diameters(snapshot) for snapshot in self.recorded_outputs])

    def final_diameters(self) -> np.ndarray:
        """Per-scenario output diameters after the last round, shape ``(B,)``."""
        return _batch_diameters(self.final_outputs)

    @property
    def has_recorded_states(self) -> bool:
        """Whether per-scenario configuration snapshots were recorded."""
        return self.recorded_configurations is not None

    def scenario_configurations(self, scenario: int) -> List[Configuration]:
        """Scenario ``scenario``'s recorded configurations, ``C_0 .. C_T``.

        The returned list matches what :func:`repro.execution.run_execution`
        would have recorded for that scenario alone (one configuration per
        entry of :attr:`recorded_rounds`).  Requires the run to have been
        executed with ``record_states=True``.
        """
        if self.recorded_configurations is None:
            raise ExecutionError(
                "per-scenario configurations were not recorded; rerun the ensemble "
                "with record_states=True"
            )
        if not 0 <= scenario < self.batch_size:
            raise ExecutionError(
                f"scenario {scenario} out of range for B={self.batch_size}"
            )
        return [per_round[scenario] for per_round in self.recorded_configurations]

    def convergence_rounds(self, tolerance: float) -> np.ndarray:
        """Per scenario, the first recorded round with diameter <= ``tolerance`` (-1 if never)."""
        diameters = self.diameters()
        result = np.full(self.batch_size, -1, dtype=int)
        for row, round_number in zip(diameters, self.recorded_rounds):
            hit = (row <= tolerance) & (result < 0)
            result[hit] = round_number
        return result

    def __repr__(self) -> str:
        return (
            f"EnsembleExecution({self.algorithm_name}, B={self.batch_size}, n={self.n}, "
            f"rounds={self.rounds}, mean final diam={float(self.final_diameters().mean()):.4g})"
        )


def _batch_diameters(outputs: np.ndarray) -> np.ndarray:
    """Euclidean output diameter of each scenario of a ``(B, n, d)`` tensor.

    For ``d == 1`` the diameter is exactly ``max - min``, computed in
    ``O(B·n)`` without the pairwise ``(B, n, n)`` distance tensor.  For
    ``d > 1`` the per-axis extremes prune the candidate endpoints first: a
    point whose distance to the farthest corner of the scenario's bounding box
    is below the best extreme-pair distance can never be an endpoint of the
    diameter, so only the (typically few) surviving points enter the exact
    pairwise pass.
    """
    outputs = np.asarray(outputs, dtype=float)
    batch_size, n, d = outputs.shape
    if n < 2:
        return np.zeros(batch_size, dtype=float)
    if d == 1:
        flat = outputs[..., 0]
        return flat.max(axis=-1) - flat.min(axis=-1)
    lo = outputs.min(axis=1)
    hi = outputs.max(axis=1)
    # Lower bound: the best pairwise distance among the per-axis extreme points.
    extreme_idx = np.concatenate([outputs.argmin(axis=1), outputs.argmax(axis=1)], axis=1)
    extremes = np.take_along_axis(outputs, extreme_idx[:, :, None], axis=1)  # (B, 2d, d)
    ext_diffs = extremes[:, :, None, :] - extremes[:, None, :, :]
    lower = np.sqrt((ext_diffs * ext_diffs).sum(axis=-1)).max(axis=(-1, -2))  # (B,)
    # Upper bound per point: distance to the farthest bounding-box corner.
    deviation = np.maximum(hi[:, None, :] - outputs, outputs - lo[:, None, :])
    reach = np.sqrt((deviation * deviation).sum(axis=-1))  # (B, n)
    survivors = reach >= lower[:, None]
    result = lower.copy()
    for scenario in range(batch_size):
        points = outputs[scenario][survivors[scenario]]
        if points.shape[0] >= 2:
            diffs = points[:, None, :] - points[None, :, :]
            best = float(np.sqrt((diffs * diffs).sum(axis=-1)).max())
            if best > result[scenario]:
                result[scenario] = best
    return result


def stack_initial_values(initial_values: Union[np.ndarray, Sequence[ValuesLike]]) -> np.ndarray:
    """Promote per-scenario initial values to a ``(B, n, d)`` float tensor."""
    if isinstance(initial_values, np.ndarray):
        if initial_values.ndim == 3:
            return initial_values.astype(float, copy=True)
        if initial_values.ndim != 2:
            raise EnsembleShapeError(
                f"ensemble initial values must be a (B, n, d) tensor or a sequence of "
                f"per-scenario value collections, got an array of shape {initial_values.shape}"
            )
    matrices = [as_value_matrix(values) for values in initial_values]
    if not matrices:
        raise EnsembleShapeError("an ensemble needs at least one scenario")
    shape = matrices[0].shape
    for index, matrix in enumerate(matrices):
        if matrix.shape != shape:
            raise EnsembleShapeError(
                f"scenario {index} has shape {matrix.shape}, expected {shape}: all scenarios "
                "of an ensemble must share n and d"
            )
    return np.stack(matrices)


def _validate_ensemble_values(values: np.ndarray) -> None:
    """Reject degenerate ``(B, n, d)`` stacks with a named-shape error."""
    if values.ndim != 3:
        raise EnsembleShapeError(
            f"ensemble initial values must stack to (B, n, d), got shape {values.shape}",
            expected="(B, n, d)",
            actual=tuple(values.shape),
        )
    batch_size, n, d = values.shape
    if batch_size < 1 or n < 1 or d < 1:
        raise EnsembleShapeError(
            f"ensemble initial values need B >= 1, n >= 1 and d >= 1, got "
            f"(B, n, d) = {values.shape}"
        )


def _validate_round_graphs(
    round_graphs: RoundGraphs, batch_size: int, n: int
) -> Optional[List[CommunicationGraph]]:
    """Validate one round entry against the *full* ensemble shape.

    Returns the per-scenario graph list, or ``None`` for a shared
    :class:`CommunicationGraph`.  Shared between the serial adjacency builder
    and the parallel backend's pre-shard validation, so a malformed schedule
    raises the identical :class:`EnsembleShapeError` — naming full-ensemble
    counts — no matter how many workers run the ensemble.
    """
    if isinstance(round_graphs, CommunicationGraph):
        if round_graphs.n != n:
            raise EnsembleShapeError(
                f"graph has {round_graphs.n} agents, scenarios have {n}"
            )
        return None
    try:
        graphs = list(round_graphs)
    except TypeError as exc:
        raise EnsembleShapeError(
            f"each ensemble round must be a CommunicationGraph or a length-{batch_size} "
            f"sequence of them, got {type(round_graphs).__name__}"
        ) from exc
    if len(graphs) != batch_size:
        raise EnsembleShapeError(
            f"per-scenario round needs {batch_size} graphs, got {len(graphs)}",
            expected=batch_size,
            actual=len(graphs),
        )
    for graph in graphs:
        if not isinstance(graph, CommunicationGraph):
            raise EnsembleShapeError(
                f"each ensemble round must be a CommunicationGraph or a length-{batch_size} "
                f"sequence of them, got an entry of type {type(graph).__name__}"
            )
        if graph.n != n:
            raise EnsembleShapeError(f"graph has {graph.n} agents, scenarios have {n}")
    return graphs


def _round_adjacency(
    round_graphs: RoundGraphs,
    batch_size: int,
    n: int,
    cache: Optional[_AdjacencyCache] = None,
) -> np.ndarray:
    """The adjacency tensor of one ensemble round: ``(n, n)`` shared or ``(B, n, n)``."""
    graphs = _validate_round_graphs(round_graphs, batch_size, n)
    if graphs is None:
        return round_graphs.adjacency
    first = graphs[0]
    if all(graph is first for graph in graphs):
        # A uniform per-scenario list broadcasts like a shared graph; skip the
        # (B, n, n) stack entirely.
        return first.adjacency
    if cache is not None:
        return cache.stacked(tuple(graphs))
    return np.stack([graph.adjacency for graph in graphs])


def _snapshot_scenario_configurations(
    algorithm: Algorithm,
    batch_state,
    outputs: np.ndarray,
    round_number: int,
) -> List[Configuration]:
    """Slice one recorded ``(B, ...)`` batch state into per-scenario configurations.

    Each scenario's slice goes through ``batch_map`` (leaf indexing) and
    ``batch_states`` (the snapshot direction of the batch-state contract), so
    the recorded per-agent states equal the ones ``B`` independent
    single-scenario fast-path runs would record.
    """
    configurations = []
    for scenario in range(outputs.shape[0]):
        single = algorithm.batch_map(batch_state, lambda leaf, _b=scenario: leaf[_b])
        configurations.append(
            Configuration(
                states=algorithm.batch_states(single),
                outputs=outputs[scenario].copy(),
                round_number=round_number,
            )
        )
    return configurations


def _supports_state_snapshots(algorithm: Algorithm, batch_state) -> bool:
    """Whether per-scenario snapshots can be sliced off this batch state."""
    try:
        algorithm.batch_map(batch_state, lambda leaf: leaf)
    except NotImplementedError:
        return False
    return True


def _round_graph_of_scenario(round_graphs: RoundGraphs, scenario: int) -> CommunicationGraph:
    if isinstance(round_graphs, CommunicationGraph):
        return round_graphs
    return round_graphs[scenario]


def run_ensemble(
    algorithm: Algorithm,
    initial_values: Union[np.ndarray, Sequence[ValuesLike]],
    graph_rounds: Sequence[RoundGraphs],
    record_every: int = 1,
    scenario_labels: Optional[Sequence[object]] = None,
    use_batch: Optional[bool] = None,
    record_states: bool = False,
    fault_plan: Optional[Union[FaultPlan, FaultSpec]] = None,
    threads: Optional[int] = None,
) -> EnsembleExecution:
    """Execute ``B`` independent scenarios through the vectorized fast path.

    Parameters
    ----------
    algorithm:
        The algorithm to run; batch-capable algorithms execute all scenarios
        at once, others fall back to a per-scenario loop.
    initial_values:
        A ``(B, n, d)`` tensor or a sequence of ``B`` per-agent value
        collections (all with the same ``n`` and ``d``).
    graph_rounds:
        One entry per round ``t``: either a single
        :class:`~repro.graphs.digraph.CommunicationGraph` applied to every
        scenario, or a length-``B`` sequence of per-scenario graphs.
    record_every:
        Keep every ``record_every``-th round snapshot in addition to the
        initial and final ones.
    scenario_labels:
        Optional labels stored on the result (one per scenario).
    use_batch:
        ``None`` (default) consults the active
        :class:`~repro.config.EngineConfig` and auto-selects; ``False``
        forces the per-scenario fallback loop; ``True`` requires the stacked
        ensemble path (raising if the algorithm has no batch hooks).  Both
        paths are bit-for-bit identical.
    record_states:
        Additionally record per-scenario configuration snapshots (per-agent
        states) at every recorded round, enabling
        :meth:`EnsembleExecution.scenario_configurations` and ensemble-scale
        certification (:meth:`repro.core.valency.ValencyEstimator.certify_ensemble`).
        On the batched path the snapshots are sliced off the recorded batch
        states; algorithms whose batch state cannot be sliced (no
        ``batch_map``) take the per-scenario fallback loop instead.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` (or
        :class:`~repro.faults.FaultSpec`).  On the batched path the plan is
        compiled into per-round keep masks ANDed onto the stacked
        adjacency tensors — one vectorized mask application per round; the
        per-scenario fallback masks each scenario's graph with the same
        deterministic draws, so both paths stay bit-for-bit identical.
        With ``enforce_model=True`` every realized effective graph is
        checked against the crash model ``N_A`` and a violation raises
        :class:`~repro.exceptions.FaultModelError` naming the scenario,
        round and agent.  A zero plan is normalized to ``None``: the run
        is bit-for-bit identical to a fault-free one.
    threads:
        Parallel worker count: ``None`` (default) consults the active
        :class:`~repro.config.EngineConfig` (then the ``REPRO_THREADS`` env
        var, then 1).  With more than one worker the scenario axis is split
        into contiguous shards executed on a thread pool and merged through
        :func:`merge_ensemble_executions`; fault draws are sliced via
        ``scenario_base`` offsets, so the result is bit-for-bit identical
        to the serial run (see :mod:`repro.execution.parallel`).
    """
    if record_every < 1:
        raise ExecutionError(f"record_every must be >= 1, got {record_every}")
    values = stack_initial_values(initial_values)
    _validate_ensemble_values(values)
    batch_size, n, _d = values.shape
    labels = list(scenario_labels) if scenario_labels is not None else None
    if labels is not None and len(labels) != batch_size:
        raise ExecutionError(f"need {batch_size} scenario labels, got {len(labels)}")
    rounds = len(graph_rounds)
    plan = as_fault_plan(fault_plan)
    if plan is not None:
        plan.validate_for(n)

    if use_batch and not algorithm.supports_batch():
        raise ExecutionError(
            f"use_batch=True but {algorithm.name} does not implement the batch hooks"
        )
    worker_count = resolve_threads(threads)
    if worker_count > 1 and batch_size > 1:
        return _run_ensemble_sharded(
            algorithm,
            values,
            graph_rounds,
            record_every,
            labels,
            use_batch,
            record_states,
            plan,
            worker_count,
        )
    if not algorithm.supports_batch() or not resolve_use_batch(use_batch):
        return _run_ensemble_slow(
            algorithm, values, graph_rounds, record_every, labels, record_states, plan
        )

    batch_state = algorithm.batch_initial(values)
    if record_states and not _supports_state_snapshots(algorithm, batch_state):
        return _run_ensemble_slow(
            algorithm, values, graph_rounds, record_every, labels, record_states, plan
        )
    recorded_rounds = [0]
    recorded = [np.array(algorithm.batch_outputs(batch_state), dtype=float)]
    recorded_configurations: Optional[List[List[Configuration]]] = None
    if record_states:
        recorded_configurations = [
            _snapshot_scenario_configurations(algorithm, batch_state, recorded[0], 0)
        ]
    adjacency_cache = _AdjacencyCache()
    for t, round_graphs in enumerate(graph_rounds, start=1):
        adjacency = _round_adjacency(round_graphs, batch_size, n, cache=adjacency_cache)
        if plan is not None:
            # One vectorized mask application per round (instead of B
            # per-scenario Python loops), with the N_A invariant check.
            adjacency = plan.apply_to_adjacency(adjacency, t, batch_size)
        batch_state = algorithm.batch_transition(batch_state, adjacency, t)
        if t % record_every == 0 or t == rounds:
            recorded_rounds.append(t)
            recorded.append(np.array(algorithm.batch_outputs(batch_state), dtype=float))
            if recorded_configurations is not None:
                recorded_configurations.append(
                    _snapshot_scenario_configurations(
                        algorithm, batch_state, recorded[-1], t
                    )
                )

    return EnsembleExecution(
        algorithm_name=algorithm.name,
        recorded_rounds=recorded_rounds,
        recorded_outputs=np.stack(recorded),
        scenario_labels=labels,
        batched=True,
        recorded_configurations=recorded_configurations,
        fault_plan=plan,
    )


def _slice_round_graphs(
    graph_rounds: Sequence[RoundGraphs], start: int, stop: int, n: int, batch_size: int
) -> List[RoundGraphs]:
    """Per-round graph slices for scenarios ``[start, stop)``.

    A round entry shared by every scenario is passed through unchanged (the
    shard broadcasts it exactly as the full run would); per-scenario lists
    are sliced.  Every entry is validated against the *full* ensemble shape
    first, so a malformed schedule raises the same error — with the same
    full-ensemble counts — the serial run would raise.
    """
    sliced: List[RoundGraphs] = []
    for round_graphs in graph_rounds:
        graphs = _validate_round_graphs(round_graphs, batch_size, n)
        sliced.append(round_graphs if graphs is None else graphs[start:stop])
    return sliced


def _run_ensemble_sharded(
    algorithm: Algorithm,
    values: np.ndarray,
    graph_rounds: Sequence[RoundGraphs],
    record_every: int,
    labels: Optional[List[object]],
    use_batch: Optional[bool],
    record_states: bool,
    plan: Optional[FaultPlan],
    worker_count: int,
) -> EnsembleExecution:
    """Parallel backend of :func:`run_ensemble`: contiguous B-axis shards.

    Each shard re-runs :func:`run_ensemble` with ``threads=1`` on a worker
    thread under the caller's merged config (see
    :func:`repro.execution.parallel.parallel_map`); a shard covering global
    scenarios ``[start, stop)`` draws its faults from a ``scenario_base``
    ``+ start`` copy of the plan, which samples the exact slice of the
    unsharded plan's draws.  Merging through
    :func:`merge_ensemble_executions` rebuilds the record the serial run
    would have produced, bit-for-bit.
    """
    graph_rounds = list(graph_rounds)

    def _shard_task(start: int, stop: int):
        shard_plan = (
            replace(plan, scenario_base=plan.scenario_base + start)
            if plan is not None
            else None
        )
        shard_labels = labels[start:stop] if labels is not None else None
        shard_rounds = _slice_round_graphs(
            graph_rounds, start, stop, n=values.shape[-2], batch_size=values.shape[0]
        )
        shard_values = values[start:stop]
        return lambda: run_ensemble(
            algorithm,
            shard_values,
            shard_rounds,
            record_every=record_every,
            scenario_labels=shard_labels,
            use_batch=use_batch,
            record_states=record_states,
            fault_plan=shard_plan,
            threads=1,
        )

    bounds = shard_bounds(values.shape[0], worker_count)
    shards = parallel_map(
        [_shard_task(start, stop) for start, stop in bounds], worker_count
    )
    return merge_ensemble_executions(shards, fault_plan=plan)


def _run_ensemble_slow(
    algorithm: Algorithm,
    values: np.ndarray,
    graph_rounds: Sequence[RoundGraphs],
    record_every: int,
    labels: Optional[List[object]],
    record_states: bool = False,
    plan: Optional[FaultPlan] = None,
) -> EnsembleExecution:
    """Per-scenario fallback for algorithms without batch hooks.

    Faults are applied per scenario through
    :meth:`~repro.faults.FaultPlan.apply_to_graph`, whose masks equal the
    batched path's stacked masks slice-for-slice — the reference loop the
    fuzz harness checks the vectorized fault path against.
    """
    batch_size = values.shape[0]
    rounds = len(graph_rounds)
    per_scenario: List[List[np.ndarray]] = []
    per_scenario_configs: List[List[Configuration]] = []
    recorded_rounds = [0] + [
        t for t in range(1, rounds + 1) if t % record_every == 0 or t == rounds
    ]
    for scenario in range(batch_size):
        configuration = initial_configuration(algorithm, values[scenario])
        snapshots = [configuration.outputs.copy()]
        configs = [configuration] if record_states else None
        for t, round_graphs in enumerate(graph_rounds, start=1):
            graph = _round_graph_of_scenario(round_graphs, scenario)
            if plan is not None:
                graph = plan.apply_to_graph(graph, t, scenario)
            configuration = apply_graph(algorithm, configuration, graph)
            if t % record_every == 0 or t == rounds:
                snapshots.append(configuration.outputs.copy())
                if configs is not None:
                    configs.append(configuration)
        per_scenario.append(snapshots)
        if configs is not None:
            per_scenario_configs.append(configs)
    recorded = [
        np.stack([per_scenario[b][r] for b in range(batch_size)])
        for r in range(len(recorded_rounds))
    ]
    recorded_configurations = (
        [
            [per_scenario_configs[b][r] for b in range(batch_size)]
            for r in range(len(recorded_rounds))
        ]
        if record_states
        else None
    )
    return EnsembleExecution(
        algorithm_name=algorithm.name,
        recorded_rounds=recorded_rounds,
        recorded_outputs=np.stack(recorded),
        scenario_labels=labels,
        batched=False,
        recorded_configurations=recorded_configurations,
        fault_plan=plan,
    )


@dataclass
class AdversarialEnsembleExecution(EnsembleExecution):
    """An ensemble run driven by an adaptive adversary.

    In addition to the recorded outputs, the per-round, per-scenario graph
    choices the adversary committed are kept (``round_choices[t - 1][b]`` is
    the graph scenario ``b`` saw in round ``t``).
    """

    round_choices: List[List[CommunicationGraph]] = field(default_factory=list)

    def scenario_graphs(self, scenario: int) -> List[CommunicationGraph]:
        """The graph sequence committed against scenario ``scenario``."""
        return [choices[scenario] for choices in self.round_choices]


def _validate_plan_candidates(
    candidates: Sequence[Sequence[CommunicationGraph]], n: int
) -> None:
    for candidate in candidates:
        for graph in candidate:
            if graph.n != n:
                raise EnsembleShapeError(
                    f"candidate graph has {graph.n} agents, scenarios have {n}"
                )


def _uniform_scenario_plans(
    plans: Sequence[EnsemblePlan], batch_size: int, n: int
) -> Tuple[List[List[List[CommunicationGraph]]], int, int, int]:
    """Validate per-scenario plans and return (candidate lists, C, horizon, commit).

    The stacked ``(B, C, n, n)`` evaluation requires every scenario's plan to
    share the candidate count, horizon and commit window; anything else is a
    shape error, named explicitly instead of surfacing as a NumPy broadcast
    failure.
    """
    plans = list(plans)
    if len(plans) != batch_size:
        raise EnsembleShapeError(
            f"ensemble_plans must return one plan per scenario ({batch_size}), "
            f"got {len(plans)}"
        )
    for plan in plans:
        if not isinstance(plan, EnsemblePlan):
            raise EnsembleShapeError(
                f"ensemble_plans entries must be EnsemblePlan instances, "
                f"got {type(plan).__name__}"
            )
    counts = {len(plan.candidates) for plan in plans}
    horizons = {plan.horizon for plan in plans}
    commits = {plan.commit_rounds for plan in plans}
    if len(counts) != 1 or len(horizons) != 1 or len(commits) != 1:
        raise EnsembleShapeError(
            "per-scenario plans must share one candidate count, horizon and commit "
            f"window; got counts {sorted(counts)}, horizons {sorted(horizons)}, "
            f"commit windows {sorted(commits)}"
        )
    candidate_lists = [[list(candidate) for candidate in plan.candidates] for plan in plans]
    for candidates in candidate_lists:
        _validate_plan_candidates(candidates, n)
    return candidate_lists, counts.pop(), horizons.pop(), commits.pop()


def run_adversarial_ensemble(
    algorithm: Algorithm,
    initial_values: Union[np.ndarray, Sequence[ValuesLike]],
    adversary: AdversarialPattern,
    rounds: int,
    record_every: int = 1,
    scenario_labels: Optional[Sequence[object]] = None,
    use_batch: Optional[bool] = None,
    record_states: bool = False,
    fault_plan: Optional[Union[FaultPlan, FaultSpec]] = None,
    threads: Optional[int] = None,
) -> AdversarialEnsembleExecution:
    """Drive ``B`` scenarios under an adaptive adversary in one batched loop.

    Each decision evaluates the adversary's candidate graph sequences against
    *every* scenario at once — a ``(B, C, n, d)`` candidate tensor computed by
    broadcasting the ensemble state against the stacked ``(C, n, n)``
    candidate adjacencies — and commits a per-scenario argmax of the successor
    output diameters.  The committed choices are exactly the ones ``B``
    independent per-scenario runs of the same adversary would make (enforced
    by ``tests/test_adversary_batch.py``), so worst-case sweeps scale with the
    hardware instead of with Python-level simulation loops.

    History-dependent adversaries (per-scenario candidate sets) advertise
    their decisions through
    :meth:`~repro.models.patterns.AdversarialPattern.ensemble_plans`: the
    runner hands them each scenario's committed history and evaluates the
    returned per-scenario plans as one ``(B, C, n, n)`` stacked pass, so the
    argmax commit matches the per-scenario reference adversary
    choice-for-choice.

    Falls back to scenario-by-scenario :func:`repro.execution.run_execution`
    when the algorithm has no batch hooks, the adversary implements neither
    plan hook, or ``use_batch`` resolves to ``False``.

    Fault injection is not supported on the adversarial route (a non-zero
    ``fault_plan`` raises :class:`~repro.exceptions.ConfigError`): the
    adversary evaluates and commits *raw* candidate graphs while faults
    would mask the applied ones, so the committed history and the realized
    execution would diverge.  Run the adversary fault-free, then replay its
    committed per-scenario graph schedules as a faulted ``graphs``-route
    ensemble (what :func:`repro.analysis.experiments.run_certification_sweep`
    does for its faulted certification rows).

    ``threads`` (resolved through the active config like
    :func:`run_ensemble`) shards the scenario axis across worker threads;
    every decision the batched runner makes is a *per-scenario* argmax over
    per-scenario histories, so each shard — driving its own deep copy of the
    adversary — commits exactly the choices the full run commits for its
    scenarios, and the merged record is bit-for-bit identical to the serial
    run.
    """
    if rounds < 0:
        raise ExecutionError(f"rounds must be non-negative, got {rounds}")
    if as_fault_plan(fault_plan) is not None:
        raise ConfigError(
            "run_adversarial_ensemble does not support fault injection: the "
            "adversary's committed graph history would diverge from the faulted "
            "realized graphs; run the adversary fault-free and replay its "
            "committed schedules as a faulted graphs-route ensemble instead"
        )
    if record_every < 1:
        raise ExecutionError(f"record_every must be >= 1, got {record_every}")
    values = stack_initial_values(initial_values)
    _validate_ensemble_values(values)
    batch_size, n, _d = values.shape
    labels = list(scenario_labels) if scenario_labels is not None else None
    if labels is not None and len(labels) != batch_size:
        raise ExecutionError(f"need {batch_size} scenario labels, got {len(labels)}")
    if not isinstance(adversary, AdversarialPattern):
        raise ExecutionError(
            f"run_adversarial_ensemble needs an AdversarialPattern, got {type(adversary).__name__}"
        )
    worker_count = resolve_threads(threads)
    if worker_count > 1 and batch_size > 1:
        return _run_adversarial_ensemble_sharded(
            algorithm,
            values,
            adversary,
            rounds,
            record_every,
            labels,
            use_batch,
            record_states,
            worker_count,
        )
    batchable = algorithm.supports_batch() and resolve_use_batch(use_batch)
    # One-time probe: adversaries that keep the base-class ensemble_plans
    # always answer None, so the runner skips the per-round call (and the
    # per-scenario history copies it would need) entirely for them.
    history_dependent = (
        type(adversary).ensemble_plans is not AdversarialPattern.ensemble_plans
    )
    first_scenario_plans = (
        adversary.ensemble_plans(1, n, [[] for _ in range(batch_size)])
        if batchable and history_dependent
        else None
    )
    first_plan = (
        adversary.ensemble_plan(1, n)
        if batchable and first_scenario_plans is None
        else None
    )
    if first_scenario_plans is None and first_plan is None:
        return _run_adversarial_ensemble_slow(
            algorithm, values, adversary, rounds, record_every, labels, record_states
        )

    batch_state = algorithm.batch_initial(values)
    try:
        # Capability probe: batch-capable algorithms with structured state
        # predating the batch_map hook take the per-scenario fallback instead
        # of crashing mid-run.
        algorithm.batch_map(batch_state, lambda a: a)
    except NotImplementedError:
        return _run_adversarial_ensemble_slow(
            algorithm, values, adversary, rounds, record_every, labels, record_states
        )
    recorded_rounds = [0]
    recorded = [np.array(algorithm.batch_outputs(batch_state), dtype=float)]
    recorded_configurations: Optional[List[List[Configuration]]] = None
    if record_states:
        recorded_configurations = [
            _snapshot_scenario_configurations(algorithm, batch_state, recorded[0], 0)
        ]
    round_choices: List[List[CommunicationGraph]] = []
    histories: List[List[CommunicationGraph]] = [[] for _ in range(batch_size)]
    cache = _AdjacencyCache()

    t = 1
    while t <= rounds:
        if t == 1:
            scenario_plans, plan = first_scenario_plans, first_plan
        else:
            scenario_plans = (
                adversary.ensemble_plans(t, n, [list(history) for history in histories])
                if history_dependent
                else None
            )
            plan = adversary.ensemble_plan(t, n) if scenario_plans is None else None
        if scenario_plans is not None:
            per_scenario, count, horizon, commit_rounds = _uniform_scenario_plans(
                scenario_plans, batch_size, n
            )

            def adjacency_at(offset: int, _plans=per_scenario, _count=count) -> np.ndarray:
                # (B, C, n, n): one stacked candidate pass per scenario.
                return np.stack(
                    [
                        cache.stacked(
                            tuple(candidates[c][offset] for c in range(_count))
                        )
                        for candidates in _plans
                    ]
                )

            def candidates_of(scenario: int, _plans=per_scenario):
                return _plans[scenario]

        elif plan is not None:
            candidates = [list(candidate) for candidate in plan.candidates]
            _validate_plan_candidates(candidates, n)
            count, horizon, commit_rounds = len(candidates), plan.horizon, plan.commit_rounds

            def adjacency_at(offset: int, _candidates=candidates) -> np.ndarray:
                # (C, n, n), shared by every scenario.
                return cache.stacked(
                    tuple(candidate[offset] for candidate in _candidates)
                )

            def candidates_of(scenario: int, _candidates=candidates):
                return _candidates

        else:
            raise ExecutionError(
                f"{type(adversary).__name__}.ensemble_plan returned None mid-run"
            )

        # Evaluate all candidates against all scenarios at once: insert a
        # candidate axis into the batch state and let the stacked candidate
        # adjacencies broadcast it to (B, C, n, d).
        candidate_state = algorithm.batch_map(batch_state, lambda a: a[:, None, ...])
        for offset in range(horizon):
            candidate_state = algorithm.batch_transition(
                candidate_state, adjacency_at(offset), t + offset
            )
        outputs = np.asarray(algorithm.batch_outputs(candidate_state), dtype=float)
        outputs = np.broadcast_to(outputs, (batch_size, count, n, outputs.shape[-1]))
        diameters = pairwise_diameters(outputs)  # (B, C)

        # Per-scenario strict-improvement scan — the vectorized equivalent of
        # the per-scenario adversaries' first-graph-wins tie-breaking.
        best = np.full(batch_size, -1.0)
        choices = np.zeros(batch_size, dtype=int)
        for candidate_index in range(count):
            improved = diameters[:, candidate_index] > best + 1e-15
            best = np.where(improved, diameters[:, candidate_index], best)
            choices = np.where(improved, candidate_index, choices)

        commit = min(commit_rounds, rounds - t + 1)
        for offset in range(commit):
            committed = [
                candidates_of(b)[choices[b]][offset] for b in range(batch_size)
            ]
            adjacency = _round_adjacency(committed, batch_size, n, cache=cache)
            batch_state = algorithm.batch_transition(batch_state, adjacency, t)
            round_choices.append(committed)
            if history_dependent:
                for scenario, graph in enumerate(committed):
                    histories[scenario].append(graph)
            if t % record_every == 0 or t == rounds:
                recorded_rounds.append(t)
                recorded.append(np.array(algorithm.batch_outputs(batch_state), dtype=float))
                if recorded_configurations is not None:
                    recorded_configurations.append(
                        _snapshot_scenario_configurations(
                            algorithm, batch_state, recorded[-1], t
                        )
                    )
            t += 1

    return AdversarialEnsembleExecution(
        algorithm_name=algorithm.name,
        recorded_rounds=recorded_rounds,
        recorded_outputs=np.stack(recorded),
        scenario_labels=labels,
        round_choices=round_choices,
        batched=True,
        recorded_configurations=recorded_configurations,
    )


def _run_adversarial_ensemble_sharded(
    algorithm: Algorithm,
    values: np.ndarray,
    adversary: AdversarialPattern,
    rounds: int,
    record_every: int,
    labels: Optional[List[object]],
    use_batch: Optional[bool],
    record_states: bool,
    worker_count: int,
) -> AdversarialEnsembleExecution:
    """Parallel backend of :func:`run_adversarial_ensemble`.

    Safe to shard because every commit of the (batched or per-scenario)
    adversarial runner is a per-scenario argmax over that scenario's own
    committed history; each shard drives an independent ``copy.deepcopy`` of
    the adversary, so stateful adversaries neither race nor observe other
    shards' scenarios.  The shipped adversaries' plans depend only on
    ``(round, n, per-scenario history)`` — the differential matrix in
    ``tests/test_parallel_backend.py`` enforces choice-for-choice equality
    with the serial run.
    """

    def _shard_task(start: int, stop: int):
        shard_adversary = copy.deepcopy(adversary)
        shard_labels = labels[start:stop] if labels is not None else None
        shard_values = values[start:stop]
        return lambda: run_adversarial_ensemble(
            algorithm,
            shard_values,
            shard_adversary,
            rounds,
            record_every=record_every,
            scenario_labels=shard_labels,
            use_batch=use_batch,
            record_states=record_states,
            threads=1,
        )

    bounds = shard_bounds(values.shape[0], worker_count)
    shards = parallel_map(
        [_shard_task(start, stop) for start, stop in bounds], worker_count
    )
    merged = merge_ensemble_executions(shards)
    assert isinstance(merged, AdversarialEnsembleExecution)
    return merged


def _run_adversarial_ensemble_slow(
    algorithm: Algorithm,
    values: np.ndarray,
    adversary: AdversarialPattern,
    rounds: int,
    record_every: int,
    labels: Optional[List[object]],
    record_states: bool = False,
) -> AdversarialEnsembleExecution:
    """Scenario-by-scenario fallback driving the adversary through run_execution."""
    from repro.execution.engine import run_execution  # local import avoids a cycle

    batch_size = values.shape[0]
    per_scenario_outputs: List[List[np.ndarray]] = []
    per_scenario_configs: List[List[Configuration]] = []
    per_scenario_graphs: List[List[CommunicationGraph]] = []
    recorded_rounds: List[int] = []
    for scenario in range(batch_size):
        execution = run_execution(
            algorithm, values[scenario], adversary, rounds, record_every=record_every
        )
        recorded_rounds = [c.round_number for c in execution.configurations]
        per_scenario_outputs.append([c.outputs.copy() for c in execution.configurations])
        if record_states:
            per_scenario_configs.append(list(execution.configurations))
        per_scenario_graphs.append(list(execution.graphs))
    recorded = [
        np.stack([per_scenario_outputs[b][r] for b in range(batch_size)])
        for r in range(len(recorded_rounds))
    ]
    round_choices = [
        [per_scenario_graphs[b][t] for b in range(batch_size)] for t in range(rounds)
    ]
    recorded_configurations = (
        [
            [per_scenario_configs[b][r] for b in range(batch_size)]
            for r in range(len(recorded_rounds))
        ]
        if record_states
        else None
    )
    return AdversarialEnsembleExecution(
        algorithm_name=algorithm.name,
        recorded_rounds=recorded_rounds,
        recorded_outputs=np.stack(recorded),
        scenario_labels=labels,
        round_choices=round_choices,
        batched=False,
        recorded_configurations=recorded_configurations,
    )


def materialize_pattern(pattern: CommunicationPattern, rounds: int) -> List[CommunicationGraph]:
    """Evaluate an oblivious pattern's first ``rounds`` graphs.

    Adaptive patterns cannot be materialized ahead of the execution and raise
    :class:`~repro.exceptions.ExecutionError` (run them one scenario at a time
    through :func:`repro.execution.run_execution`).
    """
    pattern.reset()
    return [pattern.graph_at(t) for t in range(1, rounds + 1)]


def run_pattern_ensemble(
    algorithm: Algorithm,
    initial_values: Union[np.ndarray, Sequence[ValuesLike]],
    patterns: Union[CommunicationPattern, Sequence[CommunicationPattern]],
    rounds: int,
    record_every: int = 1,
    scenario_labels: Optional[Sequence[object]] = None,
    use_batch: Optional[bool] = None,
    record_states: bool = False,
    fault_plan: Optional[Union[FaultPlan, FaultSpec]] = None,
    threads: Optional[int] = None,
) -> EnsembleExecution:
    """Run an ensemble against oblivious communication patterns.

    ``patterns`` is a single pattern shared by every scenario or one pattern
    per scenario.  ``fault_plan`` masks the materialized graphs exactly as
    on the ``graphs`` route (see :func:`run_ensemble`).  ``threads`` shards
    the scenario axis exactly as on the ``graphs`` route; the patterns are
    materialized *before* sharding (on the caller thread), so stateful
    pattern objects never race.
    """
    if rounds < 0:
        raise ExecutionError(f"rounds must be non-negative, got {rounds}")
    values = stack_initial_values(initial_values)
    _validate_ensemble_values(values)
    batch_size = values.shape[0]
    if isinstance(patterns, CommunicationPattern):
        graph_rounds: List[RoundGraphs] = list(materialize_pattern(patterns, rounds))
    else:
        pattern_list = list(patterns)
        if len(pattern_list) != batch_size:
            raise ExecutionError(
                f"need one pattern per scenario ({batch_size}), got {len(pattern_list)}"
            )
        per_pattern = [materialize_pattern(p, rounds) for p in pattern_list]
        graph_rounds = [
            [per_pattern[b][t] for b in range(batch_size)] for t in range(rounds)
        ]
    return run_ensemble(
        algorithm,
        values,
        graph_rounds,
        record_every=record_every,
        scenario_labels=scenario_labels,
        use_batch=use_batch,
        record_states=record_states,
        fault_plan=fault_plan,
        threads=threads,
    )


def sweep(
    algorithm: Algorithm,
    initial_values_grid: Sequence[ValuesLike],
    patterns: Union[CommunicationPattern, Sequence[CommunicationPattern]],
    rounds: int,
    record_every: int = 1,
) -> EnsembleExecution:
    """Cross-product sweep over initial-value and pattern grids.

    Builds one scenario per ``(initial values, pattern)`` pair and executes
    the whole grid as a single batched ensemble.  Each scenario is labelled
    ``(value_index, pattern_index)`` so results can be pivoted back onto the
    grid.
    """
    values_list = [as_value_matrix(values) for values in initial_values_grid]
    if not values_list:
        raise ExecutionError("a sweep needs at least one initial-value vector")
    pattern_list = (
        [patterns] if isinstance(patterns, CommunicationPattern) else list(patterns)
    )
    if not pattern_list:
        raise ExecutionError("a sweep needs at least one pattern")
    per_pattern = [materialize_pattern(p, rounds) for p in pattern_list]

    stacked: List[np.ndarray] = []
    labels: List[Tuple[int, int]] = []
    scenario_graphs: List[List[CommunicationGraph]] = []
    for value_index, values in enumerate(values_list):
        for pattern_index in range(len(pattern_list)):
            stacked.append(values)
            labels.append((value_index, pattern_index))
            scenario_graphs.append(per_pattern[pattern_index])
    graph_rounds: List[RoundGraphs] = [
        [scenario_graphs[b][t] for b in range(len(stacked))] for t in range(rounds)
    ]
    return run_ensemble(
        algorithm,
        stack_initial_values(stacked),
        graph_rounds,
        record_every=record_every,
        scenario_labels=labels,
    )


def merge_ensemble_executions(
    shards: Sequence[EnsembleExecution],
    fault_plan: Optional[FaultPlan] = None,
) -> EnsembleExecution:
    """Concatenate shard ensembles along the scenario axis, deterministically.

    The inverse of slicing an ensemble study into shard jobs: given the
    shards **in scenario order**, rebuilds the ``(R, B, n, d)`` record a
    single run over the full ensemble would have produced — recorded
    outputs, labels and per-scenario configuration snapshots are
    concatenated bit-for-bit (no recomputation happens here).  The shards
    must agree on algorithm, recorded rounds and the ``batched`` provenance
    flag; labels and configuration snapshots must be present on all shards
    or on none.

    ``fault_plan`` overrides the merged record's provenance plan: each
    shard ran under a ``scenario_base``-offset copy of the study's plan, so
    the caller passes the study-level plan the full run would have carried.
    Without the override the shards must all carry the same plan (the
    fault-free ``None`` included).

    Adversarial shards merge too — including their per-round committed graph
    choices — but only when *every* shard is an
    :class:`AdversarialEnsembleExecution` (mixing provenances is an error).
    By handing adversarial shards to this function the caller asserts the
    slicing did not change the adversary's choices; the parallel backend
    guarantees that by driving a per-shard adversary copy whose commits are
    per-scenario argmaxes (see
    :func:`repro.execution.batch.run_adversarial_ensemble`).
    """
    shard_list = list(shards)
    if not shard_list:
        raise ExecutionError("merging needs at least one shard ensemble")
    adversarial_flags = [
        isinstance(shard, AdversarialEnsembleExecution) for shard in shard_list
    ]
    if any(adversarial_flags) and not all(adversarial_flags):
        raise ExecutionError(
            "adversarial and non-adversarial ensembles cannot be merged into "
            "one record: the shards ran different routes"
        )
    all_adversarial = all(adversarial_flags)
    for shard in shard_list:
        if not isinstance(shard, EnsembleExecution):
            raise ExecutionError(
                f"merging needs EnsembleExecution shards, got {type(shard).__name__}"
            )
    first = shard_list[0]
    for index, shard in enumerate(shard_list[1:], start=1):
        if shard.algorithm_name != first.algorithm_name:
            raise ExecutionError(
                f"shard {index} ran algorithm {shard.algorithm_name!r}, "
                f"shard 0 ran {first.algorithm_name!r}"
            )
        if list(shard.recorded_rounds) != list(first.recorded_rounds):
            raise ExecutionError(
                f"shard {index} recorded rounds {shard.recorded_rounds}, "
                f"shard 0 recorded {first.recorded_rounds}"
            )
        if shard.batched != first.batched:
            raise ExecutionError(
                f"shard {index} has batched={shard.batched}, "
                f"shard 0 has batched={first.batched}: shards must run under "
                "the same engine configuration"
            )
        if shard.recorded_outputs.shape[2:] != first.recorded_outputs.shape[2:]:
            raise ExecutionError(
                f"shard {index} has per-scenario shape "
                f"{shard.recorded_outputs.shape[2:]}, shard 0 has "
                f"{first.recorded_outputs.shape[2:]}"
            )
    with_labels = [shard.scenario_labels is not None for shard in shard_list]
    if any(with_labels) and not all(with_labels):
        raise ExecutionError(
            "scenario labels must be present on every shard or on none"
        )
    with_states = [shard.recorded_configurations is not None for shard in shard_list]
    if any(with_states) and not all(with_states):
        raise ExecutionError(
            "recorded configurations must be present on every shard or on none"
        )
    if fault_plan is None:
        plans = {shard.fault_plan for shard in shard_list}
        if len(plans) != 1:
            raise ExecutionError(
                "shards carry differing fault plans; pass fault_plan= with the "
                "study-level plan the merged record should report"
            )
        fault_plan = shard_list[0].fault_plan
    merged_labels = (
        [label for shard in shard_list for label in shard.scenario_labels]
        if all(with_labels)
        else None
    )
    merged_configurations = None
    if all(with_states):
        merged_configurations = [
            [
                configuration
                for shard in shard_list
                for configuration in shard.recorded_configurations[r]
            ]
            for r in range(len(first.recorded_rounds))
        ]
    merged_outputs = np.concatenate(
        [shard.recorded_outputs for shard in shard_list], axis=1
    )
    if all_adversarial:
        choice_counts = {len(shard.round_choices) for shard in shard_list}
        if len(choice_counts) != 1:
            raise ExecutionError(
                f"adversarial shards committed differing round counts "
                f"{sorted(choice_counts)}; shards must cover the same horizon"
            )
        merged_choices = [
            [choice for shard in shard_list for choice in shard.round_choices[t]]
            for t in range(choice_counts.pop())
        ]
        return AdversarialEnsembleExecution(
            algorithm_name=first.algorithm_name,
            recorded_rounds=list(first.recorded_rounds),
            recorded_outputs=merged_outputs,
            scenario_labels=merged_labels,
            batched=first.batched,
            recorded_configurations=merged_configurations,
            fault_plan=fault_plan,
            round_choices=merged_choices,
        )
    return EnsembleExecution(
        algorithm_name=first.algorithm_name,
        recorded_rounds=list(first.recorded_rounds),
        recorded_outputs=merged_outputs,
        scenario_labels=merged_labels,
        batched=first.batched,
        recorded_configurations=merged_configurations,
        fault_plan=fault_plan,
    )
