"""Shared type aliases and small helpers used across the library.

The library follows the paper's conventions:

* Agents are identified by integers ``0 .. n-1`` (the paper uses ``1 .. n``).
* Values live in Euclidean ``d``-space and are represented as 1-D numpy
  arrays of length ``d``; scalars are accepted anywhere a value is expected
  and are promoted to shape ``(1,)`` arrays.
* A *configuration* of outputs is an ``(n, d)`` numpy array.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Union

import numpy as np

#: An agent identifier (0-based).
AgentId = int

#: A round number (1-based for rounds that perform communication, as in the
#: paper; round 0 denotes the initial configuration).
Round = int

#: Anything accepted as a single agent value.
ValueLike = Union[float, int, Sequence[float], np.ndarray]

#: Anything accepted as a vector of initial values (one entry per agent).
ValuesLike = Union[Sequence[ValueLike], np.ndarray]


def as_value(value: ValueLike) -> np.ndarray:
    """Promote ``value`` to a 1-D float array (a point of Euclidean d-space).

    >>> as_value(3)
    array([3.])
    >>> as_value([1.0, 2.0])
    array([1., 2.])
    """
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"agent values must be scalars or 1-D vectors, got shape {arr.shape}")
    return arr


def as_value_matrix(values: ValuesLike) -> np.ndarray:
    """Promote a per-agent collection of values to an ``(n, d)`` float matrix.

    Scalar entries are promoted to dimension ``d = 1``.  All entries must have
    the same dimension.

    >>> as_value_matrix([0.0, 1.0, 2.0]).shape
    (3, 1)
    >>> as_value_matrix([[0.0, 1.0], [2.0, 3.0]]).shape
    (2, 2)
    """
    if isinstance(values, np.ndarray) and values.ndim == 2:
        return values.astype(float, copy=True)
    rows = [as_value(v) for v in values]
    if not rows:
        raise ValueError("at least one agent value is required")
    dim = rows[0].shape[0]
    for i, row in enumerate(rows):
        if row.shape[0] != dim:
            raise ValueError(
                f"inconsistent value dimensions: agent 0 has d={dim}, agent {i} has d={row.shape[0]}"
            )
    return np.vstack(rows)


def diameter(points: Iterable[np.ndarray] | np.ndarray) -> float:
    """Euclidean diameter of a finite point set (``diam`` in the paper).

    ``points`` may be an ``(m, d)`` array or an iterable of 1-D arrays.  The
    diameter of the empty set and of a singleton is 0.

    >>> diameter(np.array([[0.0], [3.0], [1.0]]))
    3.0
    """
    pts = np.asarray(list(points) if not isinstance(points, np.ndarray) else points, dtype=float)
    if pts.size == 0:
        return 0.0
    if pts.ndim == 1:
        pts = pts.reshape(-1, 1)
    if pts.shape[0] < 2:
        return 0.0
    # Pairwise distances; m is small (m = n agents) so the O(m^2) cost is fine.
    diffs = pts[:, None, :] - pts[None, :, :]
    dists = np.sqrt(np.sum(diffs * diffs, axis=-1))
    return float(dists.max())


def pairwise_diameters(outputs: np.ndarray) -> np.ndarray:
    """Euclidean diameters of stacked point sets, shape ``(..., n, d) -> (...)``.

    This is the batched counterpart of :func:`diameter` and performs the
    *same* floating-point operations elementwise (pairwise differences,
    squared sums, square roots, maximum), so a batched evaluation of candidate
    configurations is bit-for-bit comparable with per-candidate
    :func:`diameter` calls — which is what lets the batched adversaries make
    identical choices to the per-scenario ones.
    """
    points = np.asarray(outputs, dtype=float)
    if points.ndim < 2:
        raise ValueError(f"expected at least a (n, d) array, got shape {points.shape}")
    if points.shape[-2] < 2:
        return np.zeros(points.shape[:-2], dtype=float)
    if points.shape[-1] == 1:
        # max over sqrt((a_i - a_j)^2) equals sqrt((max - min)^2): rounding is
        # monotone, so the maximal pair is the (max, min) pair and applying
        # the same square/sqrt to it reproduces the dense result bit-for-bit
        # in O(n) instead of O(n^2).
        flat = points[..., 0]
        spread = flat.max(axis=-1) - flat.min(axis=-1)
        return np.sqrt(spread * spread)
    diffs = points[..., :, None, :] - points[..., None, :, :]
    dists = np.sqrt(np.sum(diffs * diffs, axis=-1))
    return dists.max(axis=(-1, -2))


# --------------------------------------------------------------------------- #
# Packed-bit kernels
# --------------------------------------------------------------------------- #
#
# Boolean rows (in-neighborhoods, receive masks) packed into uint8 via
# ``np.packbits`` are 8x denser than bool arrays, so row comparisons and
# first/last-set-bit scans over whole graph or mask stacks touch an eighth of
# the memory.  These kernels are shared by the bitset-packed graph layer
# (:mod:`repro.graphs.packed`) and the packed masked-reduction path of
# :mod:`repro.algorithms.base`.

#: For a byte value, the index (0 = most significant bit, packbits order) of
#: its first set bit; 8 for the zero byte.
_FIRST_BIT_IN_BYTE = np.full(256, 8, dtype=np.int64)
#: For a byte value, the index of its last set bit; -1 for the zero byte.
_LAST_BIT_IN_BYTE = np.full(256, -1, dtype=np.int64)
for _byte in range(1, 256):
    _bits = [_i for _i in range(8) if _byte & (1 << (7 - _i))]
    _FIRST_BIT_IN_BYTE[_byte] = _bits[0]
    _LAST_BIT_IN_BYTE[_byte] = _bits[-1]
del _byte, _bits


def pack_bool_rows(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(..., m)`` array into uint8 ``(..., ceil(m/8))`` rows.

    Element 0 of a row maps to the most significant bit of byte 0 (numpy's
    ``packbits`` big-bit order), so lexicographic byte order preserves the
    first/last-set-bit structure :func:`packed_first_true` and
    :func:`packed_last_true` rely on.
    """
    return np.packbits(np.asarray(mask, dtype=bool), axis=-1)


def packed_first_true(packed: np.ndarray, length: int) -> np.ndarray:
    """Index of the first set bit along the last (packed) axis.

    ``packed`` is a uint8 ``(..., nb)`` array produced by
    :func:`pack_bool_rows` from rows of ``length`` booleans; rows with no set
    bit map to the sentinel ``length``.  One byte-level ``argmax`` plus a
    256-entry table lookup replaces a full boolean scan.
    """
    nonzero = packed != 0
    has_bit = nonzero.any(axis=-1)
    first_byte = nonzero.argmax(axis=-1)
    byte_value = np.take_along_axis(packed, first_byte[..., None], axis=-1)[..., 0]
    index = first_byte * 8 + _FIRST_BIT_IN_BYTE[byte_value]
    return np.where(has_bit, index, length)


def packed_last_true(packed: np.ndarray, length: int) -> np.ndarray:
    """Index of the last set bit along the last (packed) axis (-1 if none set)."""
    nonzero = packed != 0
    has_bit = nonzero.any(axis=-1)
    nb = packed.shape[-1]
    last_byte = nb - 1 - nonzero[..., ::-1].argmax(axis=-1)
    byte_value = np.take_along_axis(packed, last_byte[..., None], axis=-1)[..., 0]
    index = last_byte * 8 + _LAST_BIT_IN_BYTE[byte_value]
    return np.where(has_bit, index, -1)


def packed_first_last_true(packed: np.ndarray, length: int):
    """Both set-bit extremes in one sweep over the packed bytes.

    Returns ``(packed_first_true(packed, length), packed_last_true(packed,
    length))`` bit-for-bit, but computes the byte-nonzero map and the
    has-any-bit reduction — the only full passes over the packed tensor —
    once and shares them between the two queries.  Used by the fused masked
    extreme pair, whose packed path needs the first *and* last in-neighbor
    of every receiver per coordinate.
    """
    nonzero = packed != 0
    has_bit = nonzero.any(axis=-1)
    nb = packed.shape[-1]
    first_byte = nonzero.argmax(axis=-1)
    byte_value = np.take_along_axis(packed, first_byte[..., None], axis=-1)[..., 0]
    first = np.where(has_bit, first_byte * 8 + _FIRST_BIT_IN_BYTE[byte_value], length)
    last_byte = nb - 1 - nonzero[..., ::-1].argmax(axis=-1)
    byte_value = np.take_along_axis(packed, last_byte[..., None], axis=-1)[..., 0]
    last = np.where(has_bit, last_byte * 8 + _LAST_BIT_IN_BYTE[byte_value], -1)
    return first, last


def packed_row_ids(packed: np.ndarray) -> np.ndarray:
    """Map packed rows to small integer ids (equal rows get equal ids).

    ``packed`` is interpreted as a stack of rows over its last axis; the
    result drops that axis.  Built on ``np.unique`` over the row bytes, this
    turns all-pairs row-equality tests (``O(K² · nb)`` byte comparisons) into
    an ``O(K log K)`` sort plus integer comparisons — the core trick behind
    the vectorized α-relation.
    """
    rows = np.ascontiguousarray(packed).reshape(-1, packed.shape[-1])
    _, inverse = np.unique(rows, axis=0, return_inverse=True)
    return inverse.reshape(packed.shape[:-1])


def running_argmax(values: Iterable[float], tolerance: float = 1e-15) -> int:
    """Index selected by the adversaries' strict-improvement scan.

    Scans ``values`` in order, keeping index ``i`` whenever ``values[i]``
    exceeds the running best by more than ``tolerance``.  This reproduces the
    exact tie-breaking of the per-scenario adversary loops (first graph wins
    on ties), which the batched adversaries must match choice-for-choice.
    """
    if not isinstance(values, np.ndarray):
        values = np.asarray(list(values), dtype=float)
    best = -math.inf
    best_index = 0
    for index, value in enumerate(values.ravel().tolist()):
        if value > best + tolerance:
            best = value
            best_index = index
    return best_index


def in_convex_hull(point: np.ndarray, points: np.ndarray, tol: float = 1e-9) -> bool:
    """Return True if ``point`` lies in the convex hull of the rows of ``points``.

    For dimension 1 this is an interval check.  For higher dimensions we solve
    the small linear program with a non-negative least-squares formulation,
    which is adequate for the small point sets (n agents) used in this
    library.
    """
    pts = np.asarray(points, dtype=float)
    p = as_value(point)
    if pts.ndim == 1:
        pts = pts.reshape(-1, 1)
    if pts.shape[1] != p.shape[0]:
        raise ValueError("dimension mismatch between point and hull points")
    if pts.shape[1] == 1:
        lo, hi = pts.min(), pts.max()
        return bool(lo - tol <= p[0] <= hi + tol)
    # General dimension: find convex weights w >= 0, sum w = 1, pts.T @ w = p.
    # Use a tiny projected-gradient solve; the problem size is n x d with n
    # small, so this is robust enough for test/benchmark purposes.
    m = pts.shape[0]
    weights = np.full(m, 1.0 / m)
    target = p
    a_mat = pts.T  # (d, m)
    for _ in range(5000):
        residual = a_mat @ weights - target
        grad = a_mat.T @ residual
        weights -= 0.1 * grad
        weights = np.clip(weights, 0.0, None)
        total = weights.sum()
        if total <= 0:
            weights = np.full(m, 1.0 / m)
        else:
            weights /= total
        if np.linalg.norm(residual) <= tol:
            return True
    residual = a_mat @ weights - target
    return bool(np.linalg.norm(residual) <= 1e-6)
