"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised when a communication graph is malformed or misused.

    Typical causes are missing self-loops, out-of-range agent identifiers, or
    combining graphs defined on different agent sets.
    """


class ModelError(ReproError):
    """Raised when a network model is malformed or misused.

    Typical causes are empty models, mixing graphs with different numbers of
    agents, or querying a model for a family it does not contain.
    """


class ExecutionError(ReproError):
    """Raised when an execution cannot be performed as requested.

    Typical causes are mismatched initial-value shapes, running zero agents,
    or using a communication pattern that yields graphs of the wrong size.
    """


class EnsembleShapeError(ExecutionError):
    """Raised when stacked ensemble inputs have inconsistent shapes.

    The batched engines operate on ``(B, n, d)`` value tensors, ``(C, n, n)``
    candidate adjacency stacks and per-scenario plan collections; this error
    names the offending shapes instead of letting NumPy raise an opaque
    broadcast error deep inside a masked reduction.

    Attributes
    ----------
    expected / actual:
        The shape (or shape description) the engine required and the one it
        received, when the raise site can name them (``None`` otherwise).
        Preserved across process boundaries — see :meth:`__reduce__`.
    """

    def __init__(self, message: str, *, expected=None, actual=None) -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual

    def __reduce__(self):
        # The default Exception reduction replays only ``self.args``; the
        # keyword-only diagnostics would vanish when a worker's error is
        # pickled back to the orchestrator.
        return (_rebuild_ensemble_shape_error, (self.args[0], self.expected, self.actual))


def _rebuild_ensemble_shape_error(message, expected, actual):
    return EnsembleShapeError(message, expected=expected, actual=actual)


class ConfigError(ReproError):
    """Raised when an :class:`~repro.config.EngineConfig` or a
    :class:`~repro.api.Study` is declared inconsistently.

    Typical causes are invalid knob values, a scenario specification with
    zero or several communication sources, or requesting certification
    without a network model.
    """


class AlgorithmError(ReproError):
    """Raised when an algorithm is configured or driven incorrectly.

    Typical causes are invalid weights for averaging algorithms, deciding
    twice in an approximate-consensus wrapper, or using an algorithm outside
    the network-model family it supports.
    """


class SolvabilityError(ReproError):
    """Raised when a solvability analysis cannot be carried out."""


class AsynchronyError(ReproError):
    """Raised by the asynchronous message-passing simulator.

    Typical causes are scheduling messages with non-positive delays,
    delivering messages to crashed agents, exceeding the crash budget, or a
    fault schedule starving a round-based agent of its ``n - f`` quorum.

    Attributes
    ----------
    agent / round_number / time:
        The agent, (1-based) round and simulation time of the failure, when
        the raise site can name them (``None`` otherwise).  Preserved across
        process boundaries — see :meth:`__reduce__`.
    """

    def __init__(
        self, message: str, *, agent=None, round_number=None, time=None
    ) -> None:
        super().__init__(message)
        self.agent = agent
        self.round_number = round_number
        self.time = time

    def __reduce__(self):
        return (
            _rebuild_asynchrony_error,
            (self.args[0], self.agent, self.round_number, self.time),
        )


def _rebuild_asynchrony_error(message, agent, round_number, time):
    return AsynchronyError(message, agent=agent, round_number=round_number, time=time)


class FaultModelError(ExecutionError):
    """Raised when an injected fault pushes an effective graph outside ``N_A``.

    The crash network model ``N_A`` of Section 8.1 contains exactly the
    graphs in which every agent has at least ``n - f`` in-neighbors.  The
    batched fault path checks every realized effective communication graph
    against this invariant; a violation names the offending scenario, round
    and agent instead of silently running an execution the certification
    layer's crash-model guarantees no longer cover.

    Attributes
    ----------
    scenario:
        The ensemble scenario index of the violating graph (``None`` when
        the violation occurred outside an ensemble context).
    round_number:
        The 1-based round of the violating graph.
    agent:
        The agent whose effective in-degree fell below the quorum.
    in_degree / required:
        The realized in-degree and the required minimum ``n - f``.
    """

    def __init__(
        self,
        message: str,
        *,
        scenario=None,
        round_number=None,
        agent=None,
        in_degree=None,
        required=None,
    ) -> None:
        super().__init__(message)
        self.scenario = scenario
        self.round_number = round_number
        self.agent = agent
        self.in_degree = in_degree
        self.required = required

    def __reduce__(self):
        # The default Exception reduction replays only ``self.args`` (the
        # message), so the diagnostic fields would be silently dropped when
        # the error crosses a process boundary (multiprocessing pickles
        # worker exceptions back to the orchestrator).
        kwargs = {
            "scenario": self.scenario,
            "round_number": self.round_number,
            "agent": self.agent,
            "in_degree": self.in_degree,
            "required": self.required,
        }
        return (_rebuild_fault_model_error, (self.args[0], kwargs))


def _rebuild_fault_model_error(message, kwargs):
    return FaultModelError(message, **kwargs)


class ServiceError(ReproError):
    """Raised by the crash-safe study orchestrator (:mod:`repro.service`).

    Typical causes are shards exhausting their retry budget in strict mode,
    malformed checkpoint journals, or dispatching a job kind no worker
    runner is registered for.
    """


class SerializationError(ServiceError):
    """Raised when a spec, plan, config or result cannot cross a process
    boundary as JSON.

    Typical causes are algorithms built from arbitrary callables
    (``CallableWeightAveraging``), adversary-routed studies (replay the
    committed schedules as a ``graphs=`` study instead), or payloads written
    by a newer serialization schema version.
    """


class UnsupportedVersionError(SerializationError):
    """Raised when a persisted record's ``version`` is newer than supported.

    The format contract (ROADMAP "campaign format contracts") is to reject
    unknown versions loudly rather than guess: a journal, cache or protocol
    payload written by a newer library must fail with an error that names
    the record type and both versions, never be half-decoded.

    Attributes
    ----------
    record_type:
        The ``__type__`` (or journal record kind) of the offending payload.
    version / supported:
        The version the record carries and the newest one this library reads.
    """

    def __init__(
        self, message: str, *, record_type=None, version=None, supported=None
    ) -> None:
        super().__init__(message)
        self.record_type = record_type
        self.version = version
        self.supported = supported

    def __reduce__(self):
        return (
            _rebuild_unsupported_version_error,
            (self.args[0], self.record_type, self.version, self.supported),
        )


def _rebuild_unsupported_version_error(message, record_type, version, supported):
    return UnsupportedVersionError(
        message, record_type=record_type, version=version, supported=supported
    )


class RemoteServiceError(ServiceError):
    """Raised by the remote job-queue service (:mod:`repro.service.remote`).

    Typical causes are an unreachable queue server, a malformed HTTP
    payload, a lease or completion rejected by the server, or a job that
    the server reports as terminally failed.

    Attributes
    ----------
    status:
        The HTTP status code of the failing request (``None`` when the
        failure happened before a response, e.g. a connection refusal).
    """

    def __init__(self, message: str, *, status=None) -> None:
        super().__init__(message)
        self.status = status

    def __reduce__(self):
        return (_rebuild_remote_service_error, (self.args[0], self.status))


def _rebuild_remote_service_error(message, status):
    return RemoteServiceError(message, status=status)


class WorkerCrashError(ServiceError):
    """Raised when a shard worker process dies without reporting a result.

    Carries the worker's exit code (negative values are the signal number,
    e.g. ``-9`` for SIGKILL).  Classified as *transient* by the retry
    policy: a killed worker says nothing deterministic about the shard.
    """

    def __init__(self, message: str, *, exitcode=None) -> None:
        super().__init__(message)
        self.exitcode = exitcode

    def __reduce__(self):
        return (_rebuild_worker_crash_error, (self.args[0], self.exitcode))


def _rebuild_worker_crash_error(message, exitcode):
    return WorkerCrashError(message, exitcode=exitcode)


class ShardTimeoutError(ServiceError):
    """Raised when a shard exceeds its wall-clock budget or stops heartbeating.

    Classified as *transient* by the retry policy.

    Attributes
    ----------
    elapsed:
        Seconds the shard had been running when it was killed.
    kind:
        ``"timeout"`` for a hard per-shard budget, ``"heartbeat"`` for a
        worker that stopped sending liveness beats.
    """

    def __init__(self, message: str, *, elapsed=None, kind="timeout") -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.kind = kind

    def __reduce__(self):
        return (_rebuild_shard_timeout_error, (self.args[0], self.elapsed, self.kind))


def _rebuild_shard_timeout_error(message, elapsed, kind):
    return ShardTimeoutError(message, elapsed=elapsed, kind=kind)


class CampaignError(ServiceError):
    """Raised by the counterexample campaign service (:mod:`repro.campaign`).

    Typical causes are a registry audit finding an algorithm with no fuzz
    entry, a malformed corpus entry or failure artifact, or a replay whose
    re-execution does not reproduce the recorded divergence.
    """
