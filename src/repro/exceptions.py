"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised when a communication graph is malformed or misused.

    Typical causes are missing self-loops, out-of-range agent identifiers, or
    combining graphs defined on different agent sets.
    """


class ModelError(ReproError):
    """Raised when a network model is malformed or misused.

    Typical causes are empty models, mixing graphs with different numbers of
    agents, or querying a model for a family it does not contain.
    """


class ExecutionError(ReproError):
    """Raised when an execution cannot be performed as requested.

    Typical causes are mismatched initial-value shapes, running zero agents,
    or using a communication pattern that yields graphs of the wrong size.
    """


class EnsembleShapeError(ExecutionError):
    """Raised when stacked ensemble inputs have inconsistent shapes.

    The batched engines operate on ``(B, n, d)`` value tensors, ``(C, n, n)``
    candidate adjacency stacks and per-scenario plan collections; this error
    names the offending shapes instead of letting NumPy raise an opaque
    broadcast error deep inside a masked reduction.
    """


class ConfigError(ReproError):
    """Raised when an :class:`~repro.config.EngineConfig` or a
    :class:`~repro.api.Study` is declared inconsistently.

    Typical causes are invalid knob values, a scenario specification with
    zero or several communication sources, or requesting certification
    without a network model.
    """


class AlgorithmError(ReproError):
    """Raised when an algorithm is configured or driven incorrectly.

    Typical causes are invalid weights for averaging algorithms, deciding
    twice in an approximate-consensus wrapper, or using an algorithm outside
    the network-model family it supports.
    """


class SolvabilityError(ReproError):
    """Raised when a solvability analysis cannot be carried out."""


class AsynchronyError(ReproError):
    """Raised by the asynchronous message-passing simulator.

    Typical causes are scheduling messages with non-positive delays,
    delivering messages to crashed agents, or exceeding the crash budget.
    """
