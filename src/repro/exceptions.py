"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised when a communication graph is malformed or misused.

    Typical causes are missing self-loops, out-of-range agent identifiers, or
    combining graphs defined on different agent sets.
    """


class ModelError(ReproError):
    """Raised when a network model is malformed or misused.

    Typical causes are empty models, mixing graphs with different numbers of
    agents, or querying a model for a family it does not contain.
    """


class ExecutionError(ReproError):
    """Raised when an execution cannot be performed as requested.

    Typical causes are mismatched initial-value shapes, running zero agents,
    or using a communication pattern that yields graphs of the wrong size.
    """


class EnsembleShapeError(ExecutionError):
    """Raised when stacked ensemble inputs have inconsistent shapes.

    The batched engines operate on ``(B, n, d)`` value tensors, ``(C, n, n)``
    candidate adjacency stacks and per-scenario plan collections; this error
    names the offending shapes instead of letting NumPy raise an opaque
    broadcast error deep inside a masked reduction.
    """


class ConfigError(ReproError):
    """Raised when an :class:`~repro.config.EngineConfig` or a
    :class:`~repro.api.Study` is declared inconsistently.

    Typical causes are invalid knob values, a scenario specification with
    zero or several communication sources, or requesting certification
    without a network model.
    """


class AlgorithmError(ReproError):
    """Raised when an algorithm is configured or driven incorrectly.

    Typical causes are invalid weights for averaging algorithms, deciding
    twice in an approximate-consensus wrapper, or using an algorithm outside
    the network-model family it supports.
    """


class SolvabilityError(ReproError):
    """Raised when a solvability analysis cannot be carried out."""


class AsynchronyError(ReproError):
    """Raised by the asynchronous message-passing simulator.

    Typical causes are scheduling messages with non-positive delays,
    delivering messages to crashed agents, exceeding the crash budget, or a
    fault schedule starving a round-based agent of its ``n - f`` quorum.
    """


class FaultModelError(ExecutionError):
    """Raised when an injected fault pushes an effective graph outside ``N_A``.

    The crash network model ``N_A`` of Section 8.1 contains exactly the
    graphs in which every agent has at least ``n - f`` in-neighbors.  The
    batched fault path checks every realized effective communication graph
    against this invariant; a violation names the offending scenario, round
    and agent instead of silently running an execution the certification
    layer's crash-model guarantees no longer cover.

    Attributes
    ----------
    scenario:
        The ensemble scenario index of the violating graph (``None`` when
        the violation occurred outside an ensemble context).
    round_number:
        The 1-based round of the violating graph.
    agent:
        The agent whose effective in-degree fell below the quorum.
    in_degree / required:
        The realized in-degree and the required minimum ``n - f``.
    """

    def __init__(
        self,
        message: str,
        *,
        scenario=None,
        round_number=None,
        agent=None,
        in_degree=None,
        required=None,
    ) -> None:
        super().__init__(message)
        self.scenario = scenario
        self.round_number = round_number
        self.agent = agent
        self.in_degree = in_degree
        self.required = required
