"""Communication patterns: infinite sequences of communication graphs.

In the system model of Section 2 the adversary chooses, for each round, one
graph from the network model; the resulting infinite sequence is the
*communication pattern* of the execution.  Section 6.1 generalizes this to
arbitrary *properties* — sets of allowed patterns — which the
:class:`SigmaBlockPattern` (concatenations of ``σ_i`` blocks) realizes.

A pattern is an object with a :meth:`CommunicationPattern.graph_at` method;
adaptive (adversarial) patterns additionally receive a
:class:`RoundContext` describing the current configuration and a simulator
for candidate successor configurations, which is how the worst-case
adversaries of the lower-bound proofs are implemented
(:mod:`repro.core.adversary`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ExecutionError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import psi_graph


@dataclass
class RoundContext:
    """Information handed to adaptive patterns when they pick the next graph.

    Attributes
    ----------
    round_number:
        The 1-based round about to be executed.
    outputs:
        The ``(n, d)`` matrix of current agent outputs ``y(t-1)``.
    states:
        The current per-agent algorithm states (opaque to the pattern).
    algorithm:
        The running algorithm instance.
    simulate_outputs:
        Callable mapping a candidate communication graph to the ``(n, d)``
        output matrix the algorithm would produce if that graph were applied
        this round.  The call has no side effects on the running execution.
    history:
        The list of graphs applied in earlier rounds.
    """

    round_number: int
    outputs: np.ndarray
    states: Sequence[Any]
    algorithm: Any
    simulate_outputs: Callable[[CommunicationGraph], np.ndarray]
    history: List[CommunicationGraph] = field(default_factory=list)


class CommunicationPattern(ABC):
    """Abstract base class of communication patterns."""

    @abstractmethod
    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        """Return the communication graph of round ``round_number`` (1-based).

        Oblivious patterns ignore ``context``; adaptive patterns may use it.
        """

    def reset(self) -> None:
        """Reset any internal state before a fresh execution (default: no-op)."""


class ConstantPattern(CommunicationPattern):
    """The pattern that applies the same graph every round."""

    def __init__(self, graph: CommunicationGraph) -> None:
        self._graph = graph

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        return self._graph

    def __repr__(self) -> str:
        return f"ConstantPattern({self._graph!r})"


class PeriodicPattern(CommunicationPattern):
    """The pattern that cycles through a finite list of graphs forever."""

    def __init__(self, graphs: Sequence[CommunicationGraph]) -> None:
        graphs = list(graphs)
        if not graphs:
            raise ExecutionError("a periodic pattern needs at least one graph")
        self._graphs = graphs

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if round_number < 1:
            raise ExecutionError(f"rounds are 1-based, got {round_number}")
        return self._graphs[(round_number - 1) % len(self._graphs)]

    def __repr__(self) -> str:
        return f"PeriodicPattern({len(self._graphs)} graphs)"


class SequencePattern(CommunicationPattern):
    """A finite prefix of graphs, then a suffix pattern (default: repeat the last graph)."""

    def __init__(
        self,
        prefix: Sequence[CommunicationGraph],
        suffix: Optional[CommunicationPattern] = None,
    ) -> None:
        prefix = list(prefix)
        if not prefix and suffix is None:
            raise ExecutionError("a sequence pattern needs a prefix or a suffix")
        self._prefix = prefix
        self._suffix = suffix or ConstantPattern(prefix[-1])

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if round_number < 1:
            raise ExecutionError(f"rounds are 1-based, got {round_number}")
        if round_number <= len(self._prefix):
            return self._prefix[round_number - 1]
        return self._suffix.graph_at(round_number - len(self._prefix), context)

    def __repr__(self) -> str:
        return f"SequencePattern(prefix={len(self._prefix)}, suffix={self._suffix!r})"


class RandomPattern(CommunicationPattern):
    """A pattern that samples a graph uniformly from a collection each round.

    The sampling is a deterministic function of the round number and the seed,
    so the same pattern object can be replayed across executions.
    """

    def __init__(self, graphs: Sequence[CommunicationGraph], seed: int = 0) -> None:
        graphs = list(graphs)
        if not graphs:
            raise ExecutionError("a random pattern needs at least one graph")
        self._graphs = graphs
        self._seed = seed

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if round_number < 1:
            raise ExecutionError(f"rounds are 1-based, got {round_number}")
        rng = np.random.default_rng((self._seed, round_number))
        return self._graphs[int(rng.integers(len(self._graphs)))]

    def __repr__(self) -> str:
        return f"RandomPattern({len(self._graphs)} graphs, seed={self._seed})"


class SigmaBlockPattern(CommunicationPattern):
    """Concatenation of ``σ_i`` blocks: each block repeats ``Ψ_i`` for ``n - 2`` rounds.

    This realizes the property ``P_seq`` of Section 6.2.  The block choices
    may be given explicitly (``choices``) or sampled pseudo-randomly by block
    index; once the explicit choices are exhausted the last choice repeats.
    """

    def __init__(self, n: int, choices: Optional[Sequence[int]] = None, seed: int = 0) -> None:
        if n < 4:
            raise ExecutionError("sigma-block patterns need n >= 4 agents")
        self._n = n
        self._block_length = n - 2
        self._choices = list(choices) if choices is not None else None
        self._seed = seed
        self._psi = {i: psi_graph(n, i) for i in (0, 1, 2)}

    @property
    def block_length(self) -> int:
        """Number of rounds per ``σ`` block (``n - 2``)."""
        return self._block_length

    def choice_for_block(self, block_index: int) -> int:
        """The special agent made deaf during block ``block_index`` (0-based)."""
        if self._choices is not None:
            if block_index < len(self._choices):
                return self._choices[block_index]
            return self._choices[-1]
        rng = np.random.default_rng((self._seed, block_index))
        return int(rng.integers(3))

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if round_number < 1:
            raise ExecutionError(f"rounds are 1-based, got {round_number}")
        block_index = (round_number - 1) // self._block_length
        return self._psi[self.choice_for_block(block_index)]

    def __repr__(self) -> str:
        return f"SigmaBlockPattern(n={self._n}, block_length={self._block_length})"


class AdversarialPattern(CommunicationPattern):
    """Base class of adaptive patterns that need the :class:`RoundContext`.

    Subclasses implement :meth:`choose`; :meth:`graph_at` enforces that a
    context is available (adaptive patterns cannot be evaluated obliviously).
    """

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if context is None:
            raise ExecutionError(
                f"{type(self).__name__} is adaptive and needs a RoundContext; "
                "run it through repro.execution.run_execution"
            )
        return self.choose(context)

    @abstractmethod
    def choose(self, context: RoundContext) -> CommunicationGraph:
        """Pick the communication graph for the round described by ``context``."""
