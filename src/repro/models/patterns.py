"""Communication patterns: infinite sequences of communication graphs.

In the system model of Section 2 the adversary chooses, for each round, one
graph from the network model; the resulting infinite sequence is the
*communication pattern* of the execution.  Section 6.1 generalizes this to
arbitrary *properties* — sets of allowed patterns — which the
:class:`SigmaBlockPattern` (concatenations of ``σ_i`` blocks) realizes.

A pattern is an object with a :meth:`CommunicationPattern.graph_at` method;
adaptive (adversarial) patterns additionally receive a
:class:`RoundContext` describing the current configuration and a simulator
for candidate successor configurations, which is how the worst-case
adversaries of the lower-bound proofs are implemented
(:mod:`repro.core.adversary`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ExecutionError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import psi_graph


@dataclass
class RoundContext:
    """Information handed to adaptive patterns when they pick the next graph.

    Attributes
    ----------
    round_number:
        The 1-based round about to be executed.
    outputs:
        The ``(n, d)`` matrix of current agent outputs ``y(t-1)``.
    states:
        The current per-agent algorithm states (opaque to the pattern).
    algorithm:
        The running algorithm instance.
    simulate_outputs:
        Callable mapping a candidate communication graph to the ``(n, d)``
        output matrix the algorithm would produce if that graph were applied
        this round.  The call has no side effects on the running execution.
    history:
        The list of graphs applied in earlier rounds.
    batch_rollout:
        Optional callable mapping ``C`` candidate graph *sequences* (all of
        the same length ``L``) to the ``(C, n, d)`` output tensor obtained by
        applying each sequence from the current configuration.  The fast
        execution path supplies one that routes all candidates through the
        algorithm's ``batch_*`` hooks as a single stacked ``(C, n, n)``
        adjacency pass per round; when absent, the ``simulate_*_batch``
        methods below fall back to per-candidate simulation.
    """

    round_number: int
    outputs: np.ndarray
    states: Sequence[Any]
    algorithm: Any
    simulate_outputs: Callable[[CommunicationGraph], np.ndarray]
    history: List[CommunicationGraph] = field(default_factory=list)
    batch_rollout: Optional[
        Callable[[Sequence[Sequence[CommunicationGraph]]], np.ndarray]
    ] = None

    def simulate_outputs_batch(self, graphs: Sequence[CommunicationGraph]) -> np.ndarray:
        """The ``(C, n, d)`` outputs of applying each candidate graph this round.

        Equivalent to stacking :attr:`simulate_outputs` over ``graphs`` but,
        on the vectorized fast path, evaluated as one batched adjacency pass.
        """
        graphs = list(graphs)
        if not graphs:
            raise ExecutionError("simulate_outputs_batch needs at least one candidate graph")
        if self.batch_rollout is not None:
            return self.batch_rollout([[graph] for graph in graphs])
        return np.stack(
            [np.asarray(self.simulate_outputs(graph), dtype=float) for graph in graphs]
        )

    def simulate_sequences_batch(
        self, sequences: Sequence[Sequence[CommunicationGraph]]
    ) -> np.ndarray:
        """The ``(C, n, d)`` outputs after applying each candidate graph sequence.

        All sequences must have the same length.  Used by lookahead and
        block-committing adversaries to evaluate multi-round candidates in one
        batched pass.
        """
        candidate_sequences = [list(sequence) for sequence in sequences]
        if not candidate_sequences:
            raise ExecutionError("simulate_sequences_batch needs at least one candidate")
        lengths = {len(sequence) for sequence in candidate_sequences}
        if len(lengths) != 1 or 0 in lengths:
            raise ExecutionError(
                f"candidate sequences must share one non-zero length, got lengths {sorted(lengths)}"
            )
        if self.batch_rollout is not None:
            return self.batch_rollout(candidate_sequences)
        # Per-candidate fallback used by the per-agent execution path: rebuild
        # the configuration and replay each sequence through the engine.
        from repro.execution.engine import run_from_configuration  # local import avoids a cycle
        from repro.execution.state import Configuration

        configuration = Configuration(
            states=tuple(self.states),
            outputs=np.asarray(self.outputs, dtype=float),
            round_number=self.round_number - 1,
        )
        finals = []
        for sequence in candidate_sequences:
            final, _ = run_from_configuration(self.algorithm, configuration, sequence)
            finals.append(np.asarray(final.outputs, dtype=float))
        return np.stack(finals)


class CommunicationPattern(ABC):
    """Abstract base class of communication patterns."""

    @abstractmethod
    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        """Return the communication graph of round ``round_number`` (1-based).

        Oblivious patterns ignore ``context``; adaptive patterns may use it.
        """

    def reset(self) -> None:
        """Reset any internal state before a fresh execution (default: no-op)."""


class ConstantPattern(CommunicationPattern):
    """The pattern that applies the same graph every round."""

    def __init__(self, graph: CommunicationGraph) -> None:
        self._graph = graph

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        return self._graph

    def __repr__(self) -> str:
        return f"ConstantPattern({self._graph!r})"


class PeriodicPattern(CommunicationPattern):
    """The pattern that cycles through a finite list of graphs forever."""

    def __init__(self, graphs: Sequence[CommunicationGraph]) -> None:
        graphs = list(graphs)
        if not graphs:
            raise ExecutionError("a periodic pattern needs at least one graph")
        self._graphs = graphs

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if round_number < 1:
            raise ExecutionError(f"rounds are 1-based, got {round_number}")
        return self._graphs[(round_number - 1) % len(self._graphs)]

    def __repr__(self) -> str:
        return f"PeriodicPattern({len(self._graphs)} graphs)"


class SequencePattern(CommunicationPattern):
    """A finite prefix of graphs, then a suffix pattern (default: repeat the last graph)."""

    def __init__(
        self,
        prefix: Sequence[CommunicationGraph],
        suffix: Optional[CommunicationPattern] = None,
    ) -> None:
        prefix = list(prefix)
        if not prefix and suffix is None:
            raise ExecutionError("a sequence pattern needs a prefix or a suffix")
        self._prefix = prefix
        self._suffix = suffix or ConstantPattern(prefix[-1])

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if round_number < 1:
            raise ExecutionError(f"rounds are 1-based, got {round_number}")
        if round_number <= len(self._prefix):
            return self._prefix[round_number - 1]
        return self._suffix.graph_at(round_number - len(self._prefix), context)

    def __repr__(self) -> str:
        return f"SequencePattern(prefix={len(self._prefix)}, suffix={self._suffix!r})"


class RandomPattern(CommunicationPattern):
    """A pattern that samples a graph uniformly from a collection each round.

    The sampling is a deterministic function of the round number and the seed,
    so the same pattern object can be replayed across executions.
    """

    def __init__(self, graphs: Sequence[CommunicationGraph], seed: int = 0) -> None:
        graphs = list(graphs)
        if not graphs:
            raise ExecutionError("a random pattern needs at least one graph")
        self._graphs = graphs
        self._seed = seed

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if round_number < 1:
            raise ExecutionError(f"rounds are 1-based, got {round_number}")
        rng = np.random.default_rng((self._seed, round_number))
        return self._graphs[int(rng.integers(len(self._graphs)))]

    def __repr__(self) -> str:
        return f"RandomPattern({len(self._graphs)} graphs, seed={self._seed})"


class SigmaBlockPattern(CommunicationPattern):
    """Concatenation of ``σ_i`` blocks: each block repeats ``Ψ_i`` for ``n - 2`` rounds.

    This realizes the property ``P_seq`` of Section 6.2.  The block choices
    may be given explicitly (``choices``) or sampled pseudo-randomly by block
    index; once the explicit choices are exhausted the last choice repeats.
    """

    def __init__(self, n: int, choices: Optional[Sequence[int]] = None, seed: int = 0) -> None:
        if n < 4:
            raise ExecutionError("sigma-block patterns need n >= 4 agents")
        self._n = n
        self._block_length = n - 2
        self._choices = list(choices) if choices is not None else None
        self._seed = seed
        self._psi = {i: psi_graph(n, i) for i in (0, 1, 2)}

    @property
    def block_length(self) -> int:
        """Number of rounds per ``σ`` block (``n - 2``)."""
        return self._block_length

    def choice_for_block(self, block_index: int) -> int:
        """The special agent made deaf during block ``block_index`` (0-based)."""
        if self._choices is not None:
            if block_index < len(self._choices):
                return self._choices[block_index]
            return self._choices[-1]
        rng = np.random.default_rng((self._seed, block_index))
        return int(rng.integers(3))

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if round_number < 1:
            raise ExecutionError(f"rounds are 1-based, got {round_number}")
        block_index = (round_number - 1) // self._block_length
        return self._psi[self.choice_for_block(block_index)]

    def __repr__(self) -> str:
        return f"SigmaBlockPattern(n={self._n}, block_length={self._block_length})"


@dataclass(frozen=True)
class EnsemblePlan:
    """One decision window of a batched adversarial ensemble run.

    Attributes
    ----------
    candidates:
        The ``C`` candidate graph sequences to evaluate, all of the same
        length ``L``.  The candidate order must match the order the
        per-scenario adversary scans, so tie-breaking is identical.
    commit_rounds:
        How many rounds of the winning candidate to commit before the
        adversary is consulted again (1 for receding-horizon adversaries,
        ``L`` for block-committing ones).
    """

    candidates: Tuple[Tuple[CommunicationGraph, ...], ...]
    commit_rounds: int

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ExecutionError("an ensemble plan needs at least one candidate sequence")
        lengths = {len(candidate) for candidate in self.candidates}
        if len(lengths) != 1 or 0 in lengths:
            raise ExecutionError(
                f"ensemble-plan candidates must share one non-zero length, got {sorted(lengths)}"
            )
        if not 1 <= self.commit_rounds <= len(self.candidates[0]):
            raise ExecutionError(
                f"commit_rounds must be in [1, {len(self.candidates[0])}], got {self.commit_rounds}"
            )

    @property
    def horizon(self) -> int:
        """Length ``L`` of every candidate sequence."""
        return len(self.candidates[0])


class AdversarialPattern(CommunicationPattern):
    """Base class of adaptive patterns that need the :class:`RoundContext`.

    Subclasses implement :meth:`choose`; :meth:`graph_at` enforces that a
    context is available (adaptive patterns cannot be evaluated obliviously).
    Adversaries whose candidate set depends only on the round number may also
    implement :meth:`ensemble_plan`, which lets
    :func:`repro.execution.batch.run_adversarial_ensemble` evaluate all
    scenarios and candidates as one ``(B, C, n, d)`` tensor per decision.
    """

    def graph_at(self, round_number: int, context: Optional[RoundContext] = None) -> CommunicationGraph:
        if context is None:
            raise ExecutionError(
                f"{type(self).__name__} is adaptive and needs a RoundContext; "
                "run it through repro.execution.run_execution"
            )
        return self.choose(context)

    @abstractmethod
    def choose(self, context: RoundContext) -> CommunicationGraph:
        """Pick the communication graph for the round described by ``context``."""

    def ensemble_plan(self, round_number: int, n: int) -> Optional[EnsemblePlan]:
        """The candidate sequences to evaluate for round ``round_number``.

        Returns ``None`` (the default) when the adversary has no batched
        ensemble support, in which case the ensemble runner falls back to
        scenario-by-scenario execution.
        """
        return None

    def ensemble_plans(
        self,
        round_number: int,
        n: int,
        histories: Sequence[Sequence[CommunicationGraph]],
    ) -> Optional[Sequence[EnsemblePlan]]:
        """Per-scenario plans for *history-dependent* batched adversaries.

        ``histories`` holds, for each of the ``B`` scenarios of the ensemble,
        the graphs committed against that scenario so far — the ensemble
        counterpart of :attr:`RoundContext.history` in single-scenario runs.
        History-dependent adversaries return one :class:`EnsemblePlan` per
        scenario; all plans must share the same horizon, candidate count and
        ``commit_rounds`` so the runner can evaluate the whole decision as a
        single stacked ``(B, C, n, n)`` adjacency pass.  Candidate order must
        match the order the adversary's :meth:`choose` scans for scenario
        ``b``, so the per-scenario argmax commit breaks ties identically.

        Returns ``None`` (the default) when the candidate set depends only on
        the round number; the runner then uses the shared
        :meth:`ensemble_plan`.
        """
        return None
