"""Network models and communication patterns.

A *network model* (Section 2) is a non-empty set of communication graphs; the
adversary picks one graph per round, forming a *communication pattern*.  This
package provides the :class:`~repro.models.network_model.NetworkModel`
container with cached structural analyses, the standard model families used
throughout the paper (two-agent model, deaf models, Ψ models, the
asynchronous-crash model ``N_A``), and pattern objects (constant, periodic,
random, sequence-based, and the ``σ_i``-block property ``P_seq`` of
Section 6.1).
"""

from repro.models.network_model import NetworkModel
from repro.models.patterns import (
    AdversarialPattern,
    CommunicationPattern,
    ConstantPattern,
    PeriodicPattern,
    RandomPattern,
    SequencePattern,
    SigmaBlockPattern,
)
from repro.models.standard import (
    all_nonsplit_model,
    all_rooted_model,
    crash_model,
    deaf_model,
    psi_model,
    two_agent_model,
)

__all__ = [
    "NetworkModel",
    "CommunicationPattern",
    "ConstantPattern",
    "PeriodicPattern",
    "RandomPattern",
    "SequencePattern",
    "SigmaBlockPattern",
    "AdversarialPattern",
    "all_nonsplit_model",
    "all_rooted_model",
    "crash_model",
    "deaf_model",
    "psi_model",
    "two_agent_model",
]
