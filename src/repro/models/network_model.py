"""The :class:`NetworkModel` container.

A network model is the set ``N`` of communication graphs from which the
adversary may pick one graph per round (Section 2).  The class is an
immutable, hashable collection that caches the structural analyses the rest
of the library needs repeatedly (rootedness, non-splitness, α-diameter,
solvability of exact/asymptotic consensus).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ModelError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.properties import is_nonsplit, is_rooted
from repro.graphs.relations import alpha_diameter, beta_classes
from repro.graphs.solvability import (
    asymptotic_consensus_solvable,
    exact_consensus_solvable,
    unsolvable_beta_classes,
)


class NetworkModel:
    """An immutable set of communication graphs on a common agent set.

    Parameters
    ----------
    graphs:
        The communication graphs of the model.  All must have the same number
        of agents; duplicates are removed.
    name:
        Optional display name used in reports (e.g. ``"deaf(K_4)"``).

    Examples
    --------
    >>> from repro.graphs import two_agent_graphs
    >>> model = NetworkModel(two_agent_graphs(), name="{H0,H1,H2}")
    >>> model.n, len(model)
    (2, 3)
    >>> model.is_rooted_model(), model.exact_consensus_solvable()
    (True, False)
    """

    __slots__ = ("_graphs", "_name", "_n", "_cache")

    def __init__(self, graphs: Iterable[CommunicationGraph], name: Optional[str] = None) -> None:
        unique: List[CommunicationGraph] = []
        seen = set()
        for g in graphs:
            if not isinstance(g, CommunicationGraph):
                raise ModelError(f"network models contain CommunicationGraph objects, got {type(g)!r}")
            if g not in seen:
                seen.add(g)
                unique.append(g)
        if not unique:
            raise ModelError("a network model must contain at least one communication graph")
        n = unique[0].n
        for g in unique:
            if g.n != n:
                raise ModelError(
                    f"all graphs must have the same number of agents; got {g.n} and {n}"
                )
        self._graphs: Tuple[CommunicationGraph, ...] = tuple(unique)
        self._name = name
        self._n = n
        self._cache: dict = {}

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of agents of every graph in the model."""
        return self._n

    @property
    def name(self) -> Optional[str]:
        """Optional display name."""
        return self._name

    @property
    def graphs(self) -> Tuple[CommunicationGraph, ...]:
        """The graphs of the model, in insertion order with duplicates removed."""
        return self._graphs

    def __iter__(self) -> Iterator[CommunicationGraph]:
        return iter(self._graphs)

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, graph: object) -> bool:
        return graph in set(self._graphs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkModel):
            return NotImplemented
        return set(self._graphs) == set(other._graphs)

    def __hash__(self) -> int:
        return hash(frozenset(self._graphs))

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"NetworkModel(n={self._n}{label}, graphs={len(self._graphs)})"

    # ------------------------------------------------------------------ #
    # Set operations
    # ------------------------------------------------------------------ #

    def union(self, other: "NetworkModel", name: Optional[str] = None) -> "NetworkModel":
        """The model containing the graphs of both models."""
        if other.n != self._n:
            raise ModelError("cannot union models with different numbers of agents")
        return NetworkModel(self._graphs + other._graphs, name=name)

    def with_graphs(self, extra: Iterable[CommunicationGraph], name: Optional[str] = None) -> "NetworkModel":
        """A new model with additional graphs included."""
        return NetworkModel(list(self._graphs) + list(extra), name=name or self._name)

    def is_submodel_of(self, other: "NetworkModel") -> bool:
        """True iff every graph of this model belongs to ``other`` (``N' ⊆ N``)."""
        return set(self._graphs) <= set(other._graphs)

    # ------------------------------------------------------------------ #
    # Cached structural analyses
    # ------------------------------------------------------------------ #

    def is_rooted_model(self) -> bool:
        """True iff every graph of the model is rooted.

        By the solvability characterization, this is equivalent to asymptotic
        consensus being solvable in the model.
        """
        return self._cached("rooted", lambda: all(is_rooted(g) for g in self._graphs))

    def is_nonsplit_model(self) -> bool:
        """True iff every graph of the model is non-split."""
        return self._cached("nonsplit", lambda: all(is_nonsplit(g) for g in self._graphs))

    def asymptotic_consensus_solvable(self) -> bool:
        """True iff asymptotic consensus is solvable in the model (rooted model)."""
        return self._cached(
            "asymptotic", lambda: asymptotic_consensus_solvable(self._graphs)
        )

    def exact_consensus_solvable(self) -> bool:
        """True iff exact consensus is solvable in the model (Theorem 19)."""
        return self._cached("exact", lambda: exact_consensus_solvable(self._graphs))

    def alpha_diameter(self) -> float:
        """The α-diameter ``D`` of the model (Definition 22); ``inf`` if undefined."""
        return self._cached("alpha_diameter", lambda: alpha_diameter(self._graphs))

    def beta_classes(self) -> List[FrozenSet[CommunicationGraph]]:
        """The β-classes of the model (Definition 16)."""
        return self._cached("beta_classes", lambda: beta_classes(self._graphs))

    def unsolvable_beta_classes(self) -> List[List[CommunicationGraph]]:
        """The source-incompatible β-classes (witnesses of exact-consensus unsolvability)."""
        return self._cached(
            "unsolvable_beta", lambda: unsolvable_beta_classes(self._graphs)
        )

    def deaf_graph_for(self, agent: int) -> Optional[CommunicationGraph]:
        """Some graph of the model in which ``agent`` is deaf, or None.

        Lemma 8 requires, for each agent, a graph of the model in which that
        agent is deaf; this accessor is used by the valency machinery.
        """
        for g in self._graphs:
            if g.is_deaf(agent):
                return g
        return None

    def every_agent_can_be_deaf(self) -> bool:
        """True iff for every agent there is a model graph in which it is deaf (Lemma 8)."""
        return all(self.deaf_graph_for(i) is not None for i in range(self._n))

    def describe(self) -> str:
        """A multi-line report of the model's structural properties."""
        lines = [repr(self)]
        lines.append(f"  rooted model:        {self.is_rooted_model()}")
        lines.append(f"  non-split model:     {self.is_nonsplit_model()}")
        lines.append(f"  asymptotic solvable: {self.asymptotic_consensus_solvable()}")
        lines.append(f"  exact solvable:      {self.exact_consensus_solvable()}")
        lines.append(f"  alpha-diameter:      {self.alpha_diameter()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _cached(self, key: str, compute):
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]
