"""Standard network models used throughout the paper and its Table 1.

* :func:`two_agent_model` — ``{H0, H1, H2}``, the model of Theorem 1.
* :func:`deaf_model` — ``deaf(G)`` (default ``G = K_n``), the model of
  Theorem 2; ``deaf(K_n)`` is a sub-model of the all-non-split model.
* :func:`psi_model` — ``{Ψ_0, Ψ_1, Ψ_2}``, the rooted model of Theorem 3.
* :func:`all_rooted_model` / :func:`all_nonsplit_model` — exhaustive
  enumerations for small ``n`` (the "weakest model in which asymptotic
  consensus is solvable" and the benign-failure model, respectively).
* :func:`crash_model` — the asynchronous-with-crashes round model ``N_A`` of
  Section 8.1 (all graphs with in-degrees at least ``n - f``).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Optional

import numpy as np

from repro.exceptions import ModelError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import (
    complete_graph,
    crash_tolerant_graphs,
    deaf_family,
    psi_family,
    two_agent_graphs,
)
from repro.graphs.properties import is_nonsplit, is_rooted
from repro.models.network_model import NetworkModel

#: Enumerating all digraphs on ``n`` nodes costs ``2^(n(n-1))`` graphs; keep
#: exhaustive model constructions to sizes where that is comfortably feasible.
_MAX_EXHAUSTIVE_N = 4


def two_agent_model() -> NetworkModel:
    """The model ``{H0, H1, H2}`` of all rooted two-agent graphs (Figure 1)."""
    return NetworkModel(two_agent_graphs(), name="{H0,H1,H2}")


def deaf_model(base: Optional[CommunicationGraph] = None, n: Optional[int] = None) -> NetworkModel:
    """The model ``deaf(G)`` of Section 5 (default base graph ``G = K_n``).

    Exactly one of ``base`` and ``n`` must be given; with ``n`` the base graph
    is the complete digraph ``K_n``.
    """
    if (base is None) == (n is None):
        raise ModelError("pass exactly one of 'base' or 'n'")
    if base is None:
        base = complete_graph(int(n))
    label = base.name or "G"
    return NetworkModel(deaf_family(base), name=f"deaf({label})")


def psi_model(n: int) -> NetworkModel:
    """The rooted model ``{Ψ_0, Ψ_1, Ψ_2}`` of Section 6 (Figure 2), ``n >= 4``."""
    return NetworkModel(psi_family(n), name=f"Psi(n={n})")


def _all_graphs(n: int):
    """Yield every communication graph on ``n`` agents (self-loops implicit)."""
    off_diagonal = [(i, j) for i in range(n) for j in range(n) if i != j]
    for bits in iter_product((False, True), repeat=len(off_diagonal)):
        adj = np.zeros((n, n), dtype=bool)
        for (i, j), present in zip(off_diagonal, bits):
            adj[i, j] = present
        yield CommunicationGraph(n, adjacency=adj)


def all_rooted_model(n: int) -> NetworkModel:
    """The model of *all* rooted graphs on ``n`` agents (exhaustive; ``n <= 4``).

    This is the weakest (largest) network model in which asymptotic and
    approximate consensus are solvable.  For larger ``n`` the enumeration is
    intractable; use :func:`psi_model` (a sub-model sufficient for the
    Theorem 3 lower bound) instead.
    """
    if n > _MAX_EXHAUSTIVE_N:
        raise ModelError(
            f"enumerating all rooted graphs is only supported for n <= {_MAX_EXHAUSTIVE_N}; "
            "use psi_model(n) for the lower-bound sub-model"
        )
    graphs = [g for g in _all_graphs(n) if is_rooted(g)]
    return NetworkModel(graphs, name=f"all-rooted(n={n})")


def all_nonsplit_model(n: int) -> NetworkModel:
    """The model of *all* non-split graphs on ``n`` agents (exhaustive; ``n <= 4``)."""
    if n > _MAX_EXHAUSTIVE_N:
        raise ModelError(
            f"enumerating all non-split graphs is only supported for n <= {_MAX_EXHAUSTIVE_N}; "
            "use deaf_model(n=n) for the lower-bound sub-model"
        )
    graphs = [g for g in _all_graphs(n) if is_nonsplit(g)]
    return NetworkModel(graphs, name=f"all-nonsplit(n={n})")


def crash_model(n: int, f: int, limit: Optional[int] = None) -> NetworkModel:
    """The asynchronous-round crash model ``N_A`` of Section 8.1.

    Contains every graph in which each agent has at least ``n - f``
    in-neighbors.  The family is exponentially large; ``limit`` truncates the
    enumeration (the truncated model is then a *sub-model* of ``N_A``, which
    by Lemma 3 can only lower measured contraction rates).
    """
    graphs = list(crash_tolerant_graphs(n, f, limit=limit))
    suffix = "" if limit is None else f", first {len(graphs)}"
    return NetworkModel(graphs, name=f"N_A(n={n}, f={f}{suffix})")
