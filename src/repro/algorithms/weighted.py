"""General weighted (convex-combination) averaging algorithms.

These cover the "convex combination algorithms where agents update their
``y_i`` via a weighted average of the received values, where weights only
depend on the currently received values" of Section 2.2.  Two concrete
instantiations are provided:

* :class:`SelfWeightedAveraging` — keep a fixed weight on the agent's own
  value and distribute the rest uniformly over the other received values
  (covers both the equal-neighbor rule and "sluggish" agents).
* :class:`CallableWeightAveraging` — arbitrary user-supplied weight function,
  validated to produce convex weights.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.algorithms.base import ConvexCombinationAlgorithm, receive_mask
from repro.exceptions import AlgorithmError

#: A weight function maps (agent_id, received values) to per-sender weights.
WeightFunction = Callable[[int, Dict[int, np.ndarray]], Dict[int, float]]

#: A matrix weight function maps (adjacency, values, round_number) to a
#: ``(..., n, n)`` weight tensor with ``W[..., j, i]`` the weight receiver
#: ``j`` places on sender ``i`` (rows are convex, zero outside the receive
#: mask).  Supplying one enables the vectorized fast path for
#: :class:`CallableWeightAveraging`.
MatrixWeightFunction = Callable[[np.ndarray, np.ndarray, int], np.ndarray]


class SelfWeightedAveraging(ConvexCombinationAlgorithm):
    """Weighted averaging with a fixed weight on the agent's own value.

    The new value is ``w * y_i + (1 - w) * mean(other received values)``;
    when no other value is received the value is unchanged.

    Parameters
    ----------
    self_weight:
        The weight ``w`` kept on the agent's own value, in ``[0, 1]``.
    """

    def __init__(self, self_weight: float = 0.5, validate: bool = False) -> None:
        super().__init__(validate=validate)
        if not 0.0 <= self_weight <= 1.0:
            raise AlgorithmError(f"self_weight must be in [0, 1], got {self_weight}")
        self._self_weight = self_weight

    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        own = received[agent_id]
        others = [value for sender, value in received.items() if sender != agent_id]
        if not others:
            return own
        other_mean = np.vstack(others).mean(axis=0)
        return self._self_weight * own + (1.0 - self._self_weight) * other_mean

    def combine_all(
        self, adjacency: np.ndarray, values: np.ndarray, round_number: int
    ) -> Optional[np.ndarray]:
        mask = receive_mask(adjacency).astype(float)
        other_counts = mask.sum(axis=-1) - 1.0  # the self-loop is always present
        other_totals = mask @ values - values
        other_mean = other_totals / np.where(other_counts > 0, other_counts, 1.0)[..., None]
        mixed = self._self_weight * values + (1.0 - self._self_weight) * other_mean
        return np.where((other_counts > 0)[..., None], mixed, values)

    def round_invariant(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return f"self-weighted({self._self_weight:g})"


class CallableWeightAveraging(ConvexCombinationAlgorithm):
    """Averaging with arbitrary per-round convex weights supplied by a callable.

    The callable receives the agent id and the received values and must return
    a mapping from sender ids to non-negative weights summing to 1 (weights for
    senders not present in the mapping default to 0).

    Passing a ``matrix_weight_function`` additionally enables the vectorized
    fast path: it must be the whole-matrix counterpart of ``weight_function``,
    mapping ``(adjacency, values, round_number)`` to a ``(..., n, n)`` weight
    tensor with convex rows that are zero outside the receive mask.
    """

    def __init__(self, weight_function: WeightFunction, label: str = "callable-weights",
                 validate: bool = False,
                 matrix_weight_function: Optional[MatrixWeightFunction] = None) -> None:
        super().__init__(validate=validate)
        self._weight_function = weight_function
        self._matrix_weight_function = matrix_weight_function
        self._label = label

    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        weights = self._weight_function(agent_id, received)
        total = float(sum(weights.values()))
        if not np.isclose(total, 1.0, atol=1e-9):
            raise AlgorithmError(f"weights must sum to 1, got {total}")
        if any(w < -1e-12 for w in weights.values()):
            raise AlgorithmError("weights must be non-negative")
        unknown = set(weights) - set(received)
        if unknown:
            raise AlgorithmError(f"weights refer to senders that were not received: {sorted(unknown)}")
        result = np.zeros_like(received[agent_id], dtype=float)
        for sender, weight in weights.items():
            result = result + weight * received[sender]
        return result

    def supports_batch(self) -> bool:
        return self._matrix_weight_function is not None

    def combine_all(
        self, adjacency: np.ndarray, values: np.ndarray, round_number: int
    ) -> Optional[np.ndarray]:
        if self._matrix_weight_function is None:
            return None
        weights = np.asarray(self._matrix_weight_function(adjacency, values, round_number), dtype=float)
        if np.any(weights < -1e-12):
            raise AlgorithmError("matrix weights must be non-negative")
        if not np.allclose(weights.sum(axis=-1), 1.0, atol=1e-9):
            raise AlgorithmError("matrix weight rows must sum to 1")
        if np.any(np.abs(np.where(receive_mask(adjacency), 0.0, weights)) > 1e-12):
            raise AlgorithmError("matrix weights refer to senders outside the receive mask")
        return weights @ values

    @property
    def name(self) -> str:
        return self._label
