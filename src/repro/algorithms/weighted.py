"""General weighted (convex-combination) averaging algorithms.

These cover the "convex combination algorithms where agents update their
``y_i`` via a weighted average of the received values, where weights only
depend on the currently received values" of Section 2.2.  Two concrete
instantiations are provided:

* :class:`SelfWeightedAveraging` — keep a fixed weight on the agent's own
  value and distribute the rest uniformly over the other received values
  (covers both the equal-neighbor rule and "sluggish" agents).
* :class:`CallableWeightAveraging` — arbitrary user-supplied weight function,
  validated to produce convex weights.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.algorithms.base import ConvexCombinationAlgorithm
from repro.exceptions import AlgorithmError

#: A weight function maps (agent_id, received values) to per-sender weights.
WeightFunction = Callable[[int, Dict[int, np.ndarray]], Dict[int, float]]


class SelfWeightedAveraging(ConvexCombinationAlgorithm):
    """Weighted averaging with a fixed weight on the agent's own value.

    The new value is ``w * y_i + (1 - w) * mean(other received values)``;
    when no other value is received the value is unchanged.

    Parameters
    ----------
    self_weight:
        The weight ``w`` kept on the agent's own value, in ``[0, 1]``.
    """

    def __init__(self, self_weight: float = 0.5, validate: bool = False) -> None:
        super().__init__(validate=validate)
        if not 0.0 <= self_weight <= 1.0:
            raise AlgorithmError(f"self_weight must be in [0, 1], got {self_weight}")
        self._self_weight = self_weight

    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        own = received[agent_id]
        others = [value for sender, value in received.items() if sender != agent_id]
        if not others:
            return own
        other_mean = np.vstack(others).mean(axis=0)
        return self._self_weight * own + (1.0 - self._self_weight) * other_mean

    @property
    def name(self) -> str:
        return f"self-weighted({self._self_weight:g})"


class CallableWeightAveraging(ConvexCombinationAlgorithm):
    """Averaging with arbitrary per-round convex weights supplied by a callable.

    The callable receives the agent id and the received values and must return
    a mapping from sender ids to non-negative weights summing to 1 (weights for
    senders not present in the mapping default to 0).
    """

    def __init__(self, weight_function: WeightFunction, label: str = "callable-weights",
                 validate: bool = False) -> None:
        super().__init__(validate=validate)
        self._weight_function = weight_function
        self._label = label

    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        weights = self._weight_function(agent_id, received)
        total = float(sum(weights.values()))
        if not np.isclose(total, 1.0, atol=1e-9):
            raise AlgorithmError(f"weights must sum to 1, got {total}")
        if any(w < -1e-12 for w in weights.values()):
            raise AlgorithmError("weights must be non-negative")
        unknown = set(weights) - set(received)
        if unknown:
            raise AlgorithmError(f"weights refer to senders that were not received: {sorted(unknown)}")
        result = np.zeros_like(received[agent_id], dtype=float)
        for sender, weight in weights.items():
            result = result + weight * received[sender]
        return result

    @property
    def name(self) -> str:
        return self._label
