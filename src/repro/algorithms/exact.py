"""Exact consensus by flooding, and its induced asymptotic consensus algorithm.

Theorem 4's forward direction turns an exact consensus algorithm into an
asymptotic one: output the initial value until the decision, then output the
decision forever.  :class:`FloodingExactConsensus` implements the classical
flood-and-take-the-minimum algorithm in exactly this "asymptotic" form: its
output is the agent's initial value until the flooding horizon is reached and
the (lexicographically) smallest known initial value afterwards.

Flooding solves exact consensus whenever, within the flooding horizon, all
agents are guaranteed to have heard from the same set of agents — e.g. for a
constant strongly connected graph with a horizon of at least ``n - 1``
rounds, or for any network model with a common root present in every graph
and a sufficiently long horizon.  The helper
:func:`flooding_horizon_sufficient` checks the constant-graph condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.algorithms.base import Algorithm
from repro.exceptions import AlgorithmError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.products import power
from repro.graphs.properties import is_complete
from repro.types import as_value


@dataclass(frozen=True)
class FloodingState:
    """State of the flooding algorithm: everything the agent has heard so far."""

    initial_value: np.ndarray
    known: Tuple[Tuple[int, Tuple[float, ...]], ...]
    decided_value: np.ndarray | None
    rounds_elapsed: int


class FloodingExactConsensus(Algorithm):
    """Flood (agent, initial value) pairs for a fixed horizon, then decide the minimum.

    Parameters
    ----------
    horizon:
        Number of flooding rounds before deciding.  After ``horizon`` rounds
        the agent irrevocably outputs the smallest initial value it knows
        (smallest in lexicographic order for ``d > 1``).
    """

    def __init__(self, horizon: int) -> None:
        if horizon < 1:
            raise AlgorithmError(f"the flooding horizon must be >= 1, got {horizon}")
        self._horizon = horizon

    @property
    def horizon(self) -> int:
        """The number of flooding rounds before the decision."""
        return self._horizon

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> FloodingState:
        value = as_value(initial_value)
        return FloodingState(
            initial_value=value,
            known=((agent_id, tuple(value.tolist())),),
            decided_value=None,
            rounds_elapsed=0,
        )

    def message(self, agent_id: int, state: FloodingState) -> Tuple[Tuple[int, Tuple[float, ...]], ...]:
        return state.known

    def transition(
        self,
        agent_id: int,
        state: FloodingState,
        received: Mapping[int, Tuple[Tuple[int, Tuple[float, ...]], ...]],
        round_number: int,
    ) -> FloodingState:
        merged: Dict[int, Tuple[float, ...]] = dict(state.known)
        for entries in received.values():
            for origin, value in entries:
                merged[origin] = value
        known = tuple(sorted(merged.items()))
        rounds_elapsed = state.rounds_elapsed + 1
        decided = state.decided_value
        if decided is None and rounds_elapsed >= self._horizon:
            smallest = min(value for _origin, value in known)
            decided = np.array(smallest, dtype=float)
        return FloodingState(
            initial_value=state.initial_value,
            known=known,
            decided_value=decided,
            rounds_elapsed=rounds_elapsed,
        )

    def output(self, agent_id: int, state: FloodingState) -> np.ndarray:
        if state.decided_value is not None:
            return state.decided_value
        return state.initial_value

    def has_decided(self, state: FloodingState) -> bool:
        """Whether the agent has already decided."""
        return state.decided_value is not None

    @property
    def name(self) -> str:
        return f"flooding-exact(horizon={self._horizon})"


def flooding_horizon_sufficient(graph: CommunicationGraph, horizon: int) -> bool:
    """Whether ``horizon`` rounds of the constant pattern ``graph`` guarantee agreement.

    Flooding over ``horizon`` repetitions of ``graph`` leaves all agents with
    the same knowledge iff the ``horizon``-fold product of ``graph`` with
    itself is the complete graph.
    """
    return is_complete(power(graph, horizon))
