"""Approximate consensus: deciding versions of asymptotic consensus algorithms.

Section 9 studies the approximate consensus problem: each agent must
irrevocably decide once, decisions must be ε-close to each other
(ε-Agreement) and must lie in the convex hull of the initial values
(Validity).  The deciding versions of the paper's averaging algorithms simply
run the asymptotic algorithm and decide on the current output after a
precomputed number of rounds; the optimal round counts are the decision-time
lower bounds of Theorems 8–10 (computed in
:mod:`repro.core.decision_times`).

:class:`DecidingAlgorithm` wraps any :class:`~repro.algorithms.base.Algorithm`
with such a fixed decision round, and exposes accessors so experiments can
extract decision values and decision rounds from executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional

import numpy as np

from repro.algorithms.base import Algorithm
from repro.exceptions import AlgorithmError
from repro.execution.execution import Execution


@dataclass(frozen=True)
class DecidingState:
    """State of a deciding wrapper: the inner state plus the decision (if any)."""

    inner: Any
    decision: Optional[np.ndarray]
    decision_round: Optional[int]


class DecidingAlgorithm(Algorithm):
    """Run an asymptotic consensus algorithm and decide at a fixed round.

    Parameters
    ----------
    inner:
        The asymptotic consensus algorithm to run.
    decision_round:
        The round at whose end every agent decides on its current output.
        For the paper's algorithms, choosing the matching Theorem 8–10 bound
        yields ε-Agreement for the targeted ``Δ`` and ``ε``.
    """

    def __init__(self, inner: Algorithm, decision_round: int) -> None:
        if decision_round < 0:
            raise AlgorithmError(f"decision_round must be non-negative, got {decision_round}")
        self._inner = inner
        self._decision_round = decision_round

    @property
    def inner(self) -> Algorithm:
        """The wrapped asymptotic consensus algorithm."""
        return self._inner

    @property
    def decision_round(self) -> int:
        """The round at whose end agents decide."""
        return self._decision_round

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> DecidingState:
        inner_state = self._inner.initial_state(agent_id, initial_value, n)
        decision = None
        decision_round = None
        if self._decision_round == 0:
            decision = np.asarray(self._inner.output(agent_id, inner_state), dtype=float)
            decision_round = 0
        return DecidingState(inner=inner_state, decision=decision, decision_round=decision_round)

    def message(self, agent_id: int, state: DecidingState) -> Any:
        return self._inner.message(agent_id, state.inner)

    def transition(
        self, agent_id: int, state: DecidingState, received: Mapping[int, Any], round_number: int
    ) -> DecidingState:
        new_inner = self._inner.transition(agent_id, state.inner, received, round_number)
        decision = state.decision
        decision_round = state.decision_round
        if decision is None and round_number >= self._decision_round:
            decision = np.asarray(self._inner.output(agent_id, new_inner), dtype=float)
            decision_round = round_number
        return DecidingState(inner=new_inner, decision=decision, decision_round=decision_round)

    def output(self, agent_id: int, state: DecidingState) -> np.ndarray:
        if state.decision is not None:
            return state.decision
        return np.asarray(self._inner.output(agent_id, state.inner), dtype=float)

    # ------------------------------------------------------------------ #
    # Accessors for experiments
    # ------------------------------------------------------------------ #

    def has_decided(self, state: DecidingState) -> bool:
        """Whether the agent has already decided in ``state``."""
        return state.decision is not None

    def decision_of(self, state: DecidingState) -> Optional[np.ndarray]:
        """The decision value recorded in ``state`` (None if undecided)."""
        return state.decision

    @property
    def name(self) -> str:
        return f"deciding({self._inner.name}@{self._decision_round})"


def decisions_of_execution(execution: Execution) -> List[Optional[np.ndarray]]:
    """Extract per-agent decision values from the final configuration of an execution.

    The execution must have been produced by a :class:`DecidingAlgorithm`.
    """
    final = execution.final_configuration
    decisions: List[Optional[np.ndarray]] = []
    for state in final.states:
        if not isinstance(state, DecidingState):
            raise AlgorithmError(
                "decisions_of_execution expects an execution of a DecidingAlgorithm"
            )
        decisions.append(state.decision)
    return decisions


def epsilon_agreement_holds(execution: Execution, epsilon: float) -> bool:
    """Whether all pairs of recorded decisions are within ``epsilon`` of each other."""
    decided = [d for d in decisions_of_execution(execution) if d is not None]
    for i, a in enumerate(decided):
        for b in decided[i + 1 :]:
            if float(np.linalg.norm(a - b)) > epsilon + 1e-12:
                return False
    return True


def all_agents_decided(execution: Execution) -> bool:
    """Whether every agent recorded a decision (Termination)."""
    return all(d is not None for d in decisions_of_execution(execution))
