"""Approximate consensus: deciding versions of asymptotic consensus algorithms.

Section 9 studies the approximate consensus problem: each agent must
irrevocably decide once, decisions must be ε-close to each other
(ε-Agreement) and must lie in the convex hull of the initial values
(Validity).  The deciding versions of the paper's averaging algorithms simply
run the asymptotic algorithm and decide on the current output after a
precomputed number of rounds; the optimal round counts are the decision-time
lower bounds of Theorems 8–10 (computed in
:mod:`repro.core.decision_times`).

:class:`DecidingAlgorithm` wraps any :class:`~repro.algorithms.base.Algorithm`
with such a fixed decision round, and exposes accessors so experiments can
extract decision values and decision rounds from executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import Algorithm
from repro.exceptions import AlgorithmError
from repro.execution.execution import Execution


@dataclass(frozen=True)
class DecidingState:
    """State of a deciding wrapper: the inner state plus the decision (if any)."""

    inner: Any
    decision: Optional[np.ndarray]
    decision_round: Optional[int]


@dataclass(frozen=True)
class DecidingBatchState:
    """Stacked deciding state: the inner batch state plus frozen decisions.

    ``decision`` is an ``(..., n, d)`` float tensor whose entries are the
    frozen decision values where ``decided`` is true and stale placeholders
    (never read — :meth:`DecidingAlgorithm.batch_outputs` masks them out)
    elsewhere; ``decided`` is ``(..., n)`` boolean and ``decision_round``
    ``(..., n)`` integer with ``-1`` marking undecided agents.
    """

    inner: Any
    decision: np.ndarray
    decided: np.ndarray
    decision_round: np.ndarray


class DecidingAlgorithm(Algorithm):
    """Run an asymptotic consensus algorithm and decide at a fixed round.

    Parameters
    ----------
    inner:
        The asymptotic consensus algorithm to run.
    decision_round:
        The round at whose end every agent decides on its current output.
        For the paper's algorithms, choosing the matching Theorem 8–10 bound
        yields ε-Agreement for the targeted ``Δ`` and ``ε``.
    """

    def __init__(self, inner: Algorithm, decision_round: int) -> None:
        if decision_round < 0:
            raise AlgorithmError(f"decision_round must be non-negative, got {decision_round}")
        self._inner = inner
        self._decision_round = decision_round

    @property
    def inner(self) -> Algorithm:
        """The wrapped asymptotic consensus algorithm."""
        return self._inner

    @property
    def decision_round(self) -> int:
        """The round at whose end agents decide."""
        return self._decision_round

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> DecidingState:
        inner_state = self._inner.initial_state(agent_id, initial_value, n)
        decision = None
        decision_round = None
        if self._decision_round == 0:
            decision = np.asarray(self._inner.output(agent_id, inner_state), dtype=float)
            decision_round = 0
        return DecidingState(inner=inner_state, decision=decision, decision_round=decision_round)

    def message(self, agent_id: int, state: DecidingState) -> Any:
        return self._inner.message(agent_id, state.inner)

    def transition(
        self, agent_id: int, state: DecidingState, received: Mapping[int, Any], round_number: int
    ) -> DecidingState:
        new_inner = self._inner.transition(agent_id, state.inner, received, round_number)
        decision = state.decision
        decision_round = state.decision_round
        if decision is None and round_number >= self._decision_round:
            decision = np.asarray(self._inner.output(agent_id, new_inner), dtype=float)
            decision_round = round_number
        return DecidingState(inner=new_inner, decision=decision, decision_round=decision_round)

    def output(self, agent_id: int, state: DecidingState) -> np.ndarray:
        if state.decision is not None:
            return state.decision
        return np.asarray(self._inner.output(agent_id, state.inner), dtype=float)

    # ------------------------------------------------------------------ #
    # Vectorized fast path
    # ------------------------------------------------------------------ #

    def supports_batch(self) -> bool:
        return self._inner.supports_batch()

    def batch_initial(self, values: np.ndarray) -> DecidingBatchState:
        inner_state = self._inner.batch_initial(values)
        outputs = np.asarray(self._inner.batch_outputs(inner_state), dtype=float)
        lead = outputs.shape[:-1]
        if self._decision_round == 0:
            return DecidingBatchState(
                inner=inner_state,
                decision=outputs.copy(),
                decided=np.ones(lead, dtype=bool),
                decision_round=np.zeros(lead, dtype=np.int64),
            )
        return DecidingBatchState(
            inner=inner_state,
            decision=outputs.copy(),
            decided=np.zeros(lead, dtype=bool),
            decision_round=np.full(lead, -1, dtype=np.int64),
        )

    def batch_transition(
        self, batch_state: DecidingBatchState, adjacency: np.ndarray, round_number: int
    ) -> DecidingBatchState:
        new_inner = self._inner.batch_transition(batch_state.inner, adjacency, round_number)
        if round_number < self._decision_round or bool(batch_state.decided.all()):
            return DecidingBatchState(
                inner=new_inner,
                decision=batch_state.decision,
                decided=batch_state.decided,
                decision_round=batch_state.decision_round,
            )
        outputs = np.asarray(self._inner.batch_outputs(new_inner), dtype=float)
        newly = ~batch_state.decided
        decision = np.where(newly[..., None], outputs, batch_state.decision)
        decision_round = np.where(
            newly, np.int64(round_number), batch_state.decision_round
        )
        decided = np.ones_like(batch_state.decided)
        return DecidingBatchState(
            inner=new_inner,
            decision=decision,
            decided=decided,
            decision_round=decision_round,
        )

    def batch_outputs(self, batch_state: DecidingBatchState) -> np.ndarray:
        inner_outputs = np.asarray(
            self._inner.batch_outputs(batch_state.inner), dtype=float
        )
        if not batch_state.decided.any():
            return inner_outputs
        return np.where(
            batch_state.decided[..., None], batch_state.decision, inner_outputs
        )

    def batch_map(self, batch_state: DecidingBatchState, fn) -> DecidingBatchState:
        return DecidingBatchState(
            inner=self._inner.batch_map(batch_state.inner, fn),
            decision=fn(batch_state.decision),
            decided=fn(batch_state.decided),
            decision_round=fn(batch_state.decision_round),
        )

    def batch_states(self, batch_state: DecidingBatchState) -> Tuple[DecidingState, ...]:
        inner_states = self._inner.batch_states(batch_state.inner)
        states = []
        for agent, inner_state in enumerate(inner_states):
            if bool(batch_state.decided[agent]):
                decision = np.array(batch_state.decision[agent], dtype=float)
                decision_round = int(batch_state.decision_round[agent])
            else:
                decision = None
                decision_round = None
            states.append(
                DecidingState(
                    inner=inner_state, decision=decision, decision_round=decision_round
                )
            )
        return tuple(states)

    def supports_batch_state(self) -> bool:
        return self._inner.supports_batch_state()

    def batch_state_from_states(
        self, states: Sequence[DecidingState]
    ) -> DecidingBatchState:
        states = tuple(states)
        if not states:
            raise AlgorithmError("cannot restore a batch state from zero agent states")
        inner_state = self._inner.batch_state_from_states(
            tuple(state.inner for state in states)
        )
        decided = np.array([state.decision is not None for state in states], dtype=bool)
        decision = np.stack(
            [
                np.asarray(state.decision, dtype=float)
                if state.decision is not None
                else np.asarray(self._inner.output(agent, state.inner), dtype=float)
                for agent, state in enumerate(states)
            ]
        )
        decision_round = np.array(
            [
                state.decision_round if state.decision_round is not None else -1
                for state in states
            ],
            dtype=np.int64,
        )
        return DecidingBatchState(
            inner=inner_state,
            decision=decision,
            decided=decided,
            decision_round=decision_round,
        )

    def batch_state_fixpoint(
        self, previous: DecidingBatchState, new: DecidingBatchState
    ) -> Optional[np.ndarray]:
        """Scenarios whose deciding-wrapper outputs provably never change.

        A scenario whose agents have *all* decided outputs only its frozen
        decision values forever — sound regardless of the inner dynamics.
        Otherwise the claim defers to the inner algorithm: frozen entries
        cannot change, and if the inner outputs are fixed bit-for-bit then
        any future decision freezes exactly the value already shown.
        """
        all_decided = np.asarray(new.decided).all(axis=-1)
        inner_fixed = self._inner.batch_state_fixpoint(previous.inner, new.inner)
        if inner_fixed is None:
            return all_decided
        return np.asarray(inner_fixed) | all_decided

    # ------------------------------------------------------------------ #
    # Accessors for experiments
    # ------------------------------------------------------------------ #

    def has_decided(self, state: DecidingState) -> bool:
        """Whether the agent has already decided in ``state``."""
        return state.decision is not None

    def decision_of(self, state: DecidingState) -> Optional[np.ndarray]:
        """The decision value recorded in ``state`` (None if undecided)."""
        return state.decision

    @property
    def name(self) -> str:
        return f"deciding({self._inner.name}@{self._decision_round})"


def decisions_of_execution(execution: Execution) -> List[Optional[np.ndarray]]:
    """Extract per-agent decision values from the final configuration of an execution.

    The execution must have been produced by a :class:`DecidingAlgorithm`.
    """
    final = execution.final_configuration
    decisions: List[Optional[np.ndarray]] = []
    for state in final.states:
        if not isinstance(state, DecidingState):
            raise AlgorithmError(
                "decisions_of_execution expects an execution of a DecidingAlgorithm"
            )
        decisions.append(state.decision)
    return decisions


def epsilon_agreement_holds(execution: Execution, epsilon: float) -> bool:
    """Whether all pairs of recorded decisions are within ``epsilon`` of each other."""
    decided = [d for d in decisions_of_execution(execution) if d is not None]
    for i, a in enumerate(decided):
        for b in decided[i + 1 :]:
            if float(np.linalg.norm(a - b)) > epsilon + 1e-12:
                return False
    return True


def all_agents_decided(execution: Execution) -> bool:
    """Whether every agent recorded a decision (Termination)."""
    return all(d is not None for d in decisions_of_execution(execution))
