"""Algorithms for asymptotic, approximate and exact consensus.

The package contains every algorithm the paper uses as an upper bound,
baseline or example:

* :class:`~repro.algorithms.two_agent.TwoAgentThirdsAlgorithm` — Algorithm 1,
  optimal for ``n = 2`` (contraction rate 1/3).
* :class:`~repro.algorithms.midpoint.MidpointAlgorithm` — Algorithm 2,
  optimal for non-split models (contraction rate 1/2).
* :class:`~repro.algorithms.amortized_midpoint.AmortizedMidpointAlgorithm` —
  asymptotically optimal for rooted models (contraction rate ``2^(-1/(n-1))``).
* :class:`~repro.algorithms.mean.MeanAlgorithm` and
  :mod:`~repro.algorithms.weighted` — classical averaging baselines.
* :class:`~repro.algorithms.mass_splitting.MassSplittingAlgorithm` — the
  non-convex-combination example from the introduction.
* :class:`~repro.algorithms.hegselmann_krause.HegselmannKrauseAlgorithm` —
  bounded-confidence opinion dynamics (application example).
* :class:`~repro.algorithms.exact.FloodingExactConsensus` — exact consensus by
  flooding, as used in the Theorem 4 construction.
* :class:`~repro.algorithms.approximate.DecidingAlgorithm` — deciding wrappers
  turning asymptotic algorithms into approximate consensus algorithms.
"""

from repro.algorithms.amortized_midpoint import AmortizedMidpointAlgorithm, AmortizedMidpointState
from repro.algorithms.approximate import (
    DecidingAlgorithm,
    DecidingState,
    all_agents_decided,
    decisions_of_execution,
    epsilon_agreement_holds,
)
from repro.algorithms.base import (
    Algorithm,
    ConvexCombinationAlgorithm,
    get_masked_reduction_chunks,
    get_masked_reduction_impl,
    masked_extreme_pair,
    masked_max,
    masked_min,
    masked_min_max,
    masked_reduction_chunks,
    masked_reduction_impl,
    set_masked_reduction_chunks,
    set_masked_reduction_impl,
)
from repro.algorithms.exact import FloodingExactConsensus, FloodingState, flooding_horizon_sufficient
from repro.algorithms.hegselmann_krause import HegselmannKrauseAlgorithm
from repro.algorithms.mass_splitting import MassSplittingAlgorithm
from repro.algorithms.mean import MeanAlgorithm
from repro.algorithms.midpoint import MidpointAlgorithm
from repro.algorithms.two_agent import TwoAgentThirdsAlgorithm
from repro.algorithms.weighted import CallableWeightAveraging, SelfWeightedAveraging

__all__ = [
    "Algorithm",
    "ConvexCombinationAlgorithm",
    "masked_min",
    "masked_max",
    "masked_min_max",
    "masked_extreme_pair",
    "set_masked_reduction_chunks",
    "get_masked_reduction_chunks",
    "masked_reduction_chunks",
    "set_masked_reduction_impl",
    "get_masked_reduction_impl",
    "masked_reduction_impl",
    "MidpointAlgorithm",
    "AmortizedMidpointAlgorithm",
    "AmortizedMidpointState",
    "TwoAgentThirdsAlgorithm",
    "MeanAlgorithm",
    "SelfWeightedAveraging",
    "CallableWeightAveraging",
    "MassSplittingAlgorithm",
    "HegselmannKrauseAlgorithm",
    "FloodingExactConsensus",
    "FloodingState",
    "flooding_horizon_sufficient",
    "DecidingAlgorithm",
    "DecidingState",
    "decisions_of_execution",
    "epsilon_agreement_holds",
    "all_agents_decided",
]
