"""Hegselmann–Krause bounded-confidence opinion dynamics.

The introduction lists opinion dynamics [Hegselmann & Krause, 2002] among the
natural systems analyzed with asymptotic-consensus tools.  In the HK model an
agent only averages the opinions it received that lie within its confidence
radius; the effective communication graph is therefore *state dependent*, and
agreement of all agents is not guaranteed (opinions may split into clusters).

The class is a convex-combination algorithm in the sense of Section 2.2 (the
new opinion is an average of a subset of received values that always contains
the agent's own), so Validity and the monotonicity of the value range hold; it
is used by the ``examples/opinion_dynamics.py`` application and by tests that
exercise the engine with state-dependent behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import ConvexCombinationAlgorithm, receive_mask
from repro.exceptions import AlgorithmError


class HegselmannKrauseAlgorithm(ConvexCombinationAlgorithm):
    """Average only the received opinions within the agent's confidence radius.

    Parameters
    ----------
    confidence:
        The confidence radius ``r``; received values farther than ``r`` (in
        Euclidean norm) from the agent's own value are ignored.
    """

    def __init__(self, confidence: float, validate: bool = False) -> None:
        super().__init__(validate=validate)
        if confidence < 0:
            raise AlgorithmError(f"confidence radius must be non-negative, got {confidence}")
        self._confidence = confidence

    @property
    def confidence(self) -> float:
        """The confidence radius."""
        return self._confidence

    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        own = received[agent_id]
        trusted = [
            value
            for value in received.values()
            if float(np.linalg.norm(value - own)) <= self._confidence
        ]
        return np.vstack(trusted).mean(axis=0)

    def combine_all(
        self, adjacency: np.ndarray, values: np.ndarray, round_number: int
    ) -> Optional[np.ndarray]:
        # differences[..., j, i] = y_i - y_j: receiver j's view of sender i.
        differences = values[..., None, :, :] - values[..., :, None, :]
        distances = np.sqrt((differences * differences).sum(axis=-1))
        trusted = receive_mask(adjacency) & (distances <= self._confidence)
        weights = trusted.astype(float)
        counts = weights.sum(axis=-1)  # >= 1: the self-loop is always trusted
        return (weights @ values) / counts[..., None]

    def round_invariant(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return f"hegselmann-krause(r={self._confidence:g})"
