"""The mass-splitting algorithm: a *non*-convex-combination example.

The introduction of the paper motivates why the lower bounds must cover
algorithms whose outputs can leave the convex hull of received values.  Its
example: "each agent sends an equal fraction of its current output value to
all out-neighbors and sets its output to the sum of values received in the
current round."  The update is ``y(t+1) = Mᵀ y(t)`` where ``M`` is the
row-stochastic mass-splitting matrix of the fixed communication graph; it is
not a convex combination algorithm because an agent's new output (a *sum* of
shares) can lie outside the convex hull of the values of its in-neighbors.

The iteration conserves total mass and converges (for a strongly connected
graph with self-loops) to ``v_i · Σ_j y_j(0)`` per agent, where ``v`` is the
Perron vector of ``Mᵀ``.  All agents reach a *common* value — i.e. the
algorithm solves asymptotic consensus — exactly when ``v`` is uniform, which
happens iff ``M`` is doubly stochastic (e.g. the complete graph, directed
cycles, or any graph whose incoming shares sum to 1 at every agent).  The
class exposes :meth:`MassSplittingAlgorithm.solves_consensus` so callers can
check this before relying on agreement.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.algorithms.base import Algorithm
from repro.exceptions import AlgorithmError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.properties import is_strongly_connected
from repro.types import as_value


class MassSplittingAlgorithm(Algorithm):
    """Mass splitting on a fixed strongly connected graph (``y(t+1) = Mᵀ y(t)``).

    Parameters
    ----------
    graph:
        The fixed communication graph the system will use every round.  Must
        be strongly connected (so the iteration matrix is primitive thanks to
        the self-loops).
    """

    def __init__(self, graph: CommunicationGraph) -> None:
        if not is_strongly_connected(graph):
            raise AlgorithmError(
                "MassSplittingAlgorithm requires a strongly connected fixed graph"
            )
        self._graph = graph

    @property
    def graph(self) -> CommunicationGraph:
        """The fixed communication graph the algorithm was built for."""
        return self._graph

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> np.ndarray:
        if n != self._graph.n:
            raise AlgorithmError(
                f"algorithm was built for {self._graph.n} agents but the system has {n}"
            )
        return as_value(initial_value)

    def message(self, agent_id: int, state: np.ndarray) -> np.ndarray:
        out_degree = self._graph.out_degree(agent_id)
        return state / float(out_degree)

    def transition(
        self, agent_id: int, state: np.ndarray, received: Mapping[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        expected = self._graph.in_neighbors(agent_id)
        if set(received) != set(expected):
            raise AlgorithmError(
                "MassSplittingAlgorithm must be run with its fixed graph every round: "
                f"agent {agent_id} expected messages from {sorted(expected)}, got {sorted(received)}"
            )
        return np.sum(np.vstack(list(received.values())), axis=0)

    def output(self, agent_id: int, state: np.ndarray) -> np.ndarray:
        return state

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #

    def splitting_matrix(self) -> np.ndarray:
        """The row-stochastic matrix ``M`` with ``M[i, j]`` the share sent by ``i`` to ``j``."""
        n = self._graph.n
        matrix = np.zeros((n, n))
        for i in range(n):
            share = 1.0 / self._graph.out_degree(i)
            for j in self._graph.out_neighbors(i):
                matrix[i, j] = share
        return matrix

    def is_doubly_stochastic(self, tol: float = 1e-9) -> bool:
        """Whether the splitting matrix is doubly stochastic (columns also sum to 1)."""
        matrix = self.splitting_matrix()
        return bool(np.allclose(matrix.sum(axis=0), 1.0, atol=tol))

    def solves_consensus(self) -> bool:
        """Whether all agents converge to a *common* limit on this graph.

        True exactly when the splitting matrix is doubly stochastic; the
        common limit is then the average of the initial values.
        """
        return self.is_doubly_stochastic()

    def limit_profile(self, initial_values: np.ndarray) -> np.ndarray:
        """The per-agent limits ``lim_t y_i(t)`` for the given initial values.

        Computed from the Perron vector ``v`` of ``Mᵀ``: agent ``i`` converges
        to ``v_i · Σ_j y_j(0)`` (coordinate-wise for d > 1).
        """
        values = np.asarray(initial_values, dtype=float)
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        matrix_t = self.splitting_matrix().T
        # Power iteration for the Perron vector of the primitive column-stochastic matrix.
        vector = np.full(self._graph.n, 1.0 / self._graph.n)
        for _ in range(10_000):
            new_vector = matrix_t @ vector
            new_vector /= new_vector.sum()
            if np.allclose(new_vector, vector, atol=1e-14):
                vector = new_vector
                break
            vector = new_vector
        total = values.sum(axis=0)
        return np.outer(vector, total)

    @property
    def name(self) -> str:
        return "mass-splitting"
