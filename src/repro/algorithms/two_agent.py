"""Algorithm 1 of the paper: the optimal two-agent averaging algorithm.

Each round the agent broadcasts its value; if it receives the other agent's
value it moves to ``y_i/3 + 2*y_j/3``.  In the network model ``{H0, H1, H2}``
of all rooted two-agent graphs this achieves contraction rate exactly 1/3,
matching the Theorem 1 lower bound.

The intuition for the asymmetric weights: the adversary's best move is to let
exactly one agent hear the other (graphs ``H1``/``H2``); moving two thirds of
the way toward the heard value balances the progress made in the heard and
unheard directions, so that the worst-case per-round range contraction is 1/3
instead of the 1/2 obtained by the symmetric midpoint rule.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import ConvexCombinationAlgorithm, receive_mask
from repro.exceptions import AlgorithmError


class TwoAgentThirdsAlgorithm(ConvexCombinationAlgorithm):
    """The two-agent algorithm with update ``y_i <- y_i/3 + 2 y_j/3`` (Algorithm 1).

    Only defined for systems of ``n = 2`` agents.
    """

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> np.ndarray:
        if n != 2:
            raise AlgorithmError(
                f"TwoAgentThirdsAlgorithm is only defined for n = 2 agents, got n = {n}"
            )
        return super().initial_state(agent_id, initial_value, n)

    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        own = received[agent_id]
        others = [value for sender, value in received.items() if sender != agent_id]
        if not others:
            return own
        other = others[0]
        return own / 3.0 + 2.0 * other / 3.0

    def combine_all(
        self, adjacency: np.ndarray, values: np.ndarray, round_number: int
    ) -> Optional[np.ndarray]:
        if values.shape[-2] != 2:
            raise AlgorithmError(
                f"TwoAgentThirdsAlgorithm is only defined for n = 2 agents, got n = {values.shape[-2]}"
            )
        mask = receive_mask(adjacency)
        heard_other = mask.sum(axis=-1) > 1
        other_values = values[..., ::-1, :]  # at n = 2, the other agent's value
        moved = values / 3.0 + 2.0 * other_values / 3.0
        return np.where(heard_other[..., None], moved, values)

    def round_invariant(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return "two-agent-thirds"
