"""Algorithm interfaces for the round-based dynamic system model.

An algorithm (Section 2) is a deterministic local transition function: in
every round each agent sends a message to its out-neighbors, receives the
messages of its in-neighbors (always including itself, because communication
graphs have self-loops), and updates its state.  The agent's *output* ``y_i``
is a point of Euclidean d-space extracted from its state.

Two levels of generality are provided:

* :class:`Algorithm` — the fully general interface (full-information
  algorithms, algorithms with memory, algorithms whose outputs leave the
  convex hull of received values, deciding algorithms, ...).
* :class:`ConvexCombinationAlgorithm` — the memoryless averaging algorithms
  of Section 2.2: the state is just the output value, the message is the
  output value, and the new output must lie in the convex hull of the values
  received in the current round.  Subclasses only implement
  :meth:`ConvexCombinationAlgorithm.combine`.
"""

from __future__ import annotations

import math
import threading
import warnings
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import AlgorithmError, EnsembleShapeError
from repro.types import (
    as_value,
    pack_bool_rows,
    packed_first_last_true,
    packed_first_true,
    packed_last_true,
)

#: A chunk setting: "auto" (heuristic), "dense" (never chunk this axis), or a
#: positive block size.
ChunkSetting = Union[str, int]


class _ReductionSettings(threading.local):
    """Per-thread masked-reduction configuration.

    Each thread starts from the defaults; overrides applied in one thread
    (via the context managers or :class:`repro.config.EngineConfig`) never
    leak into another, so concurrent studies can run under different
    configurations.
    """

    def __init__(self) -> None:
        #: Chunking of the masked reductions, keyed by axis: "batch" chunks
        #: the leading (scenario) axis, "receivers" the receiver axis.
        self.chunks: Dict[str, ChunkSetting] = {"batch": "auto", "receivers": "auto"}
        #: Implementation selector for the *general* masked-reduction case
        #: (per-lead value tensors, where the shared-values sort-and-scan
        #: cannot fire): "auto" picks the packed-bit path for large d<=2
        #: stacks, "dense" never packs, "packed" always packs when applicable.
        self.impl: str = "auto"


_REDUCTION_SETTINGS = _ReductionSettings()

#: In "auto" mode, dense intermediates up to this many elements skip chunking
#: (1M float64 elements = 8 MiB); anything larger is computed in blocks whose
#: intermediate stays below this limit.
_AUTO_DENSE_ELEMENT_LIMIT = 1 << 20

#: Names whose deprecation warning has already fired (once per process).
_DEPRECATION_WARNED: set = set()


def _warn_deprecated_once(name: str, replacement: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _validate_chunk_setting(key: str, value: ChunkSetting) -> None:
    if isinstance(value, str):
        if value not in ("auto", "dense"):
            raise AlgorithmError(
                f"chunk setting for {key!r} must be 'auto', 'dense' or a positive int, got {value!r}"
            )
    elif (
        isinstance(value, bool)
        or not isinstance(value, (int, np.integer))
        or value < 1
    ):
        raise AlgorithmError(
            f"chunk setting for {key!r} must be 'auto', 'dense' or a positive int, got {value!r}"
        )


def _apply_masked_reduction_chunks(
    batch: ChunkSetting = "auto", receivers: ChunkSetting = "auto"
) -> None:
    """Validate and install a chunk configuration (no deprecation warning)."""
    for key, value in (("batch", batch), ("receivers", receivers)):
        _validate_chunk_setting(key, value)
    _REDUCTION_SETTINGS.chunks["batch"] = batch
    _REDUCTION_SETTINGS.chunks["receivers"] = receivers


def _apply_masked_reduction_impl(general: str = "auto") -> None:
    """Validate and install a reduction-impl selector (no deprecation warning)."""
    if general not in ("auto", "dense", "packed"):
        raise AlgorithmError(
            f"reduction impl must be 'auto', 'dense' or 'packed', got {general!r}"
        )
    _REDUCTION_SETTINGS.impl = general


def set_masked_reduction_chunks(
    batch: ChunkSetting = "auto", receivers: ChunkSetting = "auto"
) -> None:
    """Configure how :func:`masked_min`/:func:`masked_max` block their work.

    .. deprecated::
        Mutating the configuration in place is deprecated; use the
        exception-safe :func:`masked_reduction_chunks` context manager or a
        :class:`repro.config.EngineConfig` scope instead.

    Each axis accepts ``"auto"`` (chunk only when the dense ``(B, n, n, d)``
    intermediate would be large), ``"dense"`` (never chunk this axis), or a
    positive integer block size.  Chunked and dense evaluations are bit-for-bit
    identical; chunking only bounds peak memory to ``O(chunk · n · d)``.
    The configuration is thread-local.
    """
    _warn_deprecated_once(
        "set_masked_reduction_chunks",
        "the masked_reduction_chunks(...) context manager or repro.config.EngineConfig "
        "(note: the configuration is thread-local — this call only affects the "
        "calling thread)",
    )
    _apply_masked_reduction_chunks(batch=batch, receivers=receivers)


def get_masked_reduction_chunks() -> Dict[str, ChunkSetting]:
    """The current thread's chunk configuration (a copy)."""
    return dict(_REDUCTION_SETTINGS.chunks)


def set_masked_reduction_impl(general: str = "auto") -> None:
    """Choose the implementation of the general masked-reduction case.

    .. deprecated::
        Mutating the selector in place is deprecated; use the exception-safe
        :func:`masked_reduction_impl` context manager or a
        :class:`repro.config.EngineConfig` scope instead.

    ``"auto"`` (default) routes large ``(B, n, n)`` reductions with small
    ``d`` through the packed-bit scan of :func:`repro.types.pack_bool_rows`;
    ``"dense"`` forces the dense/chunked ``np.where`` path; ``"packed"``
    forces the packed path whenever it is applicable (float values without
    NaNs).  All implementations are bit-for-bit identical.  The selector is
    thread-local.
    """
    _warn_deprecated_once(
        "set_masked_reduction_impl",
        "the masked_reduction_impl(...) context manager or repro.config.EngineConfig "
        "(note: the selector is thread-local — this call only affects the "
        "calling thread)",
    )
    _apply_masked_reduction_impl(general)


def get_masked_reduction_impl() -> str:
    """The current thread's general masked-reduction implementation selector."""
    return _REDUCTION_SETTINGS.impl


@contextmanager
def masked_reduction_impl(general: str = "auto") -> Iterator[None]:
    """Temporarily override the general masked-reduction implementation.

    The previous value is restored even when the body raises.
    """
    previous = _REDUCTION_SETTINGS.impl
    _apply_masked_reduction_impl(general)
    try:
        yield
    finally:
        _REDUCTION_SETTINGS.impl = previous


@contextmanager
def masked_reduction_chunks(
    batch: ChunkSetting = "auto", receivers: ChunkSetting = "auto"
) -> Iterator[None]:
    """Temporarily override the masked-reduction chunk configuration.

    The previous configuration is restored even when the body raises.
    """
    previous = get_masked_reduction_chunks()
    _apply_masked_reduction_chunks(batch=batch, receivers=receivers)
    try:
        yield
    finally:
        _REDUCTION_SETTINGS.chunks.update(previous)


def receive_mask(adjacency: np.ndarray) -> np.ndarray:
    """The receiver-major view of an adjacency tensor.

    ``adjacency[..., i, j]`` means *i sends to j*; the returned array has
    ``mask[..., j, i]`` true iff receiver ``j`` hears sender ``i``, which is
    the orientation every masked reduction of the vectorized fast path needs.
    Accepts a single ``(n, n)`` matrix or a stacked ``(B, n, n)`` tensor.
    """
    return np.swapaxes(np.asarray(adjacency, dtype=bool), -1, -2)


def masked_min(adjacency: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-receiver coordinate-wise minimum over received values.

    ``adjacency`` is a boolean ``(..., n, n)`` tensor and ``values`` a
    ``(..., n, d)`` tensor; row ``j`` of the result is the minimum over the
    values of ``j``'s in-neighbors.  This is the one authoritative masked
    reduction shared by the fast-path algorithms and the convexity validator.
    Large inputs are reduced in blocks (see
    :func:`set_masked_reduction_chunks`) so peak memory stays bounded by the
    chunk size instead of the full ``(B, n, n, d)`` dense intermediate.
    """
    lo, _hi = _masked_extremes_pair(adjacency, values, None)
    return lo


def masked_max(adjacency: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-receiver coordinate-wise maximum over received values (see :func:`masked_min`)."""
    _lo, hi = _masked_extremes_pair(adjacency, None, values)
    return hi


def masked_min_max(adjacency: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Both masked extremes in one pass.

    Equivalent to ``(masked_min(a, v), masked_max(a, v))`` but shares the
    receive-mask, shape resolution and (on the sort-and-scan fast path) the
    per-coordinate gather between the two reductions — use it whenever an
    update needs both bounds (midpoint-style rules, convexity checks).
    """
    return _masked_extremes_pair(adjacency, values, values)


def masked_extreme_pair(
    adjacency: np.ndarray,
    min_values: Optional[np.ndarray],
    max_values: Optional[np.ndarray],
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Fused masked extremes over *two* value tensors with one mask resolution.

    Returns ``(masked_min(adjacency, min_values), masked_max(adjacency,
    max_values))`` bit-for-bit, but resolves the receive mask once and shares
    it — along with the broadcasting work and, on the chunked dense path,
    each expanded mask block — between the two reductions.  This is the
    amortized midpoint's per-round pattern: the minimum runs over the
    phase-min tensor while the maximum runs over the phase-max tensor of the
    same adjacency.  Either side may be ``None`` to skip that extreme;
    passing the same object for both degenerates to :func:`masked_min_max`
    (one shared sort instead of two).
    """
    if min_values is None and max_values is None:
        raise AlgorithmError(
            "masked_extreme_pair needs at least one of min_values/max_values"
        )
    return _masked_extremes_pair(adjacency, min_values, max_values)


def _resolve_chunks(lead_count: int, lead0: int, n_receivers: int, n: int, d: int):
    """Resolve the chunk configuration to concrete block sizes.

    Returns ``None`` for the dense path, else a ``(batch_chunk,
    receiver_chunk)`` pair of block sizes over the leading axis and the
    receiver axis.  An ``"auto"`` axis shrinks until the per-block
    intermediate fits ``_AUTO_DENSE_ELEMENT_LIMIT`` given the other axis's
    setting (receivers shrink first, then the leading axis), so the memory
    bound holds for mixed configurations too; explicit integer settings
    always take the chunked path.
    """
    batch_cfg = _REDUCTION_SETTINGS.chunks["batch"]
    recv_cfg = _REDUCTION_SETTINGS.chunks["receivers"]
    if batch_cfg == "dense" and recv_cfg == "dense":
        return None
    limit = _AUTO_DENSE_ELEMENT_LIMIT
    # Elements contributed per unit of the first leading axis per receiver row.
    per_batch_unit = max((lead_count // max(lead0, 1)) * n * d, 1)
    explicit = isinstance(batch_cfg, (int, np.integer)) or isinstance(
        recv_cfg, (int, np.integer)
    )

    if isinstance(batch_cfg, (int, np.integer)):
        batch_chunk: Optional[int] = min(int(batch_cfg), lead0)
    else:
        batch_chunk = lead0 if batch_cfg == "dense" else None  # None = auto
    if isinstance(recv_cfg, (int, np.integer)):
        receiver_chunk: Optional[int] = min(int(recv_cfg), n_receivers)
    else:
        receiver_chunk = n_receivers if recv_cfg == "dense" else None

    if receiver_chunk is None:
        batch_estimate = batch_chunk if batch_chunk is not None else lead0
        if batch_estimate * per_batch_unit * n_receivers <= limit:
            receiver_chunk = n_receivers
        else:
            receiver_chunk = min(
                n_receivers, max(1, limit // (batch_estimate * per_batch_unit))
            )
    if batch_chunk is None:
        if lead0 * per_batch_unit * receiver_chunk <= limit or lead0 <= 1:
            batch_chunk = lead0
        else:
            batch_chunk = min(lead0, max(1, limit // (per_batch_unit * receiver_chunk)))

    batch_chunk = max(batch_chunk, 1)
    receiver_chunk = max(receiver_chunk, 1)
    if (
        not explicit
        and batch_chunk >= lead0
        and receiver_chunk >= n_receivers
        and lead0 * per_batch_unit * n_receivers <= limit
    ):
        return None
    return (batch_chunk, receiver_chunk)


def _masked_extremes_scan(
    mask: np.ndarray,
    min_values: Optional[np.ndarray],
    max_values: Optional[np.ndarray],
):
    """Sort-and-scan masked extremes for values shared across the mask's batch.

    With the ``(n, d)`` values fixed, the masked minimum of receiver ``j`` is
    the *first* of ``j``'s in-neighbors in ascending value order and the
    masked maximum the *last*, so one boolean gather plus an ``argmax`` per
    coordinate replaces the ``O(lead · n² · d)`` float64 ``np.where``
    intermediate with a byte-sized one — both faster and leaner when many
    candidate masks share one value matrix (the adversaries' stacked
    candidate evaluation).  Exact: a set extreme does not depend on the
    evaluation order.  When the two sides are the same object the sort and
    the boolean gather are shared; distinct tensors still share the
    has-neighbor vector (and the caller's single mask resolution).
    """
    last_axis = mask.shape[-1]
    has_neighbor = mask.any(axis=-1)  # (..., n_receivers)

    def _one_side(values: np.ndarray, want_min: bool, want_max: bool):
        _n, d = values.shape
        lo_columns, hi_columns = [], []
        for coord in range(d):
            column = values[:, coord]
            order = np.argsort(column, kind="stable")
            sorted_column = column[order]
            sorted_mask = mask[..., order]
            if want_min:
                first_hit = sorted_mask.argmax(axis=-1)
                lo_columns.append(np.where(has_neighbor, sorted_column[first_hit], np.inf))
            if want_max:
                last_hit = last_axis - 1 - sorted_mask[..., ::-1].argmax(axis=-1)
                hi_columns.append(np.where(has_neighbor, sorted_column[last_hit], -np.inf))
        lo = np.stack(lo_columns, axis=-1) if want_min else None
        hi = np.stack(hi_columns, axis=-1) if want_max else None
        return lo, hi

    if min_values is not None and min_values is max_values:
        return _one_side(min_values, True, True)
    lo = _one_side(min_values, True, False)[0] if min_values is not None else None
    hi = _one_side(max_values, False, True)[1] if max_values is not None else None
    return lo, hi


def _masked_extremes_packed(
    mask: np.ndarray,
    min_values: Optional[np.ndarray],
    max_values: Optional[np.ndarray],
    lead: tuple,
):
    """Packed-bit masked extremes for the general (per-lead values) case.

    Sorting each scenario's values once per coordinate turns the masked
    extreme of every receiver into a first/last-set-bit query on the
    receiver's mask row *permuted into sorted order*; packing those rows via
    ``np.packbits`` answers all queries with one byte-level ``argmax`` and a
    table lookup.  The largest intermediate is the permuted boolean mask —
    an eighth of the dense path's float64 ``np.where`` tensor at ``d == 1``
    before packing even starts — and the selected floats are actual elements
    of ``values``, so the result is bit-for-bit equal to the dense path.

    The column gather runs as one boolean fancy-index per lead scenario —
    measured the fastest layout here: both a broadcast ``take_along_axis``
    over the stacked boolean tensor and bit-level gathers out of the
    bitset-resident :attr:`CommunicationGraph.packed_receive_rows` cache
    (byte gather + shift + repack) clock 2-4x slower across every
    ``(lead, n)`` regime on this stack, because the per-scenario gather is a
    single contiguous fancy-index while the bit-level variant needs three
    full passes over the mask bytes.  The graph bitset cache therefore
    serves the *unpermuted* consumers (the α-relation kernels) instead.

    The fused two-tensor case shares the flattened mask and the permuted-mask
    scratch buffer between the sides; with identical value objects the sort,
    the permuted pack and the first/last-bit queries (one fused
    :func:`repro.types.packed_first_last_true` sweep) are shared too.
    """
    n_receivers, n = mask.shape[-2], mask.shape[-1]
    lead_count = math.prod(lead) if lead else 1
    mask_flat = np.broadcast_to(mask, lead + (n_receivers, n)).reshape(
        lead_count, n_receivers, n
    )
    permuted = np.empty((lead_count, n_receivers, n), dtype=bool)
    out_shape_of = lambda d: lead + (n_receivers, d)  # noqa: E731

    def _one_side(values: np.ndarray, want_min: bool, want_max: bool):
        d = values.shape[-1]
        values_flat = np.broadcast_to(values, lead + (n, d)).reshape(lead_count, n, d)
        out_dtype = (
            values.dtype
            if np.issubdtype(values.dtype, np.floating)
            else np.result_type(values.dtype, float)
        )
        lo = np.empty((lead_count, n_receivers, d), dtype=out_dtype) if want_min else None
        hi = np.empty((lead_count, n_receivers, d), dtype=out_dtype) if want_max else None
        order = np.argsort(values_flat, axis=-2, kind="stable")  # (L, n, d)
        for coord in range(d):
            column_order = order[..., coord]  # (L, n)
            sorted_column = np.take_along_axis(values_flat[..., coord], column_order, axis=-1)
            sorted_column = sorted_column.astype(out_dtype, copy=False)
            for scenario in range(lead_count):
                permuted[scenario] = mask_flat[scenario][:, column_order[scenario]]
            packed = pack_bool_rows(permuted)  # (L, R, ceil(n/8))
            if want_min and want_max:
                first, last = packed_first_last_true(packed, n)
            elif want_min:
                first = packed_first_true(packed, n)  # (L, R); n = no neighbor
            else:
                last = packed_last_true(packed, n)  # (L, R); -1 = no neighbor
            if want_min:
                gathered = np.take_along_axis(sorted_column, np.minimum(first, n - 1), axis=-1)
                lo[..., coord] = np.where(first < n, gathered, np.inf)
            if want_max:
                gathered = np.take_along_axis(sorted_column, np.maximum(last, 0), axis=-1)
                hi[..., coord] = np.where(last >= 0, gathered, -np.inf)
        return (
            lo.reshape(out_shape_of(d)) if lo is not None else None,
            hi.reshape(out_shape_of(d)) if hi is not None else None,
        )

    if min_values is not None and min_values is max_values:
        return _one_side(min_values, True, True)
    lo = _one_side(min_values, True, False)[0] if min_values is not None else None
    hi = _one_side(max_values, False, True)[1] if max_values is not None else None
    return lo, hi


def _masked_extremes_pair(
    adjacency: np.ndarray,
    min_values: Optional[np.ndarray],
    max_values: Optional[np.ndarray],
):
    """Dispatch core of all masked extremes: one mask resolution per call.

    ``min_values`` feeds the minimum and ``max_values`` the maximum; either
    may be ``None`` (that side is skipped) and passing the same object for
    both recovers the shared-sort single-tensor behaviour of
    :func:`masked_min_max`.  Every implementation path — sort-and-scan,
    packed-bit, chunked/dense — receives the one mask produced here, so a
    caller needing both extremes pays for exactly one
    :func:`receive_mask` resolution regardless of path.
    """
    adjacency_arr = np.asarray(adjacency)
    if adjacency_arr.ndim < 2 or adjacency_arr.shape[-1] != adjacency_arr.shape[-2]:
        raise EnsembleShapeError(
            f"adjacency must be a square (..., n, n) tensor, got shape {adjacency_arr.shape}",
            expected="(..., n, n)",
            actual=tuple(adjacency_arr.shape),
        )
    shared = min_values is not None and min_values is max_values
    min_arr = np.asarray(min_values) if min_values is not None else None
    if shared:
        max_arr = min_arr
    else:
        max_arr = np.asarray(max_values) if max_values is not None else None
    # The distinct sides of a fused pair (one asarray each when shared).
    sides = [min_arr] if shared else [arr for arr in (min_arr, max_arr) if arr is not None]
    for values in sides:
        if values.ndim < 2:
            raise EnsembleShapeError(
                f"values must be a (..., n, d) tensor, got shape {values.shape}"
            )
        if values.shape[-2] != adjacency_arr.shape[-1]:
            raise EnsembleShapeError(
                f"adjacency tensor {adjacency_arr.shape} and value tensor {values.shape} "
                f"disagree on the number of agents: {adjacency_arr.shape[-1]} vs {values.shape[-2]}"
            )
    if len(sides) == 2 and sides[0].shape[-1] != sides[1].shape[-1]:
        raise EnsembleShapeError(
            f"min value tensor {sides[0].shape} and max value tensor {sides[1].shape} "
            f"disagree on the coordinate dimension: {sides[0].shape[-1]} vs {sides[1].shape[-1]}"
        )
    mask = receive_mask(adjacency_arr)
    mask_lead = mask.shape[:-2]
    value_leads = [values.shape[:-2] for values in sides]
    try:
        lead = np.broadcast_shapes(mask_lead, *value_leads)
    except ValueError as exc:
        raise EnsembleShapeError(
            f"adjacency tensor {adjacency_arr.shape} and value tensor(s) "
            f"{[tuple(v.shape) for v in sides]} have incompatible leading "
            "(scenario/candidate) axes"
        ) from exc
    n_receivers, n = mask.shape[-2], mask.shape[-1]
    d = sides[0].shape[-1]
    lead_count = math.prod(lead) if lead else 1
    lead0 = lead[0] if lead else 1

    # Sparse-aware fast path: one value matrix shared by a whole stack of
    # masks (the adversaries' candidate evaluation) reduces via sort-and-scan
    # instead of a dense float64 intermediate.
    if (
        lead_count > 1
        and d <= 8
        and all(size == 1 for values_lead in value_leads for size in values_lead)
        and not any(np.isnan(values).any() for values in sides)
    ):
        min_flat = min_arr.reshape(n, d) if min_arr is not None else None
        if shared:
            max_flat = min_flat
        else:
            max_flat = max_arr.reshape(n, d) if max_arr is not None else None
        lo, hi = _masked_extremes_scan(mask, min_flat, max_flat)
        out_shape = lead + (n_receivers, d)
        return (
            lo.reshape(out_shape) if lo is not None else None,
            hi.reshape(out_shape) if hi is not None else None,
        )

    # Packed-bit path for the general case (per-lead value tensors).  In
    # "auto" mode it fires where the dense intermediate would be chunked
    # anyway and the coordinate count is small; "packed" forces it whenever
    # the values are NaN-free (NaNs need the dense propagation semantics).
    impl = _REDUCTION_SETTINGS.impl
    if impl != "dense":
        auto_fire = (
            impl == "packed"
            or (
                lead_count > 1
                and d <= 2
                and n >= 32
                and lead_count * n_receivers * n * d > _AUTO_DENSE_ELEMENT_LIMIT
            )
        )
        if auto_fire and all(
            not np.issubdtype(values.dtype, np.floating) or not np.isnan(values).any()
            for values in sides
        ):
            return _masked_extremes_packed(mask, min_arr, max_arr, lead)

    chunks = _resolve_chunks(lead_count, lead0, n_receivers, n, d)

    if chunks is None:
        expanded_mask = mask[..., None]
        lo = (
            np.where(expanded_mask, min_arr[..., None, :, :], np.inf).min(axis=-2)
            if min_arr is not None
            else None
        )
        hi = (
            np.where(expanded_mask, max_arr[..., None, :, :], -np.inf).max(axis=-2)
            if max_arr is not None
            else None
        )
        return lo, hi

    batch_chunk, receiver_chunk = chunks
    mask_full = np.broadcast_to(mask, lead + mask.shape[-2:])

    # Match the dense path's promotion: np.where(mask, values, inf) keeps a
    # floating values dtype and promotes anything else to float64.
    def _output_for(values: np.ndarray) -> np.ndarray:
        out_dtype = (
            values.dtype
            if np.issubdtype(values.dtype, np.floating)
            else np.result_type(values.dtype, float)
        )
        return np.empty(lead + (n_receivers, d), dtype=out_dtype)

    min_full = (
        np.broadcast_to(min_arr, lead + min_arr.shape[-2:]) if min_arr is not None else None
    )
    if shared:
        max_full = min_full
    else:
        max_full = (
            np.broadcast_to(max_arr, lead + max_arr.shape[-2:])
            if max_arr is not None
            else None
        )
    lo = _output_for(min_arr) if min_arr is not None else None
    hi = _output_for(max_arr) if max_arr is not None else None
    if lead:
        batch_slices = [
            slice(start, start + batch_chunk) for start in range(0, lead0, batch_chunk)
        ]
    else:
        batch_slices = [slice(None)]
    for batch_slice in batch_slices:
        mask_block = mask_full[batch_slice]
        min_block = min_full[batch_slice] if min_full is not None else None
        max_block = max_full[batch_slice] if max_full is not None else None
        for start in range(0, n_receivers, receiver_chunk):
            stop = start + receiver_chunk
            sub = mask_block[..., start:stop, :, None]
            if lo is not None:
                lo[batch_slice][..., start:stop, :] = np.where(
                    sub, min_block[..., None, :, :], np.inf
                ).min(axis=-2)
            if hi is not None:
                hi[batch_slice][..., start:stop, :] = np.where(
                    sub, max_block[..., None, :, :], -np.inf
                ).max(axis=-2)
    return lo, hi


class Algorithm(ABC):
    """A deterministic local algorithm for the round-based dynamic model.

    Subclasses define the agent state (any picklable/copyable object), the
    message sent each round, the state transition, and how to read the output
    value ``y_i`` from the state.
    """

    @abstractmethod
    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> Any:
        """The agent's state before round 1.

        Parameters
        ----------
        agent_id:
            The agent's identifier (``0 .. n-1``).
        initial_value:
            The agent's initial value ``y_i(0)`` as a 1-D float array.
        n:
            The total number of agents (known to the agents, as in the paper's
            algorithms that use phases of length ``n - 1``).
        """

    @abstractmethod
    def message(self, agent_id: int, state: Any) -> Any:
        """The message the agent broadcasts this round, given its current state."""

    @abstractmethod
    def transition(
        self, agent_id: int, state: Any, received: Mapping[int, Any], round_number: int
    ) -> Any:
        """The new state after receiving ``received`` (sender id -> message) in ``round_number``.

        ``received`` always contains the agent's own message (self-loop).
        """

    @abstractmethod
    def output(self, agent_id: int, state: Any) -> np.ndarray:
        """The output value ``y_i`` encoded in ``state`` (1-D float array)."""

    @property
    def name(self) -> str:
        """Human-readable algorithm name used in reports and benchmarks."""
        return type(self).__name__

    def is_convex_combination(self) -> bool:
        """Whether the algorithm is a convex-combination (averaging) algorithm."""
        return isinstance(self, ConvexCombinationAlgorithm)

    def round_invariant(self) -> bool:
        """Whether the transition ignores the ``round_number`` argument.

        Round-invariant algorithms produce bit-for-bit identical outputs no
        matter which round number a transition executes at.  The batched
        valency estimator relies on this to stack futures that start at
        different rounds into one ensemble and to drop exact-fixpoint
        scenarios from constant suffixes early.  Defaults to ``False``
        (conservative); memoryless rules whose update never reads
        ``round_number`` override it to ``True``.
        """
        return False

    # ------------------------------------------------------------------ #
    # Vectorized fast path (optional)
    # ------------------------------------------------------------------ #
    #
    # Algorithms whose round update is a pure array computation can execute
    # whole rounds — and whole stacked ensembles of executions — as single
    # NumPy operations instead of per-agent Python loops.  An algorithm opts
    # in by returning True from :meth:`supports_batch` and implementing the
    # four ``batch_*`` hooks below.  The *batch state* is an opaque object
    # holding array-valued per-agent state; all hooks must treat it as
    # immutable and return fresh objects.  Value tensors have shape
    # ``(..., n, d)`` and adjacency tensors ``(..., n, n)``, where leading
    # dimensions (if any) index independent scenarios of an ensemble.
    #
    # :func:`repro.execution.run_execution` and
    # :mod:`repro.execution.batch` dispatch to these hooks automatically and
    # fall back to the per-agent path when they are absent; both paths
    # produce equivalent executions (see tests/test_equivalence.py).

    def supports_batch(self) -> bool:
        """Whether the vectorized ``batch_*`` fast path is implemented."""
        return False

    def batch_initial(self, values: np.ndarray) -> Any:
        """Batch state before round 1 from an ``(..., n, d)`` value tensor."""
        raise NotImplementedError(f"{self.name} has no vectorized fast path")

    def batch_transition(self, batch_state: Any, adjacency: np.ndarray, round_number: int) -> Any:
        """One synchronous round on the whole batch state at once.

        ``adjacency`` is the boolean ``(..., n, n)`` adjacency tensor of the
        round's communication graph(s), with ``adjacency[..., i, j]`` true iff
        ``j`` receives from ``i``.
        """
        raise NotImplementedError(f"{self.name} has no vectorized fast path")

    def batch_outputs(self, batch_state: Any) -> np.ndarray:
        """The ``(..., n, d)`` output tensor encoded in ``batch_state``."""
        raise NotImplementedError(f"{self.name} has no vectorized fast path")

    def batch_states(self, batch_state: Any) -> Tuple[Any, ...]:
        """Per-agent states equivalent to an *unbatched* ``(n, d)`` batch state.

        Used to materialize :class:`~repro.execution.state.Configuration`
        records; only defined when ``batch_state`` holds a single scenario.
        """
        raise NotImplementedError(f"{self.name} has no vectorized fast path")

    def batch_map(self, batch_state: Any, fn) -> Any:
        """Apply ``fn`` to every array leaf of ``batch_state``.

        The batched adversarial runner uses this to insert (and broadcast
        over) a candidate axis, e.g. ``fn = lambda a: a[:, None]`` turns a
        ``(B, n, d)`` state into a ``(B, 1, n, d)`` one that a stacked
        ``(C, n, n)`` adjacency pass expands to ``(B, C, n, d)``.  The default
        covers array-valued batch states; algorithms with structured batch
        states override it.  Implementations must visit the leaves in a fixed
        order and rebuild the state from the mapped values
        (:meth:`batch_state_stack` relies on both properties).
        """
        if isinstance(batch_state, np.ndarray):
            return fn(batch_state)
        raise NotImplementedError(
            f"{self.name} has a structured batch state and must override batch_map"
        )

    def batch_state_stack(self, batch_states: Sequence[Any]) -> Any:
        """Stack single-scenario batch states along a new leading scenario axis.

        ``batch_states`` holds ``B`` batch states whose array leaves have
        identical shapes (e.g. restored from recorded per-agent snapshots via
        :meth:`batch_state_from_states`); the result is one batch state whose
        leaves carry a leading length-``B`` axis, ready to drive all ``B``
        scenarios through :meth:`batch_transition` at once.  The ensemble
        certification engine uses this to evaluate a whole
        :class:`~repro.execution.batch.EnsembleExecution` record's scenarios
        as stacked valency ensembles.  The default covers array-valued batch
        states and, via :meth:`batch_map` leaf traversal, structured states;
        algorithms whose batch state carries non-array fields that must agree
        across scenarios should override it with explicit validation.
        """
        states = list(batch_states)
        if not states:
            raise AlgorithmError("cannot stack zero batch states")
        if all(isinstance(state, np.ndarray) for state in states):
            return np.stack(states)
        leaves_per_state = []
        for state in states:
            leaves: list = []
            self.batch_map(state, lambda leaf: (leaves.append(np.asarray(leaf)), leaf)[1])
            leaves_per_state.append(leaves)
        counts = {len(leaves) for leaves in leaves_per_state}
        if len(counts) != 1:
            raise AlgorithmError(
                f"batch states of {self.name} expose differing leaf counts "
                f"({sorted(counts)}) and cannot be stacked"
            )
        stacked = [
            np.stack([leaves[index] for leaves in leaves_per_state])
            for index in range(counts.pop())
        ]
        replacement = iter(stacked)
        return self.batch_map(states[0], lambda _leaf: next(replacement))

    def batch_state_fixpoint(
        self, previous: Any, new: Any
    ) -> Optional[np.ndarray]:
        """Scenarios whose outputs provably never change again — or ``None``.

        Called by the valency engine's constant-suffix runs with the batch
        states before and after one :meth:`batch_transition` under a fixed
        adjacency.  A ``True`` entry (boolean array over the leading scenario
        axes) asserts that repeating the *same* transition forever leaves that
        scenario's outputs bit-for-bit unchanged, so the active set may retire
        it early.  ``None`` (the default) means "cannot tell" and disables
        retiring — always sound.  Implementations must only claim fixpoints
        that hold *exactly* in floating point, since retired scenarios'
        current outputs stand in for their suffix limits.
        """
        return None

    # ------------------------------------------------------------------ #
    # Batch-state snapshot/restore (optional)
    # ------------------------------------------------------------------ #
    #
    # :meth:`batch_states` *snapshots* an unbatched batch state into the
    # per-agent states a Configuration records; the hooks below *restore*
    # a batch state from such a snapshot.  Together they let the batched
    # valency/certification engines resume stateful algorithms (e.g. the
    # amortized midpoint's mid-phase extremes) at an arbitrary recorded
    # configuration and fan the restored state out into a scenario ensemble
    # via :meth:`batch_map` — instead of falling back to the per-future
    # reference loop.

    def supports_batch_state(self) -> bool:
        """Whether batch states can be restored from recorded per-agent states.

        Algorithms that return ``True`` implement
        :meth:`batch_state_from_states` as the exact inverse of
        :meth:`batch_states`: restoring the snapshot and resuming through
        ``batch_transition`` must be bit-for-bit identical to resuming the
        per-agent states through ``transition``.
        """
        return False

    def batch_state_from_states(self, states: Sequence[Any]) -> Any:
        """Restore an unbatched batch state from a per-agent state snapshot.

        ``states`` is the tuple a :class:`~repro.execution.state.Configuration`
        records (one opaque state per agent, as produced by
        :meth:`batch_states` or by per-agent execution); the result is a
        single-scenario batch state whose array leaves have shape
        ``(n, d)``-like trailing axes, ready for :meth:`batch_map` fan-out.
        """
        raise NotImplementedError(
            f"{self.name} cannot restore a batch state from per-agent states"
        )


class ConvexCombinationAlgorithm(Algorithm):
    """Memoryless averaging algorithms (Section 2.2).

    The agent state is its output value; the broadcast message is the output
    value; and the transition sets the output to a point in the convex hull
    of the values received this round, computed by :meth:`combine`.

    Setting ``validate=True`` makes every transition assert the convex-hull
    (Validity) requirement, which is useful in tests.
    """

    def __init__(self, validate: bool = False) -> None:
        self._validate = validate

    @abstractmethod
    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        """Map the received values (sender id -> value) to the new output value.

        The result must lie in the convex hull of ``received.values()``.
        """

    def combine_all(
        self, adjacency: np.ndarray, values: np.ndarray, round_number: int
    ) -> Optional[np.ndarray]:
        """Vectorized :meth:`combine` for all agents (and scenarios) at once.

        ``values`` is the ``(..., n, d)`` tensor of current outputs and
        ``adjacency`` the boolean ``(..., n, n)`` adjacency tensor of the
        round's graph(s) (``adjacency[..., i, j]`` iff ``j`` receives from
        ``i``; the diagonal is always true).  Implementations return the new
        ``(..., n, d)`` output tensor, equal to applying :meth:`combine`
        receiver by receiver.  The base implementation returns ``None``,
        meaning "no fast path" — the engine then uses the per-agent loop.
        """
        return None

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> np.ndarray:
        return as_value(initial_value)

    def message(self, agent_id: int, state: np.ndarray) -> np.ndarray:
        return state

    def transition(
        self, agent_id: int, state: np.ndarray, received: Mapping[int, Any], round_number: int
    ) -> np.ndarray:
        values = {sender: as_value(value) for sender, value in received.items()}
        if agent_id not in values:
            raise AlgorithmError(
                f"agent {agent_id} did not receive its own value; communication graphs "
                "must contain self-loops"
            )
        new_value = as_value(self.combine(agent_id, values, round_number))
        if self._validate:
            self._check_convex(new_value, values)
        return new_value

    def output(self, agent_id: int, state: np.ndarray) -> np.ndarray:
        return state

    # ------------------------------------------------------------------ #
    # Vectorized fast path: generic implementation on top of combine_all
    # ------------------------------------------------------------------ #

    def supports_batch(self) -> bool:
        return type(self).combine_all is not ConvexCombinationAlgorithm.combine_all

    def batch_initial(self, values: np.ndarray) -> np.ndarray:
        return np.array(values, dtype=float)

    def batch_transition(
        self, batch_state: np.ndarray, adjacency: np.ndarray, round_number: int
    ) -> np.ndarray:
        new_values = self.combine_all(adjacency, batch_state, round_number)
        if new_values is None:
            raise AlgorithmError(f"{self.name} does not implement combine_all")
        new_values = np.asarray(new_values, dtype=float)
        if self._validate:
            self._check_convex_batch(new_values, batch_state, adjacency)
        return new_values

    def batch_outputs(self, batch_state: np.ndarray) -> np.ndarray:
        return batch_state

    def batch_states(self, batch_state: np.ndarray) -> Tuple[np.ndarray, ...]:
        if batch_state.ndim != 2:
            raise AlgorithmError(
                f"per-agent states only exist for a single scenario, got shape {batch_state.shape}"
            )
        return tuple(batch_state)

    def supports_batch_state(self) -> bool:
        return self.supports_batch()

    def batch_state_from_states(self, states: Sequence[Any]) -> np.ndarray:
        return np.stack([as_value(state) for state in states])

    def batch_state_fixpoint(
        self, previous: np.ndarray, new: np.ndarray
    ) -> Optional[np.ndarray]:
        """Exact output fixpoints of one round (round-invariant rules only).

        The state of a convex-combination algorithm is its output matrix and
        the transition is a deterministic function of (state, adjacency) when
        the rule is round-invariant, so a state that one round maps to itself
        is fixed forever under that adjacency.  Round-dependent rules return
        ``None`` (an unchanged output this round says nothing about the next).
        """
        if not self.round_invariant():
            return None
        previous = np.asarray(previous)
        new = np.asarray(new)
        return (new == previous).all(axis=(-2, -1))

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_convex_batch(
        new_values: np.ndarray, values: np.ndarray, adjacency: np.ndarray, tol: float = 1e-9
    ) -> None:
        lo, hi = masked_min_max(adjacency, values)
        lo = lo - tol
        hi = hi + tol
        if np.any(new_values < lo) or np.any(new_values > hi):
            raise AlgorithmError(
                "convex-combination algorithm produced a value outside the bounding box "
                "of received values in the vectorized fast path"
            )

    @staticmethod
    def _check_convex(new_value: np.ndarray, values: Dict[int, np.ndarray], tol: float = 1e-9) -> None:
        points = np.vstack(list(values.values()))
        lo = points.min(axis=0) - tol
        hi = points.max(axis=0) + tol
        if np.any(new_value < lo) or np.any(new_value > hi):
            raise AlgorithmError(
                "convex-combination algorithm produced a value outside the bounding box "
                f"of received values: {new_value} not in [{points.min(axis=0)}, {points.max(axis=0)}]"
            )
