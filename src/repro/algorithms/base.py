"""Algorithm interfaces for the round-based dynamic system model.

An algorithm (Section 2) is a deterministic local transition function: in
every round each agent sends a message to its out-neighbors, receives the
messages of its in-neighbors (always including itself, because communication
graphs have self-loops), and updates its state.  The agent's *output* ``y_i``
is a point of Euclidean d-space extracted from its state.

Two levels of generality are provided:

* :class:`Algorithm` — the fully general interface (full-information
  algorithms, algorithms with memory, algorithms whose outputs leave the
  convex hull of received values, deciding algorithms, ...).
* :class:`ConvexCombinationAlgorithm` — the memoryless averaging algorithms
  of Section 2.2: the state is just the output value, the message is the
  output value, and the new output must lie in the convex hull of the values
  received in the current round.  Subclasses only implement
  :meth:`ConvexCombinationAlgorithm.combine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Mapping

import numpy as np

from repro.exceptions import AlgorithmError
from repro.types import as_value


class Algorithm(ABC):
    """A deterministic local algorithm for the round-based dynamic model.

    Subclasses define the agent state (any picklable/copyable object), the
    message sent each round, the state transition, and how to read the output
    value ``y_i`` from the state.
    """

    @abstractmethod
    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> Any:
        """The agent's state before round 1.

        Parameters
        ----------
        agent_id:
            The agent's identifier (``0 .. n-1``).
        initial_value:
            The agent's initial value ``y_i(0)`` as a 1-D float array.
        n:
            The total number of agents (known to the agents, as in the paper's
            algorithms that use phases of length ``n - 1``).
        """

    @abstractmethod
    def message(self, agent_id: int, state: Any) -> Any:
        """The message the agent broadcasts this round, given its current state."""

    @abstractmethod
    def transition(
        self, agent_id: int, state: Any, received: Mapping[int, Any], round_number: int
    ) -> Any:
        """The new state after receiving ``received`` (sender id -> message) in ``round_number``.

        ``received`` always contains the agent's own message (self-loop).
        """

    @abstractmethod
    def output(self, agent_id: int, state: Any) -> np.ndarray:
        """The output value ``y_i`` encoded in ``state`` (1-D float array)."""

    @property
    def name(self) -> str:
        """Human-readable algorithm name used in reports and benchmarks."""
        return type(self).__name__

    def is_convex_combination(self) -> bool:
        """Whether the algorithm is a convex-combination (averaging) algorithm."""
        return isinstance(self, ConvexCombinationAlgorithm)


class ConvexCombinationAlgorithm(Algorithm):
    """Memoryless averaging algorithms (Section 2.2).

    The agent state is its output value; the broadcast message is the output
    value; and the transition sets the output to a point in the convex hull
    of the values received this round, computed by :meth:`combine`.

    Setting ``validate=True`` makes every transition assert the convex-hull
    (Validity) requirement, which is useful in tests.
    """

    def __init__(self, validate: bool = False) -> None:
        self._validate = validate

    @abstractmethod
    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        """Map the received values (sender id -> value) to the new output value.

        The result must lie in the convex hull of ``received.values()``.
        """

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> np.ndarray:
        return as_value(initial_value)

    def message(self, agent_id: int, state: np.ndarray) -> np.ndarray:
        return state

    def transition(
        self, agent_id: int, state: np.ndarray, received: Mapping[int, Any], round_number: int
    ) -> np.ndarray:
        values = {sender: as_value(value) for sender, value in received.items()}
        if agent_id not in values:
            raise AlgorithmError(
                f"agent {agent_id} did not receive its own value; communication graphs "
                "must contain self-loops"
            )
        new_value = as_value(self.combine(agent_id, values, round_number))
        if self._validate:
            self._check_convex(new_value, values)
        return new_value

    def output(self, agent_id: int, state: np.ndarray) -> np.ndarray:
        return state

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_convex(new_value: np.ndarray, values: Dict[int, np.ndarray], tol: float = 1e-9) -> None:
        points = np.vstack(list(values.values()))
        lo = points.min(axis=0) - tol
        hi = points.max(axis=0) + tol
        if np.any(new_value < lo) or np.any(new_value > hi):
            raise AlgorithmError(
                "convex-combination algorithm produced a value outside the bounding box "
                f"of received values: {new_value} not in [{points.min(axis=0)}, {points.max(axis=0)}]"
            )
