"""Algorithm interfaces for the round-based dynamic system model.

An algorithm (Section 2) is a deterministic local transition function: in
every round each agent sends a message to its out-neighbors, receives the
messages of its in-neighbors (always including itself, because communication
graphs have self-loops), and updates its state.  The agent's *output* ``y_i``
is a point of Euclidean d-space extracted from its state.

Two levels of generality are provided:

* :class:`Algorithm` — the fully general interface (full-information
  algorithms, algorithms with memory, algorithms whose outputs leave the
  convex hull of received values, deciding algorithms, ...).
* :class:`ConvexCombinationAlgorithm` — the memoryless averaging algorithms
  of Section 2.2: the state is just the output value, the message is the
  output value, and the new output must lie in the convex hull of the values
  received in the current round.  Subclasses only implement
  :meth:`ConvexCombinationAlgorithm.combine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import AlgorithmError
from repro.types import as_value


def receive_mask(adjacency: np.ndarray) -> np.ndarray:
    """The receiver-major view of an adjacency tensor.

    ``adjacency[..., i, j]`` means *i sends to j*; the returned array has
    ``mask[..., j, i]`` true iff receiver ``j`` hears sender ``i``, which is
    the orientation every masked reduction of the vectorized fast path needs.
    Accepts a single ``(n, n)`` matrix or a stacked ``(B, n, n)`` tensor.
    """
    return np.swapaxes(np.asarray(adjacency, dtype=bool), -1, -2)


def masked_min(adjacency: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-receiver coordinate-wise minimum over received values.

    ``adjacency`` is a boolean ``(..., n, n)`` tensor and ``values`` a
    ``(..., n, d)`` tensor; row ``j`` of the result is the minimum over the
    values of ``j``'s in-neighbors.  This is the one authoritative masked
    reduction shared by the fast-path algorithms and the convexity validator.
    """
    mask = receive_mask(adjacency)[..., None]
    return np.where(mask, values[..., None, :, :], np.inf).min(axis=-2)


def masked_max(adjacency: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-receiver coordinate-wise maximum over received values (see :func:`masked_min`)."""
    mask = receive_mask(adjacency)[..., None]
    return np.where(mask, values[..., None, :, :], -np.inf).max(axis=-2)


class Algorithm(ABC):
    """A deterministic local algorithm for the round-based dynamic model.

    Subclasses define the agent state (any picklable/copyable object), the
    message sent each round, the state transition, and how to read the output
    value ``y_i`` from the state.
    """

    @abstractmethod
    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> Any:
        """The agent's state before round 1.

        Parameters
        ----------
        agent_id:
            The agent's identifier (``0 .. n-1``).
        initial_value:
            The agent's initial value ``y_i(0)`` as a 1-D float array.
        n:
            The total number of agents (known to the agents, as in the paper's
            algorithms that use phases of length ``n - 1``).
        """

    @abstractmethod
    def message(self, agent_id: int, state: Any) -> Any:
        """The message the agent broadcasts this round, given its current state."""

    @abstractmethod
    def transition(
        self, agent_id: int, state: Any, received: Mapping[int, Any], round_number: int
    ) -> Any:
        """The new state after receiving ``received`` (sender id -> message) in ``round_number``.

        ``received`` always contains the agent's own message (self-loop).
        """

    @abstractmethod
    def output(self, agent_id: int, state: Any) -> np.ndarray:
        """The output value ``y_i`` encoded in ``state`` (1-D float array)."""

    @property
    def name(self) -> str:
        """Human-readable algorithm name used in reports and benchmarks."""
        return type(self).__name__

    def is_convex_combination(self) -> bool:
        """Whether the algorithm is a convex-combination (averaging) algorithm."""
        return isinstance(self, ConvexCombinationAlgorithm)

    # ------------------------------------------------------------------ #
    # Vectorized fast path (optional)
    # ------------------------------------------------------------------ #
    #
    # Algorithms whose round update is a pure array computation can execute
    # whole rounds — and whole stacked ensembles of executions — as single
    # NumPy operations instead of per-agent Python loops.  An algorithm opts
    # in by returning True from :meth:`supports_batch` and implementing the
    # four ``batch_*`` hooks below.  The *batch state* is an opaque object
    # holding array-valued per-agent state; all hooks must treat it as
    # immutable and return fresh objects.  Value tensors have shape
    # ``(..., n, d)`` and adjacency tensors ``(..., n, n)``, where leading
    # dimensions (if any) index independent scenarios of an ensemble.
    #
    # :func:`repro.execution.run_execution` and
    # :mod:`repro.execution.batch` dispatch to these hooks automatically and
    # fall back to the per-agent path when they are absent; both paths
    # produce equivalent executions (see tests/test_equivalence.py).

    def supports_batch(self) -> bool:
        """Whether the vectorized ``batch_*`` fast path is implemented."""
        return False

    def batch_initial(self, values: np.ndarray) -> Any:
        """Batch state before round 1 from an ``(..., n, d)`` value tensor."""
        raise NotImplementedError(f"{self.name} has no vectorized fast path")

    def batch_transition(self, batch_state: Any, adjacency: np.ndarray, round_number: int) -> Any:
        """One synchronous round on the whole batch state at once.

        ``adjacency`` is the boolean ``(..., n, n)`` adjacency tensor of the
        round's communication graph(s), with ``adjacency[..., i, j]`` true iff
        ``j`` receives from ``i``.
        """
        raise NotImplementedError(f"{self.name} has no vectorized fast path")

    def batch_outputs(self, batch_state: Any) -> np.ndarray:
        """The ``(..., n, d)`` output tensor encoded in ``batch_state``."""
        raise NotImplementedError(f"{self.name} has no vectorized fast path")

    def batch_states(self, batch_state: Any) -> Tuple[Any, ...]:
        """Per-agent states equivalent to an *unbatched* ``(n, d)`` batch state.

        Used to materialize :class:`~repro.execution.state.Configuration`
        records; only defined when ``batch_state`` holds a single scenario.
        """
        raise NotImplementedError(f"{self.name} has no vectorized fast path")


class ConvexCombinationAlgorithm(Algorithm):
    """Memoryless averaging algorithms (Section 2.2).

    The agent state is its output value; the broadcast message is the output
    value; and the transition sets the output to a point in the convex hull
    of the values received this round, computed by :meth:`combine`.

    Setting ``validate=True`` makes every transition assert the convex-hull
    (Validity) requirement, which is useful in tests.
    """

    def __init__(self, validate: bool = False) -> None:
        self._validate = validate

    @abstractmethod
    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        """Map the received values (sender id -> value) to the new output value.

        The result must lie in the convex hull of ``received.values()``.
        """

    def combine_all(
        self, adjacency: np.ndarray, values: np.ndarray, round_number: int
    ) -> Optional[np.ndarray]:
        """Vectorized :meth:`combine` for all agents (and scenarios) at once.

        ``values`` is the ``(..., n, d)`` tensor of current outputs and
        ``adjacency`` the boolean ``(..., n, n)`` adjacency tensor of the
        round's graph(s) (``adjacency[..., i, j]`` iff ``j`` receives from
        ``i``; the diagonal is always true).  Implementations return the new
        ``(..., n, d)`` output tensor, equal to applying :meth:`combine`
        receiver by receiver.  The base implementation returns ``None``,
        meaning "no fast path" — the engine then uses the per-agent loop.
        """
        return None

    # ------------------------------------------------------------------ #
    # Algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> np.ndarray:
        return as_value(initial_value)

    def message(self, agent_id: int, state: np.ndarray) -> np.ndarray:
        return state

    def transition(
        self, agent_id: int, state: np.ndarray, received: Mapping[int, Any], round_number: int
    ) -> np.ndarray:
        values = {sender: as_value(value) for sender, value in received.items()}
        if agent_id not in values:
            raise AlgorithmError(
                f"agent {agent_id} did not receive its own value; communication graphs "
                "must contain self-loops"
            )
        new_value = as_value(self.combine(agent_id, values, round_number))
        if self._validate:
            self._check_convex(new_value, values)
        return new_value

    def output(self, agent_id: int, state: np.ndarray) -> np.ndarray:
        return state

    # ------------------------------------------------------------------ #
    # Vectorized fast path: generic implementation on top of combine_all
    # ------------------------------------------------------------------ #

    def supports_batch(self) -> bool:
        return type(self).combine_all is not ConvexCombinationAlgorithm.combine_all

    def batch_initial(self, values: np.ndarray) -> np.ndarray:
        return np.array(values, dtype=float)

    def batch_transition(
        self, batch_state: np.ndarray, adjacency: np.ndarray, round_number: int
    ) -> np.ndarray:
        new_values = self.combine_all(adjacency, batch_state, round_number)
        if new_values is None:
            raise AlgorithmError(f"{self.name} does not implement combine_all")
        new_values = np.asarray(new_values, dtype=float)
        if self._validate:
            self._check_convex_batch(new_values, batch_state, adjacency)
        return new_values

    def batch_outputs(self, batch_state: np.ndarray) -> np.ndarray:
        return batch_state

    def batch_states(self, batch_state: np.ndarray) -> Tuple[np.ndarray, ...]:
        if batch_state.ndim != 2:
            raise AlgorithmError(
                f"per-agent states only exist for a single scenario, got shape {batch_state.shape}"
            )
        return tuple(batch_state)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_convex_batch(
        new_values: np.ndarray, values: np.ndarray, adjacency: np.ndarray, tol: float = 1e-9
    ) -> None:
        lo = masked_min(adjacency, values) - tol
        hi = masked_max(adjacency, values) + tol
        if np.any(new_values < lo) or np.any(new_values > hi):
            raise AlgorithmError(
                "convex-combination algorithm produced a value outside the bounding box "
                "of received values in the vectorized fast path"
            )

    @staticmethod
    def _check_convex(new_value: np.ndarray, values: Dict[int, np.ndarray], tol: float = 1e-9) -> None:
        points = np.vstack(list(values.values()))
        lo = points.min(axis=0) - tol
        hi = points.max(axis=0) + tol
        if np.any(new_value < lo) or np.any(new_value > hi):
            raise AlgorithmError(
                "convex-combination algorithm produced a value outside the bounding box "
                f"of received values: {new_value} not in [{points.min(axis=0)}, {points.max(axis=0)}]"
            )
