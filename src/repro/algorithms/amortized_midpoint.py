"""The amortized midpoint algorithm for rooted network models.

The midpoint rule contracts by 1/2 per round only when every round's graph is
non-split.  In a merely *rooted* model a single round need not contract at
all, but the product of any ``n - 1`` rooted graphs on ``n`` nodes is
non-split [Charron-Bost et al., ICALP'15].  The amortized midpoint algorithm
of [Charron-Bost et al., ICALP'16] therefore works in *phases* of ``n - 1``
rounds: during a phase each agent relays the smallest and largest phase-start
values it has heard of, and at the end of the phase it moves to the midpoint
of the relayed extremes.  The value range halves every phase, giving a
contraction rate of ``(1/2)^{1/(n-1)}`` — asymptotically matching the
``(1/2)^{1/(n-2)}`` lower bound of Theorem 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.algorithms.base import Algorithm, masked_extreme_pair, masked_min
from repro.exceptions import AlgorithmError
from repro.types import as_value


@dataclass(frozen=True)
class AmortizedMidpointState:
    """Per-agent state of the amortized midpoint algorithm.

    Attributes
    ----------
    value:
        The agent's current output ``y_i`` (updated only at phase ends).
    phase_min, phase_max:
        Coordinate-wise extremes of the phase-start values the agent has
        heard of so far in the current phase.
    rounds_into_phase:
        How many rounds of the current phase have been executed.
    phase_length:
        Number of rounds per phase (``n - 1``).
    """

    value: np.ndarray
    phase_min: np.ndarray
    phase_max: np.ndarray
    rounds_into_phase: int
    phase_length: int


@dataclass(frozen=True)
class AmortizedMidpointBatchState:
    """Stacked state of all agents (and scenarios) for the vectorized fast path.

    The arrays have shape ``(..., n, d)``; ``rounds_into_phase`` is a single
    integer because the synchronous engine advances all agents in lockstep.
    """

    value: np.ndarray
    phase_min: np.ndarray
    phase_max: np.ndarray
    rounds_into_phase: int
    phase_length: int


class AmortizedMidpointAlgorithm(Algorithm):
    """Midpoint averaging amortized over phases of ``n - 1`` rounds.

    Parameters
    ----------
    phase_length:
        Optional override of the phase length.  The default (``None``) uses
        ``n - 1``, which is correct for arbitrary rooted models; the Theorem 3
        lower-bound experiments also use ``n - 2`` to probe the gap between
        the algorithm and the bound.
    """

    def __init__(self, phase_length: int | None = None) -> None:
        if phase_length is not None and phase_length < 1:
            raise AlgorithmError(f"phase_length must be >= 1, got {phase_length}")
        self._phase_length_override = phase_length

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> AmortizedMidpointState:
        value = as_value(initial_value)
        phase_length = self._phase_length_override if self._phase_length_override else max(n - 1, 1)
        return AmortizedMidpointState(
            value=value,
            phase_min=value.copy(),
            phase_max=value.copy(),
            rounds_into_phase=0,
            phase_length=phase_length,
        )

    def message(self, agent_id: int, state: AmortizedMidpointState) -> Tuple[np.ndarray, np.ndarray]:
        # Relay the extremes of the phase-start values heard of so far.
        return (state.phase_min, state.phase_max)

    def transition(
        self,
        agent_id: int,
        state: AmortizedMidpointState,
        received: Mapping[int, Tuple[np.ndarray, np.ndarray]],
        round_number: int,
    ) -> AmortizedMidpointState:
        mins = np.vstack([msg[0] for msg in received.values()])
        maxs = np.vstack([msg[1] for msg in received.values()])
        new_min = np.minimum(state.phase_min, mins.min(axis=0))
        new_max = np.maximum(state.phase_max, maxs.max(axis=0))
        rounds_into_phase = state.rounds_into_phase + 1

        if rounds_into_phase >= state.phase_length:
            # Phase end: move to the midpoint of the relayed extremes and
            # start accumulating a fresh phase from the new value.
            new_value = (new_min + new_max) / 2.0
            return AmortizedMidpointState(
                value=new_value,
                phase_min=new_value.copy(),
                phase_max=new_value.copy(),
                rounds_into_phase=0,
                phase_length=state.phase_length,
            )
        return AmortizedMidpointState(
            value=state.value,
            phase_min=new_min,
            phase_max=new_max,
            rounds_into_phase=rounds_into_phase,
            phase_length=state.phase_length,
        )

    def output(self, agent_id: int, state: AmortizedMidpointState) -> np.ndarray:
        return state.value

    # ------------------------------------------------------------------ #
    # Vectorized fast path
    # ------------------------------------------------------------------ #

    def supports_batch(self) -> bool:
        return True

    def batch_initial(self, values: np.ndarray) -> AmortizedMidpointBatchState:
        values = np.array(values, dtype=float)
        n = values.shape[-2]
        phase_length = self._phase_length_override if self._phase_length_override else max(n - 1, 1)
        return AmortizedMidpointBatchState(
            value=values,
            phase_min=values.copy(),
            phase_max=values.copy(),
            rounds_into_phase=0,
            phase_length=phase_length,
        )

    def batch_transition(
        self, batch_state: AmortizedMidpointBatchState, adjacency: np.ndarray, round_number: int
    ) -> AmortizedMidpointBatchState:
        # One fused reduction: the min runs over the phase-min tensor and the
        # max over the phase-max tensor, sharing a single mask resolution.
        received_min, received_max = masked_extreme_pair(
            adjacency, batch_state.phase_min, batch_state.phase_max
        )
        new_min = np.minimum(batch_state.phase_min, received_min)
        new_max = np.maximum(batch_state.phase_max, received_max)
        rounds_into_phase = batch_state.rounds_into_phase + 1

        if rounds_into_phase >= batch_state.phase_length:
            new_value = (new_min + new_max) / 2.0
            return AmortizedMidpointBatchState(
                value=new_value,
                phase_min=new_value.copy(),
                phase_max=new_value.copy(),
                rounds_into_phase=0,
                phase_length=batch_state.phase_length,
            )
        return AmortizedMidpointBatchState(
            value=batch_state.value,
            phase_min=new_min,
            phase_max=new_max,
            rounds_into_phase=rounds_into_phase,
            phase_length=batch_state.phase_length,
        )

    def batch_outputs(self, batch_state: AmortizedMidpointBatchState) -> np.ndarray:
        return batch_state.value

    def batch_map(self, batch_state: AmortizedMidpointBatchState, fn) -> AmortizedMidpointBatchState:
        return AmortizedMidpointBatchState(
            value=fn(batch_state.value),
            phase_min=fn(batch_state.phase_min),
            phase_max=fn(batch_state.phase_max),
            rounds_into_phase=batch_state.rounds_into_phase,
            phase_length=batch_state.phase_length,
        )

    def supports_batch_state(self) -> bool:
        return True

    def batch_state_from_states(
        self, states: Sequence[AmortizedMidpointState]
    ) -> AmortizedMidpointBatchState:
        states = tuple(states)
        if not states:
            raise AlgorithmError("cannot restore a batch state from zero agent states")
        phase_positions = {state.rounds_into_phase for state in states}
        phase_lengths = {state.phase_length for state in states}
        if len(phase_positions) != 1 or len(phase_lengths) != 1:
            raise AlgorithmError(
                "amortized-midpoint agents must be in lockstep to restore a batch state; "
                f"got phase positions {sorted(phase_positions)} and lengths {sorted(phase_lengths)}"
            )
        return AmortizedMidpointBatchState(
            value=np.stack([as_value(state.value) for state in states]),
            phase_min=np.stack([as_value(state.phase_min) for state in states]),
            phase_max=np.stack([as_value(state.phase_max) for state in states]),
            rounds_into_phase=phase_positions.pop(),
            phase_length=phase_lengths.pop(),
        )

    def batch_state_stack(
        self, batch_states: Sequence[AmortizedMidpointBatchState]
    ) -> AmortizedMidpointBatchState:
        states = tuple(batch_states)
        if not states:
            raise AlgorithmError("cannot stack zero batch states")
        positions = {state.rounds_into_phase for state in states}
        lengths = {state.phase_length for state in states}
        if len(positions) != 1 or len(lengths) != 1:
            raise AlgorithmError(
                "amortized-midpoint scenarios must be in lockstep to stack batch states; "
                f"got phase positions {sorted(positions)} and lengths {sorted(lengths)}"
            )
        return AmortizedMidpointBatchState(
            value=np.stack([state.value for state in states]),
            phase_min=np.stack([state.phase_min for state in states]),
            phase_max=np.stack([state.phase_max for state in states]),
            rounds_into_phase=positions.pop(),
            phase_length=lengths.pop(),
        )

    def batch_state_fixpoint(
        self,
        previous: AmortizedMidpointBatchState,
        new: AmortizedMidpointBatchState,
    ):
        """Scenarios whose amortized-midpoint outputs provably never change.

        After a *non-reset* round, ``new.phase_min == previous.value`` with
        ``previous.phase_min == previous.value`` implies
        ``masked_min(A, value) == value`` (the round folded the adjacency's
        masked minimum into extremes that did not move, and the self-loop
        bounds the masked minimum from above) — and symmetrically for the
        maximum.  From such a state every future round under the same
        adjacency keeps the extremes collapsed at ``value``, and every phase
        end computes ``(value + value) / 2``, which reproduces ``value``
        bit-for-bit whenever the doubling does not overflow (checked
        explicitly), so the outputs are fixed forever.  Reset rounds
        (``new.rounds_into_phase == 0``) collapse the extremes trivially and
        claim nothing.
        """
        lead = np.asarray(new.value).shape[:-2]
        if new.rounds_into_phase == 0:
            return np.zeros(lead, dtype=bool)
        collapsed_before = (
            (previous.phase_min == previous.value)
            & (previous.phase_max == previous.value)
        ).all(axis=(-2, -1))
        unchanged = (
            (new.value == previous.value)
            & (new.phase_min == previous.value)
            & (new.phase_max == previous.value)
        ).all(axis=(-2, -1))
        halving_exact = ((new.value + new.value) * 0.5 == new.value).all(axis=(-2, -1))
        return collapsed_before & unchanged & halving_exact

    def batch_states(self, batch_state: AmortizedMidpointBatchState) -> Tuple[AmortizedMidpointState, ...]:
        if batch_state.value.ndim != 2:
            raise AlgorithmError(
                f"per-agent states only exist for a single scenario, got shape {batch_state.value.shape}"
            )
        return tuple(
            AmortizedMidpointState(
                value=batch_state.value[i].copy(),
                phase_min=batch_state.phase_min[i].copy(),
                phase_max=batch_state.phase_max[i].copy(),
                rounds_into_phase=batch_state.rounds_into_phase,
                phase_length=batch_state.phase_length,
            )
            for i in range(batch_state.value.shape[0])
        )

    @property
    def name(self) -> str:
        if self._phase_length_override:
            return f"amortized-midpoint(phase={self._phase_length_override})"
        return "amortized-midpoint"
