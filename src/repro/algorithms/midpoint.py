"""The midpoint algorithm (Algorithm 2 of the paper).

Each round every agent broadcasts its value and updates it to the midpoint of
the smallest and largest received values.  In non-split network models this
contracts the value range by a factor 1/2 per round, which Theorem 2 shows to
be optimal (no algorithm, averaging or not, can beat 1/2 in a model containing
``deaf(G)``).

For dimension ``d > 1`` the update is applied coordinate-wise, following the
treatment in [Charron-Bost et al., ICALP'16].
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import ConvexCombinationAlgorithm, masked_min_max


class MidpointAlgorithm(ConvexCombinationAlgorithm):
    """Set the output to ``(min received + max received) / 2`` (coordinate-wise).

    Examples
    --------
    >>> algo = MidpointAlgorithm()
    >>> algo.combine(0, {0: np.array([0.0]), 1: np.array([1.0])}, 1)
    array([0.5])
    """

    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        values = np.vstack(list(received.values()))
        return (values.min(axis=0) + values.max(axis=0)) / 2.0

    def combine_all(
        self, adjacency: np.ndarray, values: np.ndarray, round_number: int
    ) -> Optional[np.ndarray]:
        lo, hi = masked_min_max(adjacency, values)
        return (lo + hi) / 2.0

    def round_invariant(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return "midpoint"
