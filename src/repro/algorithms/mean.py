"""Equal-weight averaging (the classical "agreement algorithm" baseline).

Each round the agent sets its value to the arithmetic mean of all values it
received.  This is the most common averaging rule in the distributed control
literature; Cao, Spielman and Morse [7] showed that in a non-split network
model with ``n`` agents its convergence rate is at least ``1 - 1/n`` — much
slower than the midpoint algorithm's 1/2 — which is why the paper's upper
bounds are stated for the midpoint family instead.  It is included here as
the baseline for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import ConvexCombinationAlgorithm, receive_mask


class MeanAlgorithm(ConvexCombinationAlgorithm):
    """Set the output to the arithmetic mean of the received values."""

    def combine(
        self, agent_id: int, received: Dict[int, np.ndarray], round_number: int
    ) -> np.ndarray:
        values = np.vstack(list(received.values()))
        return values.mean(axis=0)

    def combine_all(
        self, adjacency: np.ndarray, values: np.ndarray, round_number: int
    ) -> Optional[np.ndarray]:
        weights = receive_mask(adjacency).astype(float)
        counts = weights.sum(axis=-1)
        return (weights @ values) / counts[..., None]

    def round_invariant(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return "mean"
