"""Asynchronous rounds: algorithms that wait for ``n - f`` round messages.

Section 8.1 considers the widely used structure in which each agent, per
asynchronous round, broadcasts its round message, waits until it holds
``n - f`` messages of the current round (its own included), applies a state
transition, and moves to the next round.  :class:`RoundBasedAsyncAlgorithm`
wraps any synchronous :class:`~repro.algorithms.base.Algorithm` in exactly
this structure, so the midpoint/mean/amortized-midpoint algorithms can be run
unchanged in the asynchronous crash model.

The per-round *effective communication graph* (which senders' messages each
agent used) is recorded in the agent state; by construction every agent's
in-neighborhood has at least ``n - f`` members, i.e. the realized graphs
belong to the crash network model ``N_A`` — the observation on which the
Theorem 6 lower bound rests.

Performance note: the message buffers are maintained *incrementally*.  Each
delivery copies only the affected per-round buffer (copy-on-write), instead
of re-freezing and re-sorting the entire nested buffer structure on every
event as the original implementation did.  States remain immutable by
contract: all mappings stored on :class:`RoundBasedState` must be treated as
read-only snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Mapping, Tuple

import numpy as np

from repro.algorithms.base import Algorithm
from repro.asynchrony.simulator import AsyncAlgorithm, Broadcast
from repro.exceptions import AsynchronyError


@dataclass(frozen=True, eq=True)
class RoundBasedState:
    """State of the asynchronous-round wrapper around a synchronous algorithm.

    ``buffers`` maps round number -> sender -> buffered round message, and
    ``round_in_neighbors`` maps completed round -> senders used.  Both are
    plain dicts for speed but are never mutated after construction; steps
    build updated copies of only the entries they touch.
    """

    inner: Any
    current_round: int
    buffers: Mapping[int, Mapping[int, Any]]
    round_in_neighbors: Mapping[int, FrozenSet[int]]
    n: int
    f: int

    def buffer_dict(self) -> Dict[int, Dict[int, Any]]:
        """The buffered round messages as a mutable nested dict (a copy)."""
        return {rnd: dict(entries) for rnd, entries in self.buffers.items()}


def _with_buffered(
    buffers: Mapping[int, Mapping[int, Any]], round_number: int, sender: int, message: Any
) -> Dict[int, Mapping[int, Any]]:
    """Copy-on-write insert of one round message into the buffer structure."""
    updated = dict(buffers)
    round_buffer = dict(updated.get(round_number, ()))
    round_buffer[sender] = message
    updated[round_number] = round_buffer
    return updated


class RoundBasedAsyncAlgorithm(AsyncAlgorithm):
    """Run a synchronous algorithm in asynchronous rounds with quorum ``n - f``.

    Parameters
    ----------
    inner:
        The synchronous algorithm executed at each round advancement.
    """

    def __init__(self, inner: Algorithm) -> None:
        self._inner = inner

    @property
    def inner(self) -> Algorithm:
        """The wrapped synchronous algorithm."""
        return self._inner

    # ------------------------------------------------------------------ #
    # AsyncAlgorithm interface
    # ------------------------------------------------------------------ #

    def on_init(self, agent_id: int, initial_value: np.ndarray, n: int, f: int) -> RoundBasedState:
        if n - f < 1:
            raise AsynchronyError(f"the quorum n - f must be at least 1, got n={n}, f={f}")
        inner_state = self._inner.initial_state(agent_id, initial_value, n)
        return RoundBasedState(
            inner=inner_state,
            current_round=1,
            buffers={},
            round_in_neighbors={},
            n=n,
            f=f,
        )

    def on_start(self, agent_id: int, state: RoundBasedState) -> Tuple[RoundBasedState, List[Broadcast]]:
        payload = (state.current_round, self._inner.message(agent_id, state.inner))
        buffers = _with_buffered(state.buffers, state.current_round, agent_id, payload[1])
        new_state = replace(state, buffers=buffers)
        new_state, extra = self._advance_if_possible(agent_id, new_state)
        return new_state, [Broadcast(payload=payload, round_hint=state.current_round)] + extra

    def on_receive(
        self, agent_id: int, state: RoundBasedState, sender: int, payload: Any, time: float
    ) -> Tuple[RoundBasedState, List[Broadcast]]:
        message_round, message = payload
        if sender == agent_id:
            # The agent's own round message was already buffered when it was sent.
            return state, []
        if message_round < state.current_round:
            # Late message for a completed round: round structure ignores it.
            return state, []
        buffers = _with_buffered(state.buffers, message_round, sender, message)
        new_state = replace(state, buffers=buffers)
        return self._advance_if_possible(agent_id, new_state)

    def output(self, agent_id: int, state: RoundBasedState) -> np.ndarray:
        return np.asarray(self._inner.output(agent_id, state.inner), dtype=float)

    # ------------------------------------------------------------------ #
    # Analysis accessors
    # ------------------------------------------------------------------ #

    def completed_rounds(self, state: RoundBasedState) -> int:
        """How many asynchronous rounds the agent has completed."""
        return state.current_round - 1

    def effective_in_neighbors(self, state: RoundBasedState) -> Dict[int, FrozenSet[int]]:
        """Per completed round, the senders whose messages the agent used."""
        return dict(state.round_in_neighbors)

    @property
    def name(self) -> str:
        return f"async-rounds({self._inner.name})"

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _advance_if_possible(
        self, agent_id: int, state: RoundBasedState
    ) -> Tuple[RoundBasedState, List[Broadcast]]:
        quorum = state.n - state.f
        current_buffer = state.buffers.get(state.current_round, ())
        if len(current_buffer) < quorum:
            return state, []

        broadcasts: List[Broadcast] = []
        buffers = dict(state.buffers)
        inner = state.inner
        current_round = state.current_round
        in_neighbors = dict(state.round_in_neighbors)

        while len(buffers.get(current_round, ())) >= quorum:
            received = dict(buffers[current_round])
            inner = self._inner.transition(agent_id, inner, received, current_round)
            in_neighbors[current_round] = frozenset(received)
            del buffers[current_round]
            current_round += 1
            payload_message = self._inner.message(agent_id, inner)
            buffers = _with_buffered(buffers, current_round, agent_id, payload_message)
            broadcasts.append(
                Broadcast(payload=(current_round, payload_message), round_hint=current_round)
            )

        new_state = RoundBasedState(
            inner=inner,
            current_round=current_round,
            buffers=buffers,
            round_in_neighbors=in_neighbors,
            n=state.n,
            f=state.f,
        )
        return new_state, broadcasts
