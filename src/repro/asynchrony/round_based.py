"""Asynchronous rounds: algorithms that wait for ``n - f`` round messages.

Section 8.1 considers the widely used structure in which each agent, per
asynchronous round, broadcasts its round message, waits until it holds
``n - f`` messages of the current round (its own included), applies a state
transition, and moves to the next round.  :class:`RoundBasedAsyncAlgorithm`
wraps any synchronous :class:`~repro.algorithms.base.Algorithm` in exactly
this structure, so the midpoint/mean/amortized-midpoint algorithms can be run
unchanged in the asynchronous crash model.

The per-round *effective communication graph* (which senders' messages each
agent used) is recorded in the agent state; by construction every agent's
in-neighborhood has at least ``n - f`` members, i.e. the realized graphs
belong to the crash network model ``N_A`` — the observation on which the
Theorem 6 lower bound rests.

Performance note: the message buffers are maintained *incrementally*.  Each
delivery copies only the affected per-round buffer (copy-on-write), instead
of re-freezing and re-sorting the entire nested buffer structure on every
event as the original implementation did.  States remain immutable by
contract: all mappings stored on :class:`RoundBasedState` must be treated as
read-only snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from repro.algorithms.base import Algorithm
from repro.asynchrony.simulator import AsyncAlgorithm, Broadcast
from repro.exceptions import AsynchronyError


@dataclass(frozen=True, eq=True)
class RoundBasedState:
    """State of the asynchronous-round wrapper around a synchronous algorithm.

    ``buffers`` maps round number -> sender -> buffered round message, and
    ``round_in_neighbors`` maps completed round -> senders used.  Both are
    plain dicts for speed but are never mutated after construction; steps
    build updated copies of only the entries they touch.
    """

    inner: Any
    current_round: int
    buffers: Mapping[int, Mapping[int, Any]]
    round_in_neighbors: Mapping[int, FrozenSet[int]]
    n: int
    f: int
    #: Retransmissions of the current round's message under the "retry"
    #: timeout policy; reset to 0 whenever the agent advances a round.
    retry_attempts: int = 0
    #: Every round message this agent has sent (round -> message), kept so
    #: the "retry" policy can retransmit past rounds to lagging peers.
    #: Empty unless a round_timeout with the "retry" policy is configured.
    sent_messages: Mapping[int, Any] = None  # type: ignore[assignment]

    def buffer_dict(self) -> Dict[int, Dict[int, Any]]:
        """The buffered round messages as a mutable nested dict (a copy)."""
        return {rnd: dict(entries) for rnd, entries in self.buffers.items()}


def _with_buffered(
    buffers: Mapping[int, Mapping[int, Any]], round_number: int, sender: int, message: Any
) -> Dict[int, Mapping[int, Any]]:
    """Copy-on-write insert of one round message into the buffer structure."""
    updated = dict(buffers)
    round_buffer = dict(updated.get(round_number, ()))
    round_buffer[sender] = message
    updated[round_number] = round_buffer
    return updated


#: Valid graceful-degradation policies of the per-round receive timeout.
_TIMEOUT_POLICIES = ("proceed", "retry", "abort")


class RoundBasedAsyncAlgorithm(AsyncAlgorithm):
    """Run a synchronous algorithm in asynchronous rounds with quorum ``n - f``.

    Parameters
    ----------
    inner:
        The synchronous algorithm executed at each round advancement.
    round_timeout:
        Optional per-round receive timeout (in normalized time units).
        Without one (the default) an agent waits forever on its quorum — a
        fault schedule that drops too many round messages then surfaces as
        a starvation :class:`~repro.exceptions.AsynchronyError` when the
        event queue drains.  With a timeout the agent reacts per
        ``timeout_policy`` instead of waiting forever.
    timeout_policy:
        What an agent does when its round timeout expires below quorum:

        * ``"proceed"`` (default) — apply the round transition with
          whatever messages are buffered (its own included).  Graceful
          degradation: the realized effective graph of such a round may
          leave the crash model ``N_A``, trading the Theorem 6 guarantees
          for liveness.
        * ``"retry"`` — retransmit the agent's full round-message history
          (so peers stuck on earlier rounds catch up too) and keep
          waiting.  Retried sends draw fresh per-attempt drop decisions
          from the fault plan, so a lossy (but not silenced) link
          eventually delivers.
        * ``"abort"`` — raise an :class:`~repro.exceptions.AsynchronyError`
          naming the starved agent and round.
    """

    def __init__(
        self,
        inner: Algorithm,
        round_timeout: Optional[float] = None,
        timeout_policy: str = "proceed",
    ) -> None:
        if round_timeout is not None and round_timeout <= 0:
            raise AsynchronyError(f"round_timeout must be positive, got {round_timeout}")
        if timeout_policy not in _TIMEOUT_POLICIES:
            raise AsynchronyError(
                f"timeout_policy must be one of {_TIMEOUT_POLICIES}, got {timeout_policy!r}"
            )
        self._inner = inner
        self._round_timeout = round_timeout
        self._timeout_policy = timeout_policy

    @property
    def inner(self) -> Algorithm:
        """The wrapped synchronous algorithm."""
        return self._inner

    # ------------------------------------------------------------------ #
    # AsyncAlgorithm interface
    # ------------------------------------------------------------------ #

    def on_init(self, agent_id: int, initial_value: np.ndarray, n: int, f: int) -> RoundBasedState:
        if n - f < 2:
            # A quorum of 1 is always satisfied by the agent's own buffered
            # message, so the wrapper would advance rounds without bound in a
            # single event-free step.  Reject the degenerate configuration
            # loudly instead of hanging the simulator.
            raise AsynchronyError(
                f"the round quorum n - f must be at least 2, got n={n}, f={f}"
            )
        inner_state = self._inner.initial_state(agent_id, initial_value, n)
        return RoundBasedState(
            inner=inner_state,
            current_round=1,
            buffers={},
            round_in_neighbors={},
            n=n,
            f=f,
        )

    def on_start(self, agent_id: int, state: RoundBasedState) -> Tuple[RoundBasedState, List[Broadcast]]:
        payload = (state.current_round, self._inner.message(agent_id, state.inner))
        buffers = _with_buffered(state.buffers, state.current_round, agent_id, payload[1])
        new_state = replace(state, buffers=buffers)
        if self._tracks_history():
            new_state = replace(new_state, sent_messages={state.current_round: payload[1]})
        new_state, extra = self._advance_if_possible(agent_id, new_state)
        return new_state, [Broadcast(payload=payload, round_hint=state.current_round)] + extra

    def on_receive(
        self, agent_id: int, state: RoundBasedState, sender: int, payload: Any, time: float
    ) -> Tuple[RoundBasedState, List[Broadcast]]:
        message_round, message = payload
        if sender == agent_id:
            # The agent's own round message was already buffered when it was sent.
            return state, []
        if message_round < state.current_round:
            # Late message for a completed round: round structure ignores it.
            return state, []
        buffers = _with_buffered(state.buffers, message_round, sender, message)
        new_state = replace(state, buffers=buffers)
        return self._advance_if_possible(agent_id, new_state)

    def output(self, agent_id: int, state: RoundBasedState) -> np.ndarray:
        return np.asarray(self._inner.output(agent_id, state.inner), dtype=float)

    # ------------------------------------------------------------------ #
    # Timer / diagnosis hooks (graceful degradation under faults)
    # ------------------------------------------------------------------ #

    def timeout_after(self, agent_id: int, state: RoundBasedState) -> Optional[float]:
        return self._round_timeout

    def timeout_key(self, agent_id: int, state: RoundBasedState) -> Any:
        # Advancing a round or issuing a retry both re-arm a fresh timer.
        return (state.current_round, state.retry_attempts)

    def on_timeout(
        self, agent_id: int, state: RoundBasedState, time: float
    ) -> Tuple[RoundBasedState, List[Broadcast]]:
        if self._round_timeout is None:
            return state, []
        if self._timeout_policy == "abort":
            raise AsynchronyError(
                f"agent {agent_id} timed out in round {state.current_round} at time "
                f"{time} after waiting {self._round_timeout} time units for its "
                f"n - f = {state.n - state.f} quorum (timeout_policy='abort')",
                agent=agent_id,
                round_number=state.current_round,
                time=time,
            )
        if self._timeout_policy == "retry":
            history = state.sent_messages
            if history is None:
                history = {state.current_round: state.buffers[state.current_round][agent_id]}
            new_state = replace(state, retry_attempts=state.retry_attempts + 1)
            return new_state, [
                Broadcast(
                    payload=(round_number, message),
                    round_hint=round_number,
                    attempt=new_state.retry_attempts,
                )
                for round_number, message in sorted(history.items())
            ]
        return self._force_advance(agent_id, state)

    def starvation_info(self, agent_id: int, state: RoundBasedState) -> Optional[int]:
        # Round-based agents never quiesce: a drained event queue always
        # means this agent is stuck waiting on its current round's quorum.
        return state.current_round

    # ------------------------------------------------------------------ #
    # Analysis accessors
    # ------------------------------------------------------------------ #

    def completed_rounds(self, state: RoundBasedState) -> int:
        """How many asynchronous rounds the agent has completed."""
        return state.current_round - 1

    def effective_in_neighbors(self, state: RoundBasedState) -> Dict[int, FrozenSet[int]]:
        """Per completed round, the senders whose messages the agent used."""
        return dict(state.round_in_neighbors)

    @property
    def name(self) -> str:
        return f"async-rounds({self._inner.name})"

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _tracks_history(self) -> bool:
        """Whether sent round messages are retained (for "retry" timeouts)."""
        return self._round_timeout is not None and self._timeout_policy == "retry"

    def _advance_if_possible(
        self, agent_id: int, state: RoundBasedState
    ) -> Tuple[RoundBasedState, List[Broadcast]]:
        quorum = state.n - state.f
        current_buffer = state.buffers.get(state.current_round, ())
        if len(current_buffer) < quorum:
            return state, []

        broadcasts: List[Broadcast] = []
        buffers = dict(state.buffers)
        inner = state.inner
        current_round = state.current_round
        in_neighbors = dict(state.round_in_neighbors)
        sent = dict(state.sent_messages) if state.sent_messages is not None else None

        while len(buffers.get(current_round, ())) >= quorum:
            received = dict(buffers[current_round])
            inner = self._inner.transition(agent_id, inner, received, current_round)
            in_neighbors[current_round] = frozenset(received)
            del buffers[current_round]
            current_round += 1
            payload_message = self._inner.message(agent_id, inner)
            buffers = _with_buffered(buffers, current_round, agent_id, payload_message)
            if sent is not None:
                sent[current_round] = payload_message
            broadcasts.append(
                Broadcast(payload=(current_round, payload_message), round_hint=current_round)
            )

        new_state = RoundBasedState(
            inner=inner,
            current_round=current_round,
            buffers=buffers,
            round_in_neighbors=in_neighbors,
            n=state.n,
            f=state.f,
            sent_messages=sent,
        )
        return new_state, broadcasts

    def _force_advance(
        self, agent_id: int, state: RoundBasedState
    ) -> Tuple[RoundBasedState, List[Broadcast]]:
        """Apply the round transition below quorum (the "proceed" policy).

        Uses whatever round messages are buffered — always at least the
        agent's own — then continues normal quorum-based advancement for
        any already-buffered later rounds.
        """
        received = dict(state.buffers.get(state.current_round, ()))
        if not received:
            return state, []
        inner = self._inner.transition(agent_id, state.inner, received, state.current_round)
        in_neighbors = dict(state.round_in_neighbors)
        in_neighbors[state.current_round] = frozenset(received)
        buffers = dict(state.buffers)
        del buffers[state.current_round]
        next_round = state.current_round + 1
        message = self._inner.message(agent_id, inner)
        buffers = _with_buffered(buffers, next_round, agent_id, message)
        sent = None
        if state.sent_messages is not None:
            sent = dict(state.sent_messages)
            sent[next_round] = message
        forced = RoundBasedState(
            inner=inner,
            current_round=next_round,
            buffers=buffers,
            round_in_neighbors=in_neighbors,
            n=state.n,
            f=state.f,
            sent_messages=sent,
        )
        broadcasts = [Broadcast(payload=(next_round, message), round_hint=next_round)]
        advanced, extra = self._advance_if_possible(agent_id, forced)
        return advanced, broadcasts + extra
