"""Asynchronous rounds: algorithms that wait for ``n - f`` round messages.

Section 8.1 considers the widely used structure in which each agent, per
asynchronous round, broadcasts its round message, waits until it holds
``n - f`` messages of the current round (its own included), applies a state
transition, and moves to the next round.  :class:`RoundBasedAsyncAlgorithm`
wraps any synchronous :class:`~repro.algorithms.base.Algorithm` in exactly
this structure, so the midpoint/mean/amortized-midpoint algorithms can be run
unchanged in the asynchronous crash model.

The per-round *effective communication graph* (which senders' messages each
agent used) is recorded in the agent state; by construction every agent's
in-neighborhood has at least ``n - f`` members, i.e. the realized graphs
belong to the crash network model ``N_A`` — the observation on which the
Theorem 6 lower bound rests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Tuple

import numpy as np

from repro.algorithms.base import Algorithm
from repro.asynchrony.simulator import AsyncAlgorithm, Broadcast
from repro.exceptions import AsynchronyError


@dataclass(frozen=True)
class RoundBasedState:
    """State of the asynchronous-round wrapper around a synchronous algorithm."""

    inner: Any
    current_round: int
    buffers: Tuple[Tuple[int, Tuple[Tuple[int, Any], ...]], ...]
    round_in_neighbors: Tuple[Tuple[int, FrozenSet[int]], ...]
    n: int
    f: int

    def buffer_dict(self) -> Dict[int, Dict[int, Any]]:
        """The buffered round messages as a mutable nested dict."""
        return {rnd: dict(entries) for rnd, entries in self.buffers}


def _freeze_buffers(buffers: Dict[int, Dict[int, Any]]) -> Tuple[Tuple[int, Tuple[Tuple[int, Any], ...]], ...]:
    return tuple(
        (rnd, tuple(sorted(entries.items(), key=lambda kv: kv[0])))
        for rnd, entries in sorted(buffers.items())
    )


class RoundBasedAsyncAlgorithm(AsyncAlgorithm):
    """Run a synchronous algorithm in asynchronous rounds with quorum ``n - f``.

    Parameters
    ----------
    inner:
        The synchronous algorithm executed at each round advancement.
    """

    def __init__(self, inner: Algorithm) -> None:
        self._inner = inner

    @property
    def inner(self) -> Algorithm:
        """The wrapped synchronous algorithm."""
        return self._inner

    # ------------------------------------------------------------------ #
    # AsyncAlgorithm interface
    # ------------------------------------------------------------------ #

    def on_init(self, agent_id: int, initial_value: np.ndarray, n: int, f: int) -> RoundBasedState:
        if n - f < 1:
            raise AsynchronyError(f"the quorum n - f must be at least 1, got n={n}, f={f}")
        inner_state = self._inner.initial_state(agent_id, initial_value, n)
        return RoundBasedState(
            inner=inner_state,
            current_round=1,
            buffers=_freeze_buffers({}),
            round_in_neighbors=(),
            n=n,
            f=f,
        )

    def on_start(self, agent_id: int, state: RoundBasedState) -> Tuple[RoundBasedState, List[Broadcast]]:
        payload = (state.current_round, self._inner.message(agent_id, state.inner))
        buffers = state.buffer_dict()
        buffers.setdefault(state.current_round, {})[agent_id] = payload[1]
        new_state = replace(state, buffers=_freeze_buffers(buffers))
        new_state, extra = self._advance_if_possible(agent_id, new_state)
        return new_state, [Broadcast(payload=payload, round_hint=state.current_round)] + extra

    def on_receive(
        self, agent_id: int, state: RoundBasedState, sender: int, payload: Any, time: float
    ) -> Tuple[RoundBasedState, List[Broadcast]]:
        message_round, message = payload
        if sender == agent_id:
            # The agent's own round message was already buffered when it was sent.
            return state, []
        if message_round < state.current_round:
            # Late message for a completed round: round structure ignores it.
            return state, []
        buffers = state.buffer_dict()
        buffers.setdefault(message_round, {})[sender] = message
        new_state = replace(state, buffers=_freeze_buffers(buffers))
        return self._advance_if_possible(agent_id, new_state)

    def output(self, agent_id: int, state: RoundBasedState) -> np.ndarray:
        return np.asarray(self._inner.output(agent_id, state.inner), dtype=float)

    # ------------------------------------------------------------------ #
    # Analysis accessors
    # ------------------------------------------------------------------ #

    def completed_rounds(self, state: RoundBasedState) -> int:
        """How many asynchronous rounds the agent has completed."""
        return state.current_round - 1

    def effective_in_neighbors(self, state: RoundBasedState) -> Dict[int, FrozenSet[int]]:
        """Per completed round, the senders whose messages the agent used."""
        return dict(state.round_in_neighbors)

    @property
    def name(self) -> str:
        return f"async-rounds({self._inner.name})"

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _advance_if_possible(
        self, agent_id: int, state: RoundBasedState
    ) -> Tuple[RoundBasedState, List[Broadcast]]:
        broadcasts: List[Broadcast] = []
        quorum = state.n - state.f
        buffers = state.buffer_dict()
        inner = state.inner
        current_round = state.current_round
        in_neighbors = dict(state.round_in_neighbors)

        while len(buffers.get(current_round, {})) >= quorum:
            received = dict(buffers[current_round])
            inner = self._inner.transition(agent_id, inner, received, current_round)
            in_neighbors[current_round] = frozenset(received)
            del buffers[current_round]
            current_round += 1
            payload_message = self._inner.message(agent_id, inner)
            buffers.setdefault(current_round, {})[agent_id] = payload_message
            broadcasts.append(
                Broadcast(payload=(current_round, payload_message), round_hint=current_round)
            )

        new_state = RoundBasedState(
            inner=inner,
            current_round=current_round,
            buffers=_freeze_buffers(buffers),
            round_in_neighbors=tuple(sorted(in_neighbors.items())),
            n=state.n,
            f=state.f,
        )
        return new_state, broadcasts
