"""Event-driven simulator for asynchronous message-passing systems with crashes.

Agents perform receive–compute–broadcast steps (Section 8): an agent reacts
to the start of the execution and to each message delivery by updating its
state and possibly broadcasting.  Message delays are assigned by a
:class:`~repro.asynchrony.schedulers.DelayScheduler` and normalized so the
maximum delay is 1; crashes are described by a
:class:`~repro.asynchrony.schedulers.CrashSchedule` and may be unclean (the
final broadcast reaches only a subset of the agents).

The simulator records the full output trajectory of every agent so that
experiments can evaluate agreement times (Theorem 7) and per-round
contraction (Theorem 6).
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from repro.asynchrony.schedulers import ConstantDelayScheduler, CrashSchedule, DelayScheduler
from repro.exceptions import AsynchronyError
from repro.types import ValuesLike, as_value_matrix, diameter


@dataclass
class Broadcast:
    """A broadcast action returned by an agent's step.

    Attributes
    ----------
    payload:
        The message content (opaque to the simulator).
    round_hint:
        Optional asynchronous-round tag; passed to the delay scheduler so
        that round-aware adversaries can slow down specific round messages.
    """

    payload: Any
    round_hint: Optional[int] = None


class AsyncAlgorithm(ABC):
    """A deterministic reactive agent for the asynchronous model."""

    @abstractmethod
    def on_init(self, agent_id: int, initial_value: np.ndarray, n: int, f: int) -> Any:
        """The agent's state at time 0, before any step."""

    @abstractmethod
    def on_start(self, agent_id: int, state: Any) -> Tuple[Any, List[Broadcast]]:
        """The agent's initial step at time 0: returns (new state, broadcasts)."""

    @abstractmethod
    def on_receive(
        self, agent_id: int, state: Any, sender: int, payload: Any, time: float
    ) -> Tuple[Any, List[Broadcast]]:
        """React to a delivered message: returns (new state, broadcasts)."""

    @abstractmethod
    def output(self, agent_id: int, state: Any) -> np.ndarray:
        """The agent's current output value ``y_i``."""

    @property
    def name(self) -> str:
        """Human-readable algorithm name."""
        return type(self).__name__


@dataclass
class OutputSample:
    """An output value of one agent at one point in simulated time."""

    time: float
    agent: int
    value: np.ndarray


@dataclass
class AsyncExecution:
    """The result of an asynchronous simulation.

    All time-indexed queries (``outputs_at``, ``correct_diameter_at``,
    ``agreement_time``) share one code path: a single chronological sweep
    over the recorded samples (:meth:`timeline`), instead of rescanning the
    full sample list per queried time.
    """

    algorithm_name: str
    n: int
    f: int
    final_time: float
    final_outputs: np.ndarray
    samples: List[OutputSample] = field(default_factory=list)
    crashed_agents: frozenset = frozenset()
    delivered_messages: int = 0

    def correct_agents(self) -> List[int]:
        """The agents that never crash."""
        return [i for i in range(self.n) if i not in self.crashed_agents]

    def _sorted_samples(self) -> List[OutputSample]:
        """The samples in chronological order (stable, so same-time updates
        apply in recording order).

        Cached, and the cache is keyed on a fingerprint of the sample list
        (identity and time of every sample) rather than its length alone:
        post-run mutations that keep the length — replacing a sample,
        editing a sample's ``time`` in place, reordering the list — must
        invalidate the cache too, or every time-indexed query would silently
        use the stale order (regression test in ``tests/test_async.py``).
        Values may be edited freely: the sorted list holds the same sample
        objects, so value edits are visible without a resort.
        """
        fingerprint = tuple((id(sample), sample.time) for sample in self.samples)
        cached = getattr(self, "_sorted_cache", None)
        if cached is None or getattr(self, "_sorted_cache_key", None) != fingerprint:
            cached = sorted(self.samples, key=lambda sample: sample.time)
            self._sorted_cache = cached
            self._sorted_cache_key = fingerprint
        return cached

    def timeline(self) -> Iterator[Tuple[float, np.ndarray, FrozenSet[int]]]:
        """Chronological sweep yielding ``(time, outputs, changed_agents)``.

        One tuple per distinct sample time, with ``outputs`` the full
        ``(n, d)`` output matrix *after* applying every sample at that time
        and ``changed_agents`` the agents whose output was updated.  The
        yielded array is reused between steps; copy it to keep a snapshot.
        """
        samples = self._sorted_samples()
        outputs = self.final_outputs.copy()
        index = 0
        total = len(samples)
        while index < total:
            time = samples[index].time
            changed = set()
            while index < total and samples[index].time == time:
                outputs[samples[index].agent] = samples[index].value
                changed.add(samples[index].agent)
                index += 1
            yield time, outputs, frozenset(changed)

    def outputs_at(self, time: float) -> np.ndarray:
        """The outputs of all agents at simulated time ``time`` (last value before ``time``)."""
        outputs = self.final_outputs.copy()
        for step_time, step_outputs, _changed in self.timeline():
            if step_time > time:
                break
            outputs[:] = step_outputs
        return outputs

    def correct_diameter_at(self, time: float) -> float:
        """Diameter of the correct agents' outputs at ``time``."""
        outputs = self.outputs_at(time)
        correct = self.correct_agents()
        return diameter(outputs[correct])

    def agreement_time(self, tolerance: float = 0.0) -> Optional[float]:
        """The earliest time after which all correct agents' outputs stay within ``tolerance``.

        Returns None if they never do within the simulated horizon.
        """
        correct = self.correct_agents()
        correct_set = frozenset(correct)
        agreement_since: Optional[float] = None
        seen_any = False
        for time, outputs, changed in self.timeline():
            seen_any = True
            if agreement_since is not None and not (changed & correct_set):
                continue  # no correct output changed: the diameter is unchanged
            if diameter(outputs[correct]) <= tolerance + 1e-12:
                if agreement_since is None:
                    agreement_since = time
            else:
                agreement_since = None
        if not seen_any and diameter(self.final_outputs[correct]) <= tolerance + 1e-12:
            return 0.0
        return agreement_since


class AsynchronousSimulator:
    """Run an :class:`AsyncAlgorithm` under chosen delays and crashes.

    Parameters
    ----------
    algorithm:
        The reactive agent algorithm.
    initial_values:
        One initial value per agent.
    f:
        The crash budget (the crash schedule may use at most ``f`` faults).
    delay_scheduler:
        Assigns delivery delays; defaults to the worst case (all delays 1).
    crash_schedule:
        The crash faults; defaults to no crashes.
    max_time:
        Simulation horizon in normalized time units.
    max_events:
        Safety cap on the number of processed events.
    """

    def __init__(
        self,
        algorithm: AsyncAlgorithm,
        initial_values: ValuesLike,
        f: int,
        delay_scheduler: Optional[DelayScheduler] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        max_time: float = 50.0,
        max_events: int = 200_000,
    ) -> None:
        values = as_value_matrix(initial_values)
        self._algorithm = algorithm
        self._values = values
        self._n = values.shape[0]
        self._f = f
        if f < 0 or f >= self._n:
            raise AsynchronyError(f"need 0 <= f < n, got f={f}, n={self._n}")
        self._delays = delay_scheduler or ConstantDelayScheduler()
        self._crashes = crash_schedule or CrashSchedule()
        self._crashes.validate(self._n, f)
        self._max_time = max_time
        self._max_events = max_events

    def run(self) -> AsyncExecution:
        """Run the simulation until the horizon or until no events remain."""
        n = self._n
        states: List[Any] = [
            self._algorithm.on_init(i, self._values[i], n, self._f) for i in range(n)
        ]
        outputs = np.vstack(
            [np.asarray(self._algorithm.output(i, states[i]), dtype=float) for i in range(n)]
        )
        samples: List[OutputSample] = [
            OutputSample(time=0.0, agent=i, value=outputs[i].copy()) for i in range(n)
        ]
        queue: List[Tuple[float, int, int, int, Any, Optional[int]]] = []
        counter = itertools.count()
        delivered = 0

        def schedule_broadcasts(sender: int, time: float, broadcasts: List[Broadcast]) -> None:
            fault = self._crashes.fault_of(sender)
            for broadcast in broadcasts:
                recipients = range(n)
                if fault is not None and abs(time - fault.time) < 1e-12:
                    if fault.final_broadcast_recipients is not None:
                        recipients = sorted(fault.final_broadcast_recipients | {sender})
                for recipient in recipients:
                    delay = self._delays.delay(sender, recipient, time, broadcast.round_hint)
                    if delay <= 0:
                        raise AsynchronyError("delays must be strictly positive")
                    heapq.heappush(
                        queue,
                        (time + delay, next(counter), recipient, sender, broadcast.payload, broadcast.round_hint),
                    )

        # Time 0: every not-yet-crashed agent performs its initial step.
        for i in range(n):
            fault = self._crashes.fault_of(i)
            if fault is not None and fault.time < 0:
                continue
            if fault is not None and fault.time < 1e-12 and fault.final_broadcast_recipients is None:
                # Crash before doing anything (clean crash at time 0 with no final broadcast).
                continue
            new_state, broadcasts = self._algorithm.on_start(i, states[i])
            states[i] = new_state
            self._record_output(samples, outputs, i, 0.0, states[i])
            schedule_broadcasts(i, 0.0, broadcasts)

        events_processed = 0
        current_time = 0.0
        while queue and events_processed < self._max_events:
            time, _seq, recipient, sender, payload, _round_hint = heapq.heappop(queue)
            if time > self._max_time:
                break
            current_time = time
            events_processed += 1
            fault = self._crashes.fault_of(recipient)
            if fault is not None and time > fault.time:
                continue  # the recipient has crashed and takes no more steps
            new_state, broadcasts = self._algorithm.on_receive(
                recipient, states[recipient], sender, payload, time
            )
            states[recipient] = new_state
            delivered += 1
            self._record_output(samples, outputs, recipient, time, new_state)
            schedule_broadcasts(recipient, time, broadcasts)

        if events_processed >= self._max_events:
            raise AsynchronyError(
                f"simulation exceeded {self._max_events} events; the algorithm may not quiesce"
            )

        return AsyncExecution(
            algorithm_name=self._algorithm.name,
            n=n,
            f=self._f,
            final_time=current_time,
            final_outputs=outputs.copy(),
            samples=samples,
            crashed_agents=self._crashes.crashed_agents,
            delivered_messages=delivered,
        )

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _record_output(
        self,
        samples: List[OutputSample],
        outputs: np.ndarray,
        agent: int,
        time: float,
        state: Any,
    ) -> None:
        value = np.asarray(self._algorithm.output(agent, state), dtype=float)
        if not np.array_equal(value, outputs[agent]):
            outputs[agent] = value
            samples.append(OutputSample(time=time, agent=agent, value=value.copy()))
