"""Event-driven simulator for asynchronous message-passing systems with crashes.

Agents perform receive–compute–broadcast steps (Section 8): an agent reacts
to the start of the execution and to each message delivery by updating its
state and possibly broadcasting.  Message delays are assigned by a
:class:`~repro.asynchrony.schedulers.DelayScheduler` and normalized so the
maximum delay is 1; crashes are described by a
:class:`~repro.asynchrony.schedulers.CrashSchedule` and may be unclean (the
final broadcast reaches only a subset of the agents).

The simulator records the full output trajectory of every agent so that
experiments can evaluate agreement times (Theorem 7) and per-round
contraction (Theorem 6).

Fault injection: a :class:`~repro.faults.FaultPlan` gates every scheduled
delivery through the same deterministic per-``(scenario, round)`` masks the
batched ensemble engine compiles — round-tagged messages are dropped,
duplicated, jittered or silenced (crash/late-join) bit-for-bit consistently
with the vectorized path.  Round tags come from ``Broadcast.round_hint``
(the round-based wrapper sets it); untagged broadcasts are tagged by their
per-sender send index.  Plan crashes without a ``recovery_round`` halt the
agent after its final broadcast; crashes *with* a recovery round model a
partitioned-but-alive agent (outbound messages suppressed during the
outage) — the lockstep engines instead freeze the agent's state, the one
documented semantic divergence between the two consumers.

Deliveries at coinciding timestamps are applied as one batched step: the
event group is processed together and each touched agent's output is
recorded once per timestamp (time-indexed queries already collapse
same-time samples, so this is behavior-preserving and keeps the sample
list small under synchronized lockstep schedules).
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.asynchrony.schedulers import ConstantDelayScheduler, CrashSchedule, DelayScheduler
from repro.exceptions import AsynchronyError
from repro.faults import FaultPlan, FaultSpec, as_fault_plan
from repro.types import ValuesLike, as_value_matrix, diameter

#: Sentinel "sender" of timer events on the event heap.
_TIMER_SENDER = -1


@dataclass
class Broadcast:
    """A broadcast action returned by an agent's step.

    Attributes
    ----------
    payload:
        The message content (opaque to the simulator).
    round_hint:
        Optional asynchronous-round tag; passed to the delay scheduler so
        that round-aware adversaries can slow down specific round messages,
        and to the fault plan so drops/crashes hit the intended round.
    attempt:
        Retransmission attempt (0 = the original send).  Retried sends draw
        their drop decision from a dedicated per-attempt fault stream so a
        retry is not deterministically lost to the original drop draw.
    """

    payload: Any
    round_hint: Optional[int] = None
    attempt: int = 0


class AsyncAlgorithm(ABC):
    """A deterministic reactive agent for the asynchronous model."""

    @abstractmethod
    def on_init(self, agent_id: int, initial_value: np.ndarray, n: int, f: int) -> Any:
        """The agent's state at time 0, before any step."""

    @abstractmethod
    def on_start(self, agent_id: int, state: Any) -> Tuple[Any, List[Broadcast]]:
        """The agent's initial step at time 0: returns (new state, broadcasts)."""

    @abstractmethod
    def on_receive(
        self, agent_id: int, state: Any, sender: int, payload: Any, time: float
    ) -> Tuple[Any, List[Broadcast]]:
        """React to a delivered message: returns (new state, broadcasts)."""

    @abstractmethod
    def output(self, agent_id: int, state: Any) -> np.ndarray:
        """The agent's current output value ``y_i``."""

    # ------------------------------------------------------------------ #
    # Optional timer / diagnosis hooks (default: no timers, no starvation)
    # ------------------------------------------------------------------ #

    def timeout_after(self, agent_id: int, state: Any) -> Optional[float]:
        """How long the agent is willing to wait in its current state.

        ``None`` (the default) arms no timer.  When a value is returned the
        simulator schedules an :meth:`on_timeout` step that many time units
        after the agent's last step — unless :meth:`timeout_key` changes
        first (i.e. the agent made progress and the timer is stale).
        """
        return None

    def timeout_key(self, agent_id: int, state: Any) -> Any:
        """Progress marker of the armed timer (e.g. the current round).

        A pending timer only fires while the agent's key still equals the
        key it was armed with; steps that change the key implicitly cancel
        the timer (and re-arm a fresh one via :meth:`timeout_after`).
        """
        return None

    def on_timeout(self, agent_id: int, state: Any, time: float) -> Tuple[Any, List[Broadcast]]:
        """React to an expired timer: returns (new state, broadcasts)."""
        return state, []

    def starvation_info(self, agent_id: int, state: Any) -> Optional[int]:
        """The round the agent is stuck waiting on, or ``None`` if quiescent.

        Consulted when the event queue drains: algorithms that legitimately
        quiesce (e.g. MinRelay) return ``None``; round-based algorithms
        return their current round so the simulator can raise a diagnosable
        starvation error instead of silently returning a stalled execution.
        """
        return None

    @property
    def name(self) -> str:
        """Human-readable algorithm name."""
        return type(self).__name__


@dataclass
class OutputSample:
    """An output value of one agent at one point in simulated time."""

    time: float
    agent: int
    value: np.ndarray


@dataclass
class AsyncExecution:
    """The result of an asynchronous simulation.

    All time-indexed queries (``outputs_at``, ``correct_diameter_at``,
    ``agreement_time``) share one code path: a single chronological sweep
    over the recorded samples (:meth:`timeline`), instead of rescanning the
    full sample list per queried time.
    """

    algorithm_name: str
    n: int
    f: int
    final_time: float
    final_outputs: np.ndarray
    samples: List[OutputSample] = field(default_factory=list)
    crashed_agents: frozenset = frozenset()
    delivered_messages: int = 0

    def correct_agents(self) -> List[int]:
        """The agents that never crash."""
        return [i for i in range(self.n) if i not in self.crashed_agents]

    def _sorted_samples(self) -> List[OutputSample]:
        """The samples in chronological order (stable, so same-time updates
        apply in recording order).

        Cached, and the cache is keyed on a fingerprint of the sample list
        (identity and time of every sample) rather than its length alone:
        post-run mutations that keep the length — replacing a sample,
        editing a sample's ``time`` in place, reordering the list — must
        invalidate the cache too, or every time-indexed query would silently
        use the stale order (regression test in ``tests/test_async.py``).
        Values may be edited freely: the sorted list holds the same sample
        objects, so value edits are visible without a resort.
        """
        fingerprint = tuple((id(sample), sample.time) for sample in self.samples)
        cached = getattr(self, "_sorted_cache", None)
        if cached is None or getattr(self, "_sorted_cache_key", None) != fingerprint:
            cached = sorted(self.samples, key=lambda sample: sample.time)
            self._sorted_cache = cached
            self._sorted_cache_key = fingerprint
        return cached

    def timeline(self) -> Iterator[Tuple[float, np.ndarray, FrozenSet[int]]]:
        """Chronological sweep yielding ``(time, outputs, changed_agents)``.

        One tuple per distinct sample time, with ``outputs`` the full
        ``(n, d)`` output matrix *after* applying every sample at that time
        and ``changed_agents`` the agents whose output was updated.  The
        yielded array is reused between steps; copy it to keep a snapshot.
        """
        samples = self._sorted_samples()
        outputs = self.final_outputs.copy()
        index = 0
        total = len(samples)
        while index < total:
            time = samples[index].time
            changed = set()
            while index < total and samples[index].time == time:
                outputs[samples[index].agent] = samples[index].value
                changed.add(samples[index].agent)
                index += 1
            yield time, outputs, frozenset(changed)

    def outputs_at(self, time: float) -> np.ndarray:
        """The outputs of all agents at simulated time ``time`` (last value before ``time``)."""
        outputs = self.final_outputs.copy()
        for step_time, step_outputs, _changed in self.timeline():
            if step_time > time:
                break
            outputs[:] = step_outputs
        return outputs

    def correct_diameter_at(self, time: float) -> float:
        """Diameter of the correct agents' outputs at ``time``."""
        outputs = self.outputs_at(time)
        correct = self.correct_agents()
        return diameter(outputs[correct])

    def agreement_time(self, tolerance: float = 0.0) -> Optional[float]:
        """The earliest time after which all correct agents' outputs stay within ``tolerance``.

        Returns None if they never do within the simulated horizon.
        """
        correct = self.correct_agents()
        correct_set = frozenset(correct)
        agreement_since: Optional[float] = None
        seen_any = False
        for time, outputs, changed in self.timeline():
            seen_any = True
            if agreement_since is not None and not (changed & correct_set):
                continue  # no correct output changed: the diameter is unchanged
            if diameter(outputs[correct]) <= tolerance + 1e-12:
                if agreement_since is None:
                    agreement_since = time
            else:
                agreement_since = None
        if not seen_any and diameter(self.final_outputs[correct]) <= tolerance + 1e-12:
            return 0.0
        return agreement_since


class AsynchronousSimulator:
    """Run an :class:`AsyncAlgorithm` under chosen delays and crashes.

    Parameters
    ----------
    algorithm:
        The reactive agent algorithm.
    initial_values:
        One initial value per agent.
    f:
        The crash budget (the crash schedule may use at most ``f`` faults).
    delay_scheduler:
        Assigns delivery delays; defaults to the worst case (all delays 1).
    crash_schedule:
        The crash faults; defaults to no crashes.
    fault_plan:
        Optional round-indexed :class:`~repro.faults.FaultPlan` (or
        :class:`~repro.faults.FaultSpec`): message drops, duplication,
        delay jitter, clean/unclean crashes with optional recovery, and
        late joins, sampled from the same deterministic streams as the
        batched ensemble engine.  A zero plan is normalized away and the
        simulation runs its untouched fault-free path.
    fault_scenario:
        The ensemble scenario index whose fault streams this simulation
        realizes (so a simulator run can be compared against scenario
        ``fault_scenario`` of a faulted batched ensemble).
    max_time:
        Simulation horizon in normalized time units.
    max_events:
        Safety cap on the number of processed events.
    """

    def __init__(
        self,
        algorithm: AsyncAlgorithm,
        initial_values: ValuesLike,
        f: int,
        delay_scheduler: Optional[DelayScheduler] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        fault_plan: Optional[Union[FaultPlan, FaultSpec]] = None,
        fault_scenario: int = 0,
        max_time: float = 50.0,
        max_events: int = 200_000,
    ) -> None:
        values = as_value_matrix(initial_values)
        self._algorithm = algorithm
        self._values = values
        self._n = values.shape[0]
        self._f = f
        if f < 0 or f >= self._n:
            raise AsynchronyError(f"need 0 <= f < n, got f={f}, n={self._n}")
        self._delays = delay_scheduler or ConstantDelayScheduler()
        self._crashes = crash_schedule or CrashSchedule()
        self._crashes.validate(self._n, f)
        self._fault_plan = as_fault_plan(fault_plan)
        if self._fault_plan is not None:
            self._fault_plan.validate_for(self._n, f=self._f)
        if fault_scenario < 0:
            raise AsynchronyError(f"fault_scenario must be non-negative, got {fault_scenario}")
        self._fault_scenario = fault_scenario
        self._max_time = max_time
        self._max_events = max_events

    def run(self) -> AsyncExecution:
        """Run the simulation until the horizon or until no events remain."""
        n = self._n
        plan = self._fault_plan
        scenario = self._fault_scenario
        states: List[Any] = [
            self._algorithm.on_init(i, self._values[i], n, self._f) for i in range(n)
        ]
        outputs = np.vstack(
            [np.asarray(self._algorithm.output(i, states[i]), dtype=float) for i in range(n)]
        )
        samples: List[OutputSample] = [
            OutputSample(time=0.0, agent=i, value=outputs[i].copy()) for i in range(n)
        ]
        queue: List[Tuple[float, int, int, int, Any, Optional[int]]] = []
        counter = itertools.count()
        delivered = 0
        send_counts = [0] * n  # round tags of untagged broadcasts (per-sender send index)
        halted: set = set()  # plan-crashed agents that take no more steps
        armed: Dict[int, Any] = {}  # agent -> timeout key its pending timer was armed with
        mask_cache: Dict[int, Optional[np.ndarray]] = {}

        def keep_mask(tag: int) -> Optional[np.ndarray]:
            if tag not in mask_cache:
                mask_cache[tag] = plan.round_mask(tag, scenario, n)
            return mask_cache[tag]

        def schedule_broadcasts(sender: int, time: float, broadcasts: List[Broadcast]) -> None:
            fault = self._crashes.fault_of(sender)
            for broadcast in broadcasts:
                send_counts[sender] += 1
                tag = broadcast.round_hint if broadcast.round_hint is not None else send_counts[sender]
                recipients = range(n)
                if fault is not None and abs(time - fault.time) < 1e-12:
                    if fault.final_broadcast_recipients is not None:
                        recipients = sorted(fault.final_broadcast_recipients | {sender})
                mask = keep_mask(tag) if plan is not None else None
                for recipient in recipients:
                    if mask is not None:
                        if broadcast.attempt > 0:
                            if not plan.retry_delivers(tag, broadcast.attempt, scenario, sender, recipient, n):
                                continue
                        elif not mask[sender, recipient]:
                            continue  # dropped, or the sender is silent this round
                    delay = self._delays.delay(sender, recipient, time, broadcast.round_hint)
                    if delay <= 0:
                        raise AsynchronyError("delays must be strictly positive")
                    if plan is not None and sender != recipient:
                        delay = plan.jittered_delay(tag, scenario, sender, recipient, n, delay)
                    heapq.heappush(
                        queue,
                        (time + delay, next(counter), recipient, sender, broadcast.payload, broadcast.round_hint),
                    )
                    if (
                        plan is not None
                        and sender != recipient
                        and plan.duplicates(tag, scenario, sender, recipient, n)
                    ):
                        duplicate_delay = plan.duplicate_delay(tag, scenario, sender, recipient, n, delay)
                        heapq.heappush(
                            queue,
                            (
                                time + duplicate_delay,
                                next(counter),
                                recipient,
                                sender,
                                broadcast.payload,
                                broadcast.round_hint,
                            ),
                        )
                if plan is not None:
                    crash = plan._crash_of(sender)
                    if crash is not None and crash.recovery_round is None and tag >= crash.round:
                        halted.add(sender)  # the final broadcast has been sent

        def arm_timer(agent: int, time: float) -> None:
            if agent in halted:
                return
            timeout = self._algorithm.timeout_after(agent, states[agent])
            if timeout is None:
                return
            if timeout <= 0:
                raise AsynchronyError(f"timeouts must be strictly positive, got {timeout}")
            key = self._algorithm.timeout_key(agent, states[agent])
            if armed.get(agent) == key:
                return  # an equivalent timer is already pending
            armed[agent] = key
            heapq.heappush(queue, (time + timeout, next(counter), agent, _TIMER_SENDER, key, None))

        # Time 0: every not-yet-crashed agent performs its initial step.
        for i in range(n):
            fault = self._crashes.fault_of(i)
            if fault is not None and fault.time < 0:
                continue
            if fault is not None and fault.time < 1e-12 and fault.final_broadcast_recipients is None:
                # Crash before doing anything (clean crash at time 0 with no final broadcast).
                continue
            new_state, broadcasts = self._algorithm.on_start(i, states[i])
            states[i] = new_state
            self._record_output(samples, outputs, i, 0.0, states[i])
            schedule_broadcasts(i, 0.0, broadcasts)
            arm_timer(i, 0.0)

        events_processed = 0
        current_time = 0.0
        horizon_reached = False
        while queue and events_processed < self._max_events and not horizon_reached:
            # Batched delivery: pop *all* events at the next timestamp and
            # apply them as one step, recording each touched agent's output
            # once per timestamp.
            group_time = queue[0][0]
            if group_time > self._max_time:
                horizon_reached = True
                break
            current_time = group_time
            touched: List[int] = []
            touched_set: set = set()
            while queue and queue[0][0] == group_time and events_processed < self._max_events:
                time, _seq, recipient, sender, payload, _round_hint = heapq.heappop(queue)
                events_processed += 1
                if recipient in halted:
                    continue  # the recipient crashed under the fault plan
                fault = self._crashes.fault_of(recipient)
                if fault is not None and time > fault.time:
                    continue  # the recipient has crashed and takes no more steps
                if sender == _TIMER_SENDER:
                    if armed.get(recipient) != payload:
                        continue  # stale timer: the agent made progress since arming
                    del armed[recipient]
                    new_state, broadcasts = self._algorithm.on_timeout(
                        recipient, states[recipient], time
                    )
                else:
                    new_state, broadcasts = self._algorithm.on_receive(
                        recipient, states[recipient], sender, payload, time
                    )
                    delivered += 1
                states[recipient] = new_state
                if recipient not in touched_set:
                    touched_set.add(recipient)
                    touched.append(recipient)
                schedule_broadcasts(recipient, time, broadcasts)
                arm_timer(recipient, time)
            for agent in touched:
                self._record_output(samples, outputs, agent, group_time, states[agent])

        if events_processed >= self._max_events:
            raise AsynchronyError(
                f"simulation exceeded {self._max_events} events; the algorithm may not quiesce"
            )

        if not queue and not horizon_reached:
            self._check_starvation(states, halted, current_time)

        plan_crashed: FrozenSet[int] = frozenset(
            crash.agent
            for crash in (plan.crashes if plan is not None else ())
            if crash.recovery_round is None
        )
        return AsyncExecution(
            algorithm_name=self._algorithm.name,
            n=n,
            f=self._f,
            final_time=current_time,
            final_outputs=outputs.copy(),
            samples=samples,
            crashed_agents=self._crashes.crashed_agents | plan_crashed,
            delivered_messages=delivered,
        )

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _check_starvation(self, states: List[Any], halted: set, current_time: float) -> None:
        """Raise a diagnosable error when the queue drained with agents stuck.

        A fault schedule that drops all of a round's messages leaves
        round-based agents waiting forever on a quorum that can no longer
        form — the event queue simply drains.  Algorithms report the round
        they are stuck on via :meth:`AsyncAlgorithm.starvation_info`
        (``None`` = legitimately quiescent); the first starved live agent is
        named in the raised :class:`~repro.exceptions.AsynchronyError`.
        """
        for agent in range(self._n):
            if agent in halted:
                continue
            fault = self._crashes.fault_of(agent)
            if fault is not None and fault.time <= current_time:
                continue  # crashed under the crash schedule: not starved, dead
            stuck_round = self._algorithm.starvation_info(agent, states[agent])
            if stuck_round is not None:
                raise AsynchronyError(
                    f"agent {agent} starved in round {stuck_round}: the event queue "
                    f"drained at time {current_time} before the agent's quorum of "
                    f"n - f = {self._n - self._f} round-{stuck_round} messages could "
                    f"form (a fault schedule dropped or silenced too many messages); "
                    f"set a round_timeout/timeout_policy on the round-based wrapper "
                    f"for graceful degradation",
                    agent=agent,
                    round_number=stuck_round,
                    time=current_time,
                )

    def _record_output(
        self,
        samples: List[OutputSample],
        outputs: np.ndarray,
        agent: int,
        time: float,
        state: Any,
    ) -> None:
        value = np.asarray(self._algorithm.output(agent, state), dtype=float)
        if not np.array_equal(value, outputs[agent]):
            outputs[agent] = value
            samples.append(OutputSample(time=time, agent=agent, value=value.copy()))
