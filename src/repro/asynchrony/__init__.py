"""Asynchronous message-passing systems with crashes (Section 8).

This package implements the classical static fault model the paper uses to
demonstrate the "price of rounds": an asynchronous message-passing system of
``n`` agents performing receive–compute–broadcast steps, with up to ``f``
crash faults (possibly unclean: the final broadcast of a crashing agent may
reach only a subset of the agents), and message delays normalized so that the
longest end-to-end delay is 1.

Contents:

* :mod:`repro.asynchrony.simulator` — the event-driven simulator;
* :mod:`repro.asynchrony.schedulers` — delay schedulers and crash schedules
  (including the adversarial ones used in the Theorem 6 experiments);
* :mod:`repro.asynchrony.round_based` — the asynchronous-round wrapper that
  turns any synchronous algorithm into one that waits for ``n - f`` round
  messages (Section 8.1);
* :mod:`repro.asynchrony.minrelay` — the MinRelay algorithm of Theorem 7,
  which is not round-based and reaches agreement of all correct agents by
  time ``f + 1``.
"""

from repro.asynchrony.minrelay import MinRelayAlgorithm, MinRelaySyncAlgorithm
from repro.asynchrony.round_based import RoundBasedAsyncAlgorithm
from repro.asynchrony.schedulers import (
    AdversarialRoundDelayScheduler,
    ConstantDelayScheduler,
    CrashFault,
    CrashSchedule,
    RandomDelayScheduler,
    staggered_crash_schedule,
)
from repro.asynchrony.simulator import AsyncAlgorithm, AsyncExecution, AsynchronousSimulator, OutputSample

__all__ = [
    "AsyncAlgorithm",
    "AsynchronousSimulator",
    "AsyncExecution",
    "OutputSample",
    "MinRelayAlgorithm",
    "MinRelaySyncAlgorithm",
    "RoundBasedAsyncAlgorithm",
    "ConstantDelayScheduler",
    "RandomDelayScheduler",
    "AdversarialRoundDelayScheduler",
    "CrashFault",
    "CrashSchedule",
    "staggered_crash_schedule",
]
