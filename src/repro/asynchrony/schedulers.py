"""Delay schedulers and crash schedules for the asynchronous simulator.

The paper normalizes asynchronous time so that the longest end-to-end message
delay is 1 (Section 8).  Delay schedulers assign a delay in ``(0, 1]`` to
every delivery; crash schedules specify when agents stop taking steps and
which recipients (if any) still receive the crashing agent's final broadcast
(crashes may be *unclean*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.config import resolve_seed
from repro.exceptions import AsynchronyError


class DelayScheduler:
    """Base class: assigns the end-to-end delay of each message delivery."""

    def delay(self, sender: int, recipient: int, send_time: float, round_hint: Optional[int]) -> float:
        """The delay (in normalized time units, within ``(0, 1]``) of this delivery."""
        raise NotImplementedError


class ConstantDelayScheduler(DelayScheduler):
    """Every delivery takes the same delay (default: the maximum delay 1).

    Self-deliveries (sender == recipient) take ``self_delay`` (default: a
    negligible delay, modelling instantaneous local communication).
    """

    def __init__(self, delay: float = 1.0, self_delay: float = 1e-6) -> None:
        if not 0.0 < delay <= 1.0:
            raise AsynchronyError(f"delays must lie in (0, 1], got {delay}")
        if not 0.0 < self_delay <= 1.0:
            raise AsynchronyError(f"self delays must lie in (0, 1], got {self_delay}")
        self._delay = delay
        self._self_delay = self_delay

    def delay(self, sender: int, recipient: int, send_time: float, round_hint: Optional[int]) -> float:
        return self._self_delay if sender == recipient else self._delay


class RandomDelayScheduler(DelayScheduler):
    """Deliveries take independent uniform delays in ``[min_delay, 1]`` (seeded).

    ``seed=None`` (the default) defers to the config-scoped seed of
    :class:`~repro.config.EngineConfig` at each ``delay`` call, so a whole
    faulted study is reproduced from the single ``EngineConfig(seed=...)``
    knob; passing an explicit seed pins this scheduler independently of the
    active config.  The per-delivery streams are keyed by
    ``(seed, sender, recipient, send_time)``, making each delay independent
    of event-processing order.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        min_delay: float = 0.05,
        self_delay: float = 1e-6,
    ) -> None:
        if not 0.0 < min_delay <= 1.0:
            raise AsynchronyError(f"min_delay must lie in (0, 1], got {min_delay}")
        self._seed = seed
        self._min_delay = min_delay
        self._self_delay = self_delay

    def delay(self, sender: int, recipient: int, send_time: float, round_hint: Optional[int]) -> float:
        if sender == recipient:
            return self._self_delay
        seed = resolve_seed(self._seed)
        rng = np.random.default_rng((seed, sender, recipient, int(send_time * 1e6)))
        return float(rng.uniform(self._min_delay, 1.0))


class AdversarialRoundDelayScheduler(DelayScheduler):
    """Per-round adversarial delays realizing a chosen graph of ``N_A`` each round.

    For asynchronous round ``r`` the scheduler is given a communication graph
    (from the crash model ``N_A``): messages along the graph's edges are fast
    (delay ``fast``), all other messages are slow (delay ``slow > fast``).
    Round-based agents that advance as soon as they hold ``n - f`` round-``r``
    messages then effectively communicate along the chosen graph — this is
    the execution used by Theorem 6 to transfer the synchronous lower bound
    to asynchronous round-based algorithms.

    ``round_hint`` (provided by the round-based wrapper) selects the graph;
    deliveries without a round hint use the fast delay.
    """

    def __init__(
        self,
        graphs_by_round: Mapping[int, "object"],
        fast: float = 0.9,
        slow: float = 1.0,
        self_delay: float = 1e-6,
    ) -> None:
        if not 0.0 < fast < slow <= 1.0:
            raise AsynchronyError(
                f"need 0 < fast < slow <= 1 so slow messages miss the quorum, got fast={fast}, slow={slow}"
            )
        self._graphs_by_round = dict(graphs_by_round)
        self._fast = fast
        self._slow = slow
        self._self_delay = self_delay

    def delay(self, sender: int, recipient: int, send_time: float, round_hint: Optional[int]) -> float:
        if sender == recipient:
            return self._self_delay
        if round_hint is None or round_hint not in self._graphs_by_round:
            return self._fast
        graph = self._graphs_by_round[round_hint]
        return self._fast if graph.has_edge(sender, recipient) else self._slow


@dataclass(frozen=True)
class CrashFault:
    """A crash fault: the agent stops taking steps at ``time``.

    ``final_broadcast_recipients`` restricts the delivery of the broadcast
    performed during the agent's very last step (the step executed exactly at
    the crash time); ``None`` means the final broadcast is delivered normally
    (a *clean* crash).
    """

    agent: int
    time: float
    final_broadcast_recipients: Optional[FrozenSet[int]] = None


class CrashSchedule:
    """A collection of crash faults with at most one fault per agent."""

    def __init__(self, faults: Iterable[CrashFault] = ()) -> None:
        self._faults: Dict[int, CrashFault] = {}
        for fault in faults:
            if fault.agent in self._faults:
                raise AsynchronyError(f"agent {fault.agent} has more than one crash fault")
            if fault.time < 0:
                raise AsynchronyError(f"crash times must be non-negative, got {fault.time}")
            self._faults[fault.agent] = fault

    @property
    def crashed_agents(self) -> FrozenSet[int]:
        """The agents that crash at some point."""
        return frozenset(self._faults)

    def fault_of(self, agent: int) -> Optional[CrashFault]:
        """The crash fault of ``agent`` (None if it never crashes)."""
        return self._faults.get(agent)

    def is_crashed_at(self, agent: int, time: float) -> bool:
        """Whether ``agent`` has already crashed strictly before ``time``."""
        fault = self._faults.get(agent)
        return fault is not None and time > fault.time

    def validate(self, n: int, f: int) -> None:
        """Check the schedule respects the crash budget ``f`` and agent range."""
        if len(self._faults) > f:
            raise AsynchronyError(
                f"the crash schedule has {len(self._faults)} faults but the budget is f={f}"
            )
        for agent in self._faults:
            if not 0 <= agent < n:
                raise AsynchronyError(f"crash fault for unknown agent {agent} (n={n})")

    def __len__(self) -> int:
        return len(self._faults)


def staggered_crash_schedule(
    agents: Sequence[int],
    first_crash_time: float = 0.0,
    spacing: float = 1.0,
    relay_to: Optional[Sequence[int]] = None,
) -> CrashSchedule:
    """Crashes spaced ``spacing`` apart, each delivering its final broadcast to one agent only.

    This builds the worst-case causal chain of the Theorem 7 analysis: agent
    ``agents[k]`` crashes at time ``first_crash_time + k*spacing`` and its
    final broadcast reaches only ``relay_to[k]`` (default: the next agent in
    the list, with the last one relaying to nobody), so information travels
    along a chain of crashing agents and agreement cannot be reached before
    roughly time ``f + 1``.
    """
    faults = []
    for index, agent in enumerate(agents):
        if relay_to is not None and index < len(relay_to):
            recipients: Optional[FrozenSet[int]] = frozenset({relay_to[index]})
        elif index + 1 < len(agents):
            recipients = frozenset({agents[index + 1]})
        else:
            recipients = frozenset()
        faults.append(
            CrashFault(
                agent=agent,
                time=first_crash_time + index * spacing,
                final_broadcast_recipients=recipients,
            )
        )
    return CrashSchedule(faults)
