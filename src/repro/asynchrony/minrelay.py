"""The MinRelay algorithm (Theorem 7): asymptotic consensus without rounds.

MinRelay is a non-terminating reliable-broadcast protocol: every agent
maintains the set ``S_i`` of initial values it knows of and outputs
``y_i = min(S_i)``.  At time 0 it broadcasts ``S_i = {its own initial
value}``; whenever it receives a set different from its own it merges it,
updates its output to the minimum, and broadcasts the merged set.

Theorem 7 shows that in an asynchronous system with up to ``f < n`` crashes
and maximum message delay 1, all correct agents hold the *same* set — and
hence the same output — by time ``f + 1``, giving contraction rate 0 and
demonstrating the gap between round-based and general algorithms.

Values are compared lexicographically so the algorithm also works for
``d > 1`` (the minimum is then a specific initial value, preserving
Validity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, List, Mapping, Tuple

import numpy as np

from repro.algorithms.base import Algorithm
from repro.asynchrony.simulator import AsyncAlgorithm, Broadcast
from repro.types import as_value

ValueTuple = Tuple[float, ...]


@dataclass(frozen=True)
class MinRelayState:
    """State of a MinRelay agent: the set of known initial values."""

    known_values: FrozenSet[ValueTuple]

    def minimum(self) -> ValueTuple:
        """The lexicographically smallest known value (the agent's output)."""
        return min(self.known_values)


class MinRelayAlgorithm(AsyncAlgorithm):
    """Relay the set of known initial values; output its minimum."""

    def on_init(self, agent_id: int, initial_value: np.ndarray, n: int, f: int) -> MinRelayState:
        value = tuple(as_value(initial_value).tolist())
        return MinRelayState(known_values=frozenset({value}))

    def on_start(self, agent_id: int, state: MinRelayState) -> Tuple[MinRelayState, List[Broadcast]]:
        return state, [Broadcast(payload=state.known_values)]

    def on_receive(
        self, agent_id: int, state: MinRelayState, sender: int, payload: FrozenSet[ValueTuple], time: float
    ) -> Tuple[MinRelayState, List[Broadcast]]:
        received = frozenset(payload)
        if received == state.known_values:
            return state, []
        merged = state.known_values | received
        new_state = MinRelayState(known_values=merged)
        return new_state, [Broadcast(payload=merged)]

    def output(self, agent_id: int, state: MinRelayState) -> np.ndarray:
        return np.array(state.minimum(), dtype=float)

    @property
    def name(self) -> str:
        return "min-relay"


class MinRelaySyncAlgorithm(Algorithm):
    """MinRelay on the synchronous :class:`~repro.algorithms.base.Algorithm` contract.

    The same relay-sets-and-output-the-minimum protocol, expressed as a
    per-round state machine: each round the agent broadcasts its known-value
    set and merges every set it receives.  This makes MinRelay runnable
    under the :class:`~repro.asynchrony.round_based.RoundBasedAsyncAlgorithm`
    wrapper — and hence under the same crash/fault schedules, timeout
    policies and fuzz toggles as the averaging algorithms — at the price of
    the round structure itself (run as asynchronous rounds its agreement
    time degrades to the round-based envelope; the event-driven
    :class:`MinRelayAlgorithm` is the Theorem 7 protocol that beats it).

    Outputs are not convex combinations (the minimum is an extreme point),
    so the certification layer's contraction analyses do not apply; the
    algorithm is still *valid* (every output is some agent's initial value).
    """

    def initial_state(self, agent_id: int, initial_value: np.ndarray, n: int) -> MinRelayState:
        value = tuple(as_value(initial_value).tolist())
        return MinRelayState(known_values=frozenset({value}))

    def message(self, agent_id: int, state: MinRelayState) -> FrozenSet[ValueTuple]:
        return state.known_values

    def transition(
        self,
        agent_id: int,
        state: MinRelayState,
        received: Mapping[int, Any],
        round_number: int,
    ) -> MinRelayState:
        merged = state.known_values
        for payload in received.values():
            merged = merged | frozenset(payload)
        if merged == state.known_values:
            return state
        return MinRelayState(known_values=merged)

    def output(self, agent_id: int, state: MinRelayState) -> np.ndarray:
        return np.array(state.minimum(), dtype=float)

    @property
    def name(self) -> str:
        return "min-relay-sync"
