"""Declarative, seed-deterministic fault injection shared by every engine.

The paper's native setting is asynchronous message passing under crashes
(Sections 6–8): messages may be delayed or lost, agents may crash mid-round
— possibly *uncleanly*, with the final broadcast reaching only a subset —
recover later, or join the computation late.  :class:`FaultPlan` is the one
declarative description of such a fault schedule, consumed by two engines:

* the **event-heap simulator** (:mod:`repro.asynchrony.simulator`) gates
  every scheduled delivery through the plan — drops, duplications, delay
  jitter, silent (crashed / not-yet-joined) senders; and
* the **batched ensemble engine** (:mod:`repro.execution.batch`) compiles
  the plan into per-round boolean *keep masks* that are ANDed onto the
  stacked ``(B, n, n)`` adjacency tensors — one vectorized mask application
  per round instead of ``B`` per-scenario Python loops.

Both consumers sample from the same deterministic streams: one PCG64
generator per ``(seed, _STREAM_TAG, stream, round)``, with scenario ``b``
reading the counter block at offset ``b * n * n`` (``PCG64.advance``).
Disjoint counter blocks make the per-scenario draws independent *and* let
the batched engine realize all ``B`` scenarios of a round as one
``(B, n, n)`` draw whose slice ``b`` is bit-for-bit the per-scenario draw —
so where the engines' semantics overlap (which round-``r`` message from
``i`` to ``j`` is dropped, which recipients an unclean final broadcast
reaches, which rounds an agent is silent in) they realize *bit-for-bit
identical* effective communication graphs.  ``seed=None`` defers to the config-scoped seed of
:class:`repro.config.EngineConfig`, making faulted runs reproducible across
threads from a single knob.

Round-indexed semantics (shared by both engines)
------------------------------------------------
* ``CrashSpec(agent, round=r)`` — the agent's round-``r`` broadcast is its
  last; a *clean* crash delivers it to everyone, an *unclean* crash
  (``final_recipients``) only to the named subset.  From round ``r + 1``
  the agent is silent; with ``recovery_round=r'`` it resumes broadcasting
  at round ``r'`` (crash-recovery keeps the agent's state — no amnesia).
* ``JoinSpec(agent, round=r)`` — a late joiner: silent before round ``r``,
  participating normally from round ``r`` on.  Late joiners *listen* from
  the start (so round-based wrappers can catch up instead of starving).
* ``drop`` — per-message loss probability (self-deliveries never drop).
* ``duplicate`` / ``jitter`` — event-runtime-only effects: duplicated
  deliveries and randomized delays.  In the lockstep batched engine a
  duplicated round message is idempotent and delays have no meaning, so
  these fields do not change batched outputs (documented divergence).

The ``N_A`` invariant
---------------------
Fault injection must not silently leave the crash network model ``N_A``
(Section 8.1: every agent has at least ``n - f`` in-neighbors) on which the
round-based certification guarantees rest.  With ``enforce_model=True``
(the default) every realized effective graph is checked: a participating
agent whose effective in-degree falls below ``n - f`` raises a structured
:class:`~repro.exceptions.FaultModelError` naming the violating scenario,
round and agent.  Agents that are silent in a round (crashed, pre-join)
are exempt — the round-based realization only constrains the
neighborhoods of participating agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import resolve_seed
from repro.exceptions import ConfigError, FaultModelError
from repro.graphs.digraph import CommunicationGraph
from repro.models.patterns import CommunicationPattern, RoundContext

#: Disambiguating tag so fault-stream seed tuples can never collide with the
#: 4-tuples of :class:`~repro.asynchrony.schedulers.RandomDelayScheduler`
#: under a shared config-scoped seed.
_STREAM_TAG = 0xFA017
_STREAM_DROP = 0
_STREAM_JITTER = 1
_STREAM_DUPLICATE = 2
_STREAM_DUPLICATE_DELAY = 3
_STREAM_RETRY = 4


@dataclass(frozen=True)
class CrashSpec:
    """One crash fault, round-indexed.

    The agent's round-``round`` broadcast is its final one before the crash:
    delivered to everyone when ``final_recipients`` is ``None`` (a *clean*
    crash), only to ``final_recipients`` otherwise (an *unclean* crash,
    Section 8's final-broadcast subsets).  From ``round + 1`` the agent
    neither sends nor (in the lockstep engines) receives; with
    ``recovery_round`` it resumes participating at that round, keeping the
    state it crashed with.
    """

    agent: int
    round: int
    final_recipients: Optional[FrozenSet[int]] = None
    recovery_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ConfigError(f"crash rounds are 1-based, got round={self.round}")
        if self.final_recipients is not None:
            object.__setattr__(
                self, "final_recipients", frozenset(self.final_recipients)
            )
        if self.recovery_round is not None and self.recovery_round <= self.round:
            raise ConfigError(
                f"recovery_round must exceed the crash round, got crash round "
                f"{self.round} and recovery_round {self.recovery_round}"
            )

    @property
    def clean(self) -> bool:
        """Whether the final broadcast is delivered unrestricted."""
        return self.final_recipients is None

    def to_dict(self) -> dict:
        """A versioned JSON-safe encoding; invert with :meth:`from_dict`."""
        return {
            "__type__": "CrashSpec",
            "version": 1,
            "agent": self.agent,
            "round": self.round,
            "final_recipients": (
                None
                if self.final_recipients is None
                else sorted(self.final_recipients)
            ),
            "recovery_round": self.recovery_round,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CrashSpec":
        _check_payload(payload, "CrashSpec", 1)
        recipients = payload["final_recipients"]
        return cls(
            agent=payload["agent"],
            round=payload["round"],
            final_recipients=None if recipients is None else frozenset(recipients),
            recovery_round=payload["recovery_round"],
        )


@dataclass(frozen=True)
class JoinSpec:
    """A late-joining agent: silent before ``round``, normal from it on."""

    agent: int
    round: int

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ConfigError(f"join rounds are 1-based, got round={self.round}")

    def to_dict(self) -> dict:
        """A versioned JSON-safe encoding; invert with :meth:`from_dict`."""
        return {
            "__type__": "JoinSpec",
            "version": 1,
            "agent": self.agent,
            "round": self.round,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JoinSpec":
        _check_payload(payload, "JoinSpec", 1)
        return cls(agent=payload["agent"], round=payload["round"])


def _check_payload(payload: dict, expected_type: str, max_version: int) -> None:
    """Shared payload-header validation for the fault codecs."""
    from repro.exceptions import SerializationError

    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a dict payload for {expected_type}, got {type(payload).__name__}"
        )
    found = payload.get("__type__")
    if found != expected_type:
        raise SerializationError(
            f"expected a {expected_type} payload, got __type__={found!r}"
        )
    version = payload.get("version")
    if not isinstance(version, int) or not 1 <= version <= max_version:
        raise SerializationError(
            f"{expected_type} payload version {version!r} is not supported "
            f"(this library reads versions 1..{max_version})"
        )


@dataclass(frozen=True)
class FaultPlan:
    """A compiled, seed-deterministic fault schedule.

    Immutable and hashable; all sampling is a pure function of
    ``(seed, stream, scenario, round)`` — one generator per
    ``(seed, stream, round)`` with scenario-indexed counter blocks — so any
    engine consuming the plan realizes the same faults for the same
    scenario index.  Use
    :meth:`resolved` (or let the engines do it) to pin ``seed=None`` to the
    active config-scoped seed before sampling.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0
    crashes: Tuple[CrashSpec, ...] = ()
    joins: Tuple[JoinSpec, ...] = ()
    f: Optional[int] = None
    seed: Optional[int] = None
    enforce_model: bool = True
    #: Global index of this plan's scenario 0.  A shard covering global
    #: scenarios ``[s, s + k)`` of a larger ensemble runs as a local
    #: ``(k, n, d)`` ensemble with ``scenario_base=s``: every sampling
    #: method then reads the counter blocks of the *global* scenario
    #: indices, so the shard's draws are bit-for-bit the slices the
    #: unsharded run would have drawn.
    scenario_base: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "joins", tuple(self.joins))
        for name in ("drop", "duplicate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(f"{name} must be a probability in [0, 1), got {value}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must lie in [0, 1], got {self.jitter}")
        for spec in self.crashes:
            if not isinstance(spec, CrashSpec):
                raise ConfigError(f"crashes must contain CrashSpec entries, got {spec!r}")
        for spec in self.joins:
            if not isinstance(spec, JoinSpec):
                raise ConfigError(f"joins must contain JoinSpec entries, got {spec!r}")
        crash_agents = [spec.agent for spec in self.crashes]
        if len(crash_agents) != len(set(crash_agents)):
            raise ConfigError("at most one CrashSpec per agent")
        join_agents = [spec.agent for spec in self.joins]
        if len(join_agents) != len(set(join_agents)):
            raise ConfigError("at most one JoinSpec per agent")
        for crash in self.crashes:
            join = self._join_of(crash.agent)
            if join is not None and crash.round < join.round:
                raise ConfigError(
                    f"agent {crash.agent} crashes in round {crash.round} before "
                    f"joining in round {join.round}"
                )
        if self.f is not None:
            if self.f < 0:
                raise ConfigError(f"the crash budget f must be non-negative, got {self.f}")
            if self.f < len(self.faulty_agents):
                raise ConfigError(
                    f"the plan declares {len(self.faulty_agents)} faulty agents but "
                    f"a budget of f={self.f}"
                )
        if self.seed is not None and (
            isinstance(self.seed, bool) or not isinstance(self.seed, int) or self.seed < 0
        ):
            raise ConfigError(f"seed must be a non-negative int or None, got {self.seed!r}")
        if (
            isinstance(self.scenario_base, bool)
            or not isinstance(self.scenario_base, int)
            or self.scenario_base < 0
        ):
            raise ConfigError(
                f"scenario_base must be a non-negative int, got {self.scenario_base!r}"
            )

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def faulty_agents(self) -> FrozenSet[int]:
        """Agents named by any crash or join spec."""
        return frozenset(spec.agent for spec in self.crashes) | frozenset(
            spec.agent for spec in self.joins
        )

    def effective_f(self) -> int:
        """The crash budget of the ``N_A`` invariant check.

        The declared ``f`` when given, else the number of faulty agents —
        the tightest budget under which the plan's own crashes/joins keep
        the effective graphs inside ``N_A(n, f)``.
        """
        return self.f if self.f is not None else len(self.faulty_agents)

    def is_zero(self) -> bool:
        """Whether the plan injects nothing (engines then run untouched)."""
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.jitter == 0.0
            and not self.crashes
            and not self.joins
        )

    def resolved(self) -> "FaultPlan":
        """The same plan with ``seed=None`` pinned to the config-scoped seed."""
        if self.seed is not None:
            return self
        return replace(self, seed=resolve_seed(None))

    def validate_for(self, n: int, f: Optional[int] = None) -> None:
        """Check agent ranges against ``n`` and the budget against ``f``.

        ``f`` is an externally imposed crash budget (e.g. the simulator's);
        ``None`` only checks the plan's internal consistency.
        """
        for spec in self.crashes + self.joins:
            if not 0 <= spec.agent < n:
                raise ConfigError(f"fault spec names agent {spec.agent}, but n={n}")
        for crash in self.crashes:
            if crash.final_recipients is not None:
                for recipient in crash.final_recipients:
                    if not 0 <= recipient < n:
                        raise ConfigError(
                            f"final_recipients of agent {crash.agent} names agent "
                            f"{recipient}, but n={n}"
                        )
        budget = self.effective_f()
        if budget >= n:
            raise ConfigError(f"need crash budget f < n, got f={budget}, n={n}")
        if f is not None and len(self.faulty_agents) > f:
            raise ConfigError(
                f"the fault plan declares {len(self.faulty_agents)} faulty agents "
                f"but the execution budget is f={f}"
            )

    def to_dict(self) -> dict:
        """A versioned JSON-safe encoding; invert with :meth:`from_dict`.

        The encoding is canonical for a given plan (crash/join specs keep
        their declared order, recipient sets are sorted), so the service
        layer can content-hash it for checkpoint deduplication.
        """
        return {
            "__type__": "FaultPlan",
            "version": 1,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "jitter": self.jitter,
            "crashes": [spec.to_dict() for spec in self.crashes],
            "joins": [spec.to_dict() for spec in self.joins],
            "f": self.f,
            "seed": self.seed,
            "enforce_model": self.enforce_model,
            "scenario_base": self.scenario_base,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        _check_payload(payload, "FaultPlan", 1)
        return cls(
            drop=payload["drop"],
            duplicate=payload["duplicate"],
            jitter=payload["jitter"],
            crashes=tuple(CrashSpec.from_dict(item) for item in payload["crashes"]),
            joins=tuple(JoinSpec.from_dict(item) for item in payload["joins"]),
            f=payload["f"],
            seed=payload["seed"],
            enforce_model=payload["enforce_model"],
            scenario_base=payload.get("scenario_base", 0),
        )

    def _crash_of(self, agent: int) -> Optional[CrashSpec]:
        for spec in self.crashes:
            if spec.agent == agent:
                return spec
        return None

    def _join_of(self, agent: int) -> Optional[JoinSpec]:
        for spec in self.joins:
            if spec.agent == agent:
                return spec
        return None

    def sends_in_round(self, agent: int, round_number: int) -> bool:
        """Whether the agent broadcasts its round-``round_number`` message."""
        join = self._join_of(agent)
        if join is not None and round_number < join.round:
            return False
        crash = self._crash_of(agent)
        if crash is not None and round_number > crash.round:
            return crash.recovery_round is not None and round_number >= crash.recovery_round
        return True

    def receives_in_round(self, agent: int, round_number: int) -> bool:
        """Whether the agent processes round-``round_number`` deliveries.

        Only a crash outage silences the receive side: late joiners listen
        from round 1 (so round-based agents can catch up on joining), and a
        crashing agent still receives during its crash round.
        """
        crash = self._crash_of(agent)
        if crash is not None and round_number > crash.round:
            return crash.recovery_round is not None and round_number >= crash.recovery_round
        return True

    def participates_in_round(self, agent: int, round_number: int) -> bool:
        """Whether the agent is a full participant (sends and receives)."""
        return self.sends_in_round(agent, round_number) and self.receives_in_round(
            agent, round_number
        )

    # ------------------------------------------------------------------ #
    # Deterministic sampling
    # ------------------------------------------------------------------ #

    def _round_rng(self, stream: int, round_number: int) -> np.random.Generator:
        """The round's PCG64 generator, positioned at scenario 0's block."""
        if self.seed is None:
            raise ConfigError(
                "sampling from an unresolved FaultPlan; call plan.resolved() first"
            )
        return np.random.default_rng(
            (self.seed, _STREAM_TAG, stream, round_number)
        )

    def _uniforms(self, stream: int, scenario: int, round_number: int, n: int) -> np.ndarray:
        """The plan's ``(n, n)`` uniform draw for one stream/scenario/round.

        Scenario ``b`` reads the disjoint counter block at offset
        ``b * n * n`` of the round's generator, so this slice-equals the
        batched ``(B, n, n)`` draw of :meth:`_batch_uniforms` bit-for-bit
        (one float64 consumes one 64-bit PCG64 output).
        """
        rng = self._round_rng(stream, round_number)
        offset = self.scenario_base + scenario
        if offset:
            rng.bit_generator.advance(offset * n * n)
        return rng.random((n, n))

    def _batch_uniforms(
        self, stream: int, round_number: int, batch_size: int, n: int
    ) -> np.ndarray:
        """All ``batch_size`` scenarios' uniform draws as one ``(B, n, n)`` pass."""
        rng = self._round_rng(stream, round_number)
        if self.scenario_base:
            rng.bit_generator.advance(self.scenario_base * n * n)
        return rng.random((batch_size, n, n))

    def structural_mask(self, round_number: int, n: int) -> Optional[np.ndarray]:
        """The crash/join keep mask of one round, or ``None`` if inactive.

        ``mask[i, j]`` is ``False`` when the round-``round_number`` message
        from ``i`` to ``j`` is structurally suppressed (silent sender,
        unclean final broadcast, crashed recipient).  The diagonal is always
        kept: an agent communicates with itself instantaneously.
        """
        mask: Optional[np.ndarray] = None

        def materialize() -> np.ndarray:
            nonlocal mask
            if mask is None:
                mask = np.ones((n, n), dtype=bool)
            return mask

        for crash in self.crashes:
            if crash.round == round_number and crash.final_recipients is not None:
                keep = materialize()
                keep[crash.agent, :] = False
                for recipient in crash.final_recipients:
                    keep[crash.agent, recipient] = True
            if not self.sends_in_round(crash.agent, round_number):
                materialize()[crash.agent, :] = False
            if not self.receives_in_round(crash.agent, round_number):
                materialize()[:, crash.agent] = False
        for join in self.joins:
            if round_number < join.round:
                materialize()[join.agent, :] = False
        if mask is not None:
            np.fill_diagonal(mask, True)
        return mask

    def drop_mask(self, round_number: int, scenario: int, n: int) -> Optional[np.ndarray]:
        """The sampled message-drop keep mask, or ``None`` when ``drop == 0``."""
        if self.drop == 0.0:
            return None
        keep = self._uniforms(_STREAM_DROP, scenario, round_number, n) >= self.drop
        np.fill_diagonal(keep, True)
        return keep

    def round_mask(self, round_number: int, scenario: int, n: int) -> Optional[np.ndarray]:
        """The full per-scenario keep mask of one round (structural ∧ drops)."""
        structural = self.structural_mask(round_number, n)
        dropped = self.drop_mask(round_number, scenario, n)
        if dropped is None:
            return structural
        if structural is None:
            return dropped
        return structural & dropped

    def batch_round_masks(
        self, round_number: int, batch_size: int, n: int
    ) -> Optional[np.ndarray]:
        """The stacked keep masks of one ensemble round.

        Returns ``None`` when the round is fault-free, a shared ``(n, n)``
        mask when only (scenario-independent) structural faults apply, and a
        ``(B, n, n)`` stack when per-scenario drops are sampled.  Scenario
        ``b``'s slice equals ``round_mask(round_number, b, n)`` exactly —
        the bit-for-bit bridge between the vectorized path, the per-scenario
        reference loop and the event-driven simulator.
        """
        structural = self.structural_mask(round_number, n)
        if self.drop == 0.0:
            return structural
        stacked = (
            self._batch_uniforms(_STREAM_DROP, round_number, batch_size, n)
            >= self.drop
        )
        diagonal = np.arange(n)
        stacked[:, diagonal, diagonal] = True
        if structural is not None:
            stacked &= structural
        return stacked

    # ------------------------------------------------------------------ #
    # Application + the N_A invariant
    # ------------------------------------------------------------------ #

    def apply_to_adjacency(
        self, adjacency: np.ndarray, round_number: int, batch_size: int
    ) -> np.ndarray:
        """Mask one round's adjacency tensor and check the ``N_A`` invariant.

        ``adjacency`` is the engine's ``(n, n)`` shared or ``(B, n, n)``
        stacked boolean tensor; a fault-free round returns it *unchanged*
        (the zero-fault plan is bit-for-bit invisible).
        """
        n = adjacency.shape[-1]
        mask = self.batch_round_masks(round_number, batch_size, n)
        if mask is None:
            if self.enforce_model:
                self.check_crash_model(adjacency, round_number, batch_size)
            return adjacency
        effective = adjacency & mask
        if self.enforce_model:
            self.check_crash_model(effective, round_number, batch_size)
        return effective

    def apply_to_graph(
        self, graph: CommunicationGraph, round_number: int, scenario: int
    ) -> CommunicationGraph:
        """The per-scenario (reference-loop) counterpart of the mask path.

        Produces a :class:`~repro.graphs.digraph.CommunicationGraph` whose
        adjacency equals the corresponding slice of the batched effective
        tensor bit-for-bit; a fault-free round returns the graph itself.
        """
        mask = self.round_mask(round_number, scenario, graph.n)
        if mask is None:
            if self.enforce_model:
                self.check_crash_model(
                    graph.adjacency, round_number, 1, scenario=scenario
                )
            return graph
        effective = graph.adjacency & mask
        if self.enforce_model:
            self.check_crash_model(effective, round_number, 1, scenario=scenario)
        return CommunicationGraph(graph.n, adjacency=effective)

    def check_crash_model(
        self,
        effective: np.ndarray,
        round_number: int,
        batch_size: int,
        scenario: Optional[int] = None,
    ) -> None:
        """Assert every realized effective graph stays inside ``N_A(n, f)``.

        Every agent *participating* in the round must keep at least
        ``n - f`` effective in-neighbors (its own self-loop included);
        silent agents (crashed, pre-join) are exempt.  Raises
        :class:`~repro.exceptions.FaultModelError` naming the first
        violating (scenario, round, agent).
        """
        n = effective.shape[-1]
        budget = self.effective_f()
        required = n - budget
        if required <= 1:
            return  # every graph (self-loops forced) satisfies in-degree >= 1
        in_degrees = effective.sum(axis=-2)  # (n,) or (B, n): column sums
        participant = np.array(
            [self.participates_in_round(agent, round_number) for agent in range(n)]
        )
        violating = (in_degrees < required) & participant
        if not violating.any():
            return
        if violating.ndim == 1:
            agent = int(np.argmax(violating))
            bad_scenario = scenario if scenario is not None else 0
            degree = int(in_degrees[agent])
        else:
            bad_scenario, agent = (int(v) for v in np.argwhere(violating)[0])
            degree = int(in_degrees[bad_scenario, agent])
        # Report the *global* scenario index so a sharded run names the same
        # scenario the unsharded run would have.
        bad_scenario += self.scenario_base
        raise FaultModelError(
            f"faulted effective graph leaves the crash model N_A(n={n}, f={budget}) "
            f"in scenario {bad_scenario}, round {round_number}: agent {agent} has "
            f"in-degree {degree} < n - f = {required}",
            scenario=bad_scenario,
            round_number=round_number,
            agent=agent,
            in_degree=degree,
            required=required,
        )

    # ------------------------------------------------------------------ #
    # Event-runtime sampling (simulator-only effects)
    # ------------------------------------------------------------------ #

    def delivers(
        self, round_number: int, scenario: int, sender: int, recipient: int, n: int
    ) -> bool:
        """Whether the round-tagged message from ``sender`` reaches ``recipient``."""
        mask = self.round_mask(round_number, scenario, n)
        return True if mask is None else bool(mask[sender, recipient])

    def duplicates(
        self, round_number: int, scenario: int, sender: int, recipient: int, n: int
    ) -> bool:
        """Whether this delivery is duplicated (event runtime only)."""
        if self.duplicate == 0.0:
            return False
        uniforms = self._uniforms(_STREAM_DUPLICATE, scenario, round_number, n)
        return bool(uniforms[sender, recipient] < self.duplicate)

    def jittered_delay(
        self,
        round_number: int,
        scenario: int,
        sender: int,
        recipient: int,
        n: int,
        delay: float,
    ) -> float:
        """The delay after applying multiplicative jitter, clipped to ``(0, 1]``."""
        if self.jitter == 0.0:
            return delay
        uniform = self._uniforms(_STREAM_JITTER, scenario, round_number, n)[
            sender, recipient
        ]
        jittered = delay * (1.0 + self.jitter * (2.0 * uniform - 1.0))
        return float(min(1.0, max(1e-9, jittered)))

    def duplicate_delay(
        self,
        round_number: int,
        scenario: int,
        sender: int,
        recipient: int,
        n: int,
        delay: float,
    ) -> float:
        """The (strictly later) delay of a duplicated copy, clipped to ``(0, 1]``."""
        uniform = self._uniforms(_STREAM_DUPLICATE_DELAY, scenario, round_number, n)[
            sender, recipient
        ]
        return float(min(1.0, delay * (1.0 + uniform) + 1e-9))

    def retry_delivers(
        self,
        round_number: int,
        attempt: int,
        scenario: int,
        sender: int,
        recipient: int,
        n: int,
    ) -> bool:
        """Drop decision for a *retried* round message (fresh stream per attempt).

        Retries draw from a dedicated stream so a retransmission is not
        deterministically lost to the same drop draw as the original send;
        the structural (crash/join) mask still applies.
        """
        structural = self.structural_mask(round_number, n)
        if structural is not None and not structural[sender, recipient]:
            return False
        if self.drop == 0.0:
            return True
        if self.seed is None:
            raise ConfigError(
                "sampling from an unresolved FaultPlan; call plan.resolved() first"
            )
        rng = np.random.default_rng(
            (
                self.seed,
                _STREAM_TAG,
                _STREAM_RETRY,
                self.scenario_base + scenario,
                round_number,
                attempt,
            )
        )
        return bool(rng.random((n, n))[sender, recipient] >= self.drop)


@dataclass(frozen=True)
class FaultSpec:
    """User-facing declarative fault specification (the ``Study`` front door).

    Mirrors :class:`FaultPlan` but accepts convenient types — any iterables
    for ``crashes``/``joins`` — and compiles to the canonical plan with
    :meth:`compile`.  ``Study(faults=FaultSpec(...))`` and the engine
    ``fault_plan=`` keywords accept either form.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0
    crashes: Sequence[CrashSpec] = ()
    joins: Sequence[JoinSpec] = ()
    f: Optional[int] = None
    seed: Optional[int] = None
    enforce_model: bool = True

    def compile(self) -> FaultPlan:
        """The validated, canonical :class:`FaultPlan` of this spec."""
        return FaultPlan(
            drop=self.drop,
            duplicate=self.duplicate,
            jitter=self.jitter,
            crashes=tuple(self.crashes),
            joins=tuple(self.joins),
            f=self.f,
            seed=self.seed,
            enforce_model=self.enforce_model,
        )

    def to_dict(self) -> dict:
        """A versioned JSON-safe encoding; invert with :meth:`from_dict`."""
        payload = self.compile().to_dict()
        payload["__type__"] = "FaultSpec"
        del payload["scenario_base"]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        _check_payload(payload, "FaultSpec", 1)
        return cls(
            drop=payload["drop"],
            duplicate=payload["duplicate"],
            jitter=payload["jitter"],
            crashes=tuple(CrashSpec.from_dict(item) for item in payload["crashes"]),
            joins=tuple(JoinSpec.from_dict(item) for item in payload["joins"]),
            f=payload["f"],
            seed=payload["seed"],
            enforce_model=payload["enforce_model"],
        )


def as_fault_plan(
    faults: Union[FaultSpec, FaultPlan, None]
) -> Optional[FaultPlan]:
    """Normalize a user-provided fault argument to an active, resolved plan.

    ``None`` and zero plans normalize to ``None`` — the engines then run
    their untouched (bit-for-bit identical) fault-free code paths.  The
    returned plan has its seed pinned to the active config-scoped seed.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultSpec):
        faults = faults.compile()
    if not isinstance(faults, FaultPlan):
        raise ConfigError(
            f"faults must be a FaultSpec, FaultPlan or None, got {type(faults).__name__}"
        )
    if faults.is_zero():
        return None
    return faults.resolved()


class FaultMaskingPattern(CommunicationPattern):
    """Wrap a pattern so every emitted graph passes through a fault plan.

    The single-scenario (``run_execution``) consumer of the fault subsystem:
    ``graph_at`` masks the inner pattern's graph with the plan's
    ``(round, scenario)`` keep mask — the same mask the batched engine would
    apply — and enforces the ``N_A`` invariant.  ``raw_choices`` records the
    inner pattern's unmasked graphs for provenance.
    """

    def __init__(
        self,
        inner: CommunicationPattern,
        plan: FaultPlan,
        scenario: int = 0,
    ) -> None:
        self._inner = inner
        self._plan = plan.resolved()
        self._scenario = scenario
        self.raw_choices: list = []

    def reset(self) -> None:
        self._inner.reset()
        self.raw_choices = []

    def graph_at(
        self, round_number: int, context: Optional[RoundContext] = None
    ) -> CommunicationGraph:
        graph = self._inner.graph_at(round_number, context)
        self.raw_choices.append(graph)
        return self._plan.apply_to_graph(graph, round_number, self._scenario)

    def __repr__(self) -> str:
        return f"FaultMaskingPattern({self._inner!r}, scenario={self._scenario})"


__all__ = [
    "CrashSpec",
    "FaultMaskingPattern",
    "FaultPlan",
    "FaultSpec",
    "JoinSpec",
    "as_fault_plan",
]
