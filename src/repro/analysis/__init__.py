"""Analysis and reporting: experiment harnesses, Table 1, text reports.

The functions here are shared by the benchmark suite (``benchmarks/``), the
examples and the EXPERIMENTS.md documentation: each experiment function runs
a self-contained measurement and returns a plain dictionary of paper values
versus measured values, which the benchmarks print as tables.
"""

from repro.analysis.experiments import (
    experiment_alpha_diameter,
    experiment_decision_times,
    experiment_minrelay,
    experiment_nonsplit,
    experiment_psi_rooted,
    experiment_round_based_crashes,
    experiment_solvability,
    experiment_two_agent,
    run_certification_sweep,
)
from repro.analysis.reporting import format_table
from repro.analysis.summary import Table1Row, build_table1, format_table1

__all__ = [
    "experiment_two_agent",
    "experiment_nonsplit",
    "experiment_psi_rooted",
    "experiment_alpha_diameter",
    "experiment_round_based_crashes",
    "experiment_minrelay",
    "experiment_decision_times",
    "experiment_solvability",
    "run_certification_sweep",
    "format_table",
    "Table1Row",
    "build_table1",
    "format_table1",
]
