"""Self-contained experiments: paper values versus measured values.

Each function runs one measurement from the paper's result set and returns a
plain dictionary with (at least) ``name``, ``paper`` and ``measured`` keys,
which the benchmarks and EXPERIMENTS.md render as tables via
:func:`repro.analysis.reporting.format_table`.  The experiments run on the
engine's vectorized fast path wherever the algorithm supports it.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms import (
    AmortizedMidpointAlgorithm,
    MidpointAlgorithm,
    TwoAgentThirdsAlgorithm,
)
from repro.asynchrony import (
    AsynchronousSimulator,
    MinRelayAlgorithm,
    RoundBasedAsyncAlgorithm,
    staggered_crash_schedule,
)
from repro.core.adversary import GreedyDiameterAdversary, PsiBlockAdversary, TwoAgentAdversary
from repro.core.decision_times import midpoint_decision_round
from repro.core.lower_bounds import (
    alpha_diameter_lower_bound,
    amortized_midpoint_upper_bound,
    deaf_graphs_lower_bound,
    psi_lower_bound,
    round_based_crash_lower_bound,
    round_based_crash_upper_bound,
    two_agent_lower_bound,
)
from repro.execution import run_execution
from repro.execution.metrics import convergence_round, empirical_contraction_rate
from repro.graphs.relations import alpha_diameter
from repro.models.standard import deaf_model, psi_model, two_agent_model


def experiment_two_agent(rounds: int = 25) -> Dict[str, object]:
    """Theorem 1: the two-agent adversary forces contraction rate 1/3.

    The default horizon keeps the final diameter well above the float64
    granularity of the limit point; longer horizons stall at ~1e-16 relative
    and bias the fitted rate upward.
    """
    execution = run_execution(TwoAgentThirdsAlgorithm(), [0.0, 1.0], TwoAgentAdversary(), rounds)
    return {
        "name": "two-agent thirds vs adversary",
        "paper": two_agent_lower_bound(),
        "measured": empirical_contraction_rate(execution),
        "rounds": rounds,
    }


def experiment_nonsplit(n: int = 5, rounds: int = 30) -> Dict[str, object]:
    """Theorem 2: the deaf-family adversary halves the midpoint range per round."""
    execution = run_execution(
        MidpointAlgorithm(),
        np.linspace(0.0, 1.0, n),
        GreedyDiameterAdversary(deaf_model(n=n)),
        rounds,
    )
    return {
        "name": f"midpoint vs deaf(K_{n})",
        "paper": deaf_graphs_lower_bound(),
        "measured": empirical_contraction_rate(execution),
        "rounds": rounds,
    }


def experiment_psi_rooted(n: int = 6, phases: int = 12) -> Dict[str, object]:
    """Theorem 3 vs the amortized midpoint upper bound in the Ψ model.

    The measured rate is evaluated at phase boundaries (the algorithm's
    diameter only drops at the end of each ``n - 1`` round phase).
    """
    phase_length = n - 1
    rounds = phases * phase_length
    execution = run_execution(
        AmortizedMidpointAlgorithm(),
        np.linspace(0.0, 1.0, n),
        PsiBlockAdversary(n),
        rounds,
    )
    diameters = execution.diameters()
    start, end = float(diameters[0]), float(diameters[-1])
    measured = (end / start) ** (1.0 / rounds) if start > 0 and end > 0 else 0.0
    return {
        "name": f"amortized midpoint vs Psi(n={n})",
        "paper": psi_lower_bound(n),
        "measured": measured,
        "upper_bound": amortized_midpoint_upper_bound(n),
        "rounds": rounds,
    }


def experiment_alpha_diameter(n: int = 5) -> Dict[str, object]:
    """Theorem 5: the 1/(D+1) bound from the Ψ model's α-diameter."""
    model = psi_model(n)
    diameter_value = alpha_diameter(list(model))
    return {
        "name": f"alpha-diameter of Psi(n={n})",
        "paper": alpha_diameter_lower_bound(diameter_value),
        "measured": diameter_value,
        "note": "measured = D; paper = 1/(D+1) bound",
    }


def experiment_round_based_crashes(
    n: int = 6, f: int = 2, max_time: float = 20.0
) -> Dict[str, object]:
    """Theorem 6 context: async round-based midpoint under staggered crashes."""
    schedule = staggered_crash_schedule(list(range(f)), first_crash_time=0.5)
    simulator = AsynchronousSimulator(
        RoundBasedAsyncAlgorithm(MidpointAlgorithm()),
        np.linspace(0.0, 1.0, n),
        f=f,
        crash_schedule=schedule,
        max_time=max_time,
    )
    execution = simulator.run()
    return {
        "name": f"async rounds midpoint (n={n}, f={f})",
        "paper": round_based_crash_lower_bound(n, f),
        "measured": execution.correct_diameter_at(execution.final_time),
        "upper_bound": round_based_crash_upper_bound(n, f),
        "agreement_time": execution.agreement_time(1e-9),
        "note": "measured = final correct diameter (starts at 1)",
    }


def experiment_minrelay(n: int = 5, f: int = 2, max_time: float = 20.0) -> Dict[str, object]:
    """Theorem 7: MinRelay agrees by time f + 1 despite worst-case crashes."""
    schedule = staggered_crash_schedule(list(range(f)), first_crash_time=0.0)
    simulator = AsynchronousSimulator(
        MinRelayAlgorithm(), np.linspace(0.0, 1.0, n), f=f,
        crash_schedule=schedule, max_time=max_time,
    )
    execution = simulator.run()
    agreement = execution.agreement_time(1e-12)
    return {
        "name": f"MinRelay (n={n}, f={f})",
        "paper": float(f + 1),
        "measured": float("inf") if agreement is None else agreement,
        "note": "agreement time; paper value is the f+1 upper bound",
    }


def experiment_decision_times(
    delta: float = 1.0, epsilon: float = 1e-3, n: int = 4
) -> Dict[str, object]:
    """Decision times: midpoint reaches ε-agreement in ceil(log2(Δ/ε)) rounds."""
    paper_round = midpoint_decision_round(delta, epsilon)
    execution = run_execution(
        MidpointAlgorithm(),
        np.linspace(0.0, delta, n),
        GreedyDiameterAdversary(deaf_model(n=n)),
        rounds=paper_round + 2,
    )
    measured: Optional[int] = convergence_round(execution, epsilon)
    return {
        "name": f"midpoint decision round (delta={delta:g}, eps={epsilon:g})",
        "paper": paper_round,
        "measured": -1 if measured is None else measured,
    }


def experiment_solvability() -> Dict[str, object]:
    """Solvability checks on the standard models (asymptotic yes, exact no)."""
    models = [two_agent_model(), deaf_model(n=4), psi_model(5)]
    asymptotic = [model.asymptotic_consensus_solvable() for model in models]
    exact = [model.exact_consensus_solvable() for model in models]
    return {
        "name": "solvability of standard models",
        "paper": True,
        "measured": all(asymptotic) and not any(exact),
        "note": "asymptotic solvable in all three, exact in none",
    }
