"""Self-contained experiments: paper values versus measured values.

Each function runs one measurement from the paper's result set and returns a
plain dictionary with (at least) ``name``, ``paper`` and ``measured`` keys,
which the benchmarks and EXPERIMENTS.md render as tables via
:func:`repro.analysis.reporting.format_table`.  The experiments run on the
engine's vectorized fast path wherever the algorithm supports it.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.algorithms import (
    AmortizedMidpointAlgorithm,
    MidpointAlgorithm,
    TwoAgentThirdsAlgorithm,
)
from repro.asynchrony import (
    AsynchronousSimulator,
    MinRelayAlgorithm,
    RoundBasedAsyncAlgorithm,
    staggered_crash_schedule,
)
from repro.config import EngineConfig
from repro.core.adversary import GreedyDiameterAdversary, PsiBlockAdversary, TwoAgentAdversary
from repro.core.decision_times import midpoint_decision_round
from repro.core.lower_bounds import (
    alpha_diameter_lower_bound,
    amortized_midpoint_upper_bound,
    deaf_graphs_lower_bound,
    psi_lower_bound,
    round_based_crash_lower_bound,
    round_based_crash_upper_bound,
    two_agent_lower_bound,
)
from repro.exceptions import ConfigError
from repro.execution import run_execution
from repro.execution.metrics import convergence_round, empirical_contraction_rate
from repro.faults import FaultPlan, FaultSpec, as_fault_plan
from repro.graphs.relations import alpha_diameter
from repro.models.standard import deaf_model, psi_model, two_agent_model


def experiment_two_agent(rounds: int = 25) -> Dict[str, object]:
    """Theorem 1: the two-agent adversary forces contraction rate 1/3.

    The default horizon keeps the final diameter well above the float64
    granularity of the limit point; longer horizons stall at ~1e-16 relative
    and bias the fitted rate upward.
    """
    execution = run_execution(TwoAgentThirdsAlgorithm(), [0.0, 1.0], TwoAgentAdversary(), rounds)
    return {
        "name": "two-agent thirds vs adversary",
        "paper": two_agent_lower_bound(),
        "measured": empirical_contraction_rate(execution),
        "rounds": rounds,
    }


def experiment_nonsplit(n: int = 5, rounds: int = 30) -> Dict[str, object]:
    """Theorem 2: the deaf-family adversary halves the midpoint range per round."""
    execution = run_execution(
        MidpointAlgorithm(),
        np.linspace(0.0, 1.0, n),
        GreedyDiameterAdversary(deaf_model(n=n)),
        rounds,
    )
    return {
        "name": f"midpoint vs deaf(K_{n})",
        "paper": deaf_graphs_lower_bound(),
        "measured": empirical_contraction_rate(execution),
        "rounds": rounds,
    }


def experiment_psi_rooted(n: int = 6, phases: int = 12) -> Dict[str, object]:
    """Theorem 3 vs the amortized midpoint upper bound in the Ψ model.

    The measured rate is evaluated at phase boundaries (the algorithm's
    diameter only drops at the end of each ``n - 1`` round phase).
    """
    phase_length = n - 1
    rounds = phases * phase_length
    execution = run_execution(
        AmortizedMidpointAlgorithm(),
        np.linspace(0.0, 1.0, n),
        PsiBlockAdversary(n),
        rounds,
    )
    diameters = execution.diameters()
    start, end = float(diameters[0]), float(diameters[-1])
    measured = (end / start) ** (1.0 / rounds) if start > 0 and end > 0 else 0.0
    return {
        "name": f"amortized midpoint vs Psi(n={n})",
        "paper": psi_lower_bound(n),
        "measured": measured,
        "upper_bound": amortized_midpoint_upper_bound(n),
        "rounds": rounds,
    }


def experiment_alpha_diameter(n: int = 5) -> Dict[str, object]:
    """Theorem 5: the 1/(D+1) bound from the Ψ model's α-diameter."""
    model = psi_model(n)
    diameter_value = alpha_diameter(list(model))
    return {
        "name": f"alpha-diameter of Psi(n={n})",
        "paper": alpha_diameter_lower_bound(diameter_value),
        "measured": diameter_value,
        "note": "measured = D; paper = 1/(D+1) bound",
    }


def experiment_round_based_crashes(
    n: int = 6, f: int = 2, max_time: float = 20.0
) -> Dict[str, object]:
    """Theorem 6 context: async round-based midpoint under staggered crashes."""
    schedule = staggered_crash_schedule(list(range(f)), first_crash_time=0.5)
    simulator = AsynchronousSimulator(
        RoundBasedAsyncAlgorithm(MidpointAlgorithm()),
        np.linspace(0.0, 1.0, n),
        f=f,
        crash_schedule=schedule,
        max_time=max_time,
    )
    execution = simulator.run()
    return {
        "name": f"async rounds midpoint (n={n}, f={f})",
        "paper": round_based_crash_lower_bound(n, f),
        "measured": execution.correct_diameter_at(execution.final_time),
        "upper_bound": round_based_crash_upper_bound(n, f),
        "agreement_time": execution.agreement_time(1e-9),
        "note": "measured = final correct diameter (starts at 1)",
    }


def experiment_minrelay(n: int = 5, f: int = 2, max_time: float = 20.0) -> Dict[str, object]:
    """Theorem 7: MinRelay agrees by time f + 1 despite worst-case crashes."""
    schedule = staggered_crash_schedule(list(range(f)), first_crash_time=0.0)
    simulator = AsynchronousSimulator(
        MinRelayAlgorithm(), np.linspace(0.0, 1.0, n), f=f,
        crash_schedule=schedule, max_time=max_time,
    )
    execution = simulator.run()
    agreement = execution.agreement_time(1e-12)
    return {
        "name": f"MinRelay (n={n}, f={f})",
        "paper": float(f + 1),
        "measured": float("inf") if agreement is None else agreement,
        "note": "agreement time; paper value is the f+1 upper bound",
    }


def experiment_decision_times(
    delta: float = 1.0, epsilon: float = 1e-3, n: int = 4
) -> Dict[str, object]:
    """Decision times: midpoint reaches ε-agreement in ceil(log2(Δ/ε)) rounds."""
    paper_round = midpoint_decision_round(delta, epsilon)
    execution = run_execution(
        MidpointAlgorithm(),
        np.linspace(0.0, delta, n),
        GreedyDiameterAdversary(deaf_model(n=n)),
        rounds=paper_round + 2,
    )
    measured: Optional[int] = convergence_round(execution, epsilon)
    return {
        "name": f"midpoint decision round (delta={delta:g}, eps={epsilon:g})",
        "paper": paper_round,
        "measured": -1 if measured is None else measured,
    }


#: Finite-horizon slack on the fitted rates of the certification sweep.
_SWEEP_TOLERANCE = 0.15


def _plain(value: object) -> object:
    """Coerce numpy scalars to JSON-native Python scalars."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _json_row(row: Dict[str, object]) -> Dict[str, object]:
    return {key: _plain(value) for key, value in row.items()}


def certification_sweep_rows(
    sizes: Sequence[int] = (4, 6),
    rounds: int = 24,
    suffix_rounds: int = 40,
    exploration_depth: int = 0,
    use_batch: Optional[bool] = None,
    ensemble_size: Optional[int] = None,
    ensemble_spread: float = 0.05,
    seed: int = 0,
    faults: Union[FaultSpec, FaultPlan, None] = None,
) -> List[Dict[str, object]]:
    """JSON-safe descriptors of the certification sweep's grid rows.

    Each descriptor is a self-contained, serializable job description:
    :func:`run_certification_row` reconstructs the row's algorithm, model
    and proof adversary from it and executes the measurement, so the
    service layer can dispatch rows to worker processes and journal them
    by content hash.  ``run_certification_sweep(...)`` is exactly
    ``[run_certification_row(r) for r in certification_sweep_rows(...)]``.

    The fault plan is normalized here — resolved under the ambient
    :class:`~repro.config.EngineConfig` seed and, as in the sweep, relaxed
    to ``enforce_model=False`` (the committed schedules are minimal
    ``N_A`` members already, so replayed drops legitimately leave the
    model) — and embedded in its serialized form.
    """
    fault_plan = as_fault_plan(faults)
    if fault_plan is not None:
        fault_plan = _dc_replace(fault_plan, enforce_model=False)
    common = {
        "suffix_rounds": int(suffix_rounds),
        "exploration_depth": int(exploration_depth),
        "use_batch": use_batch,
        "ensemble_size": None if ensemble_size is None else int(ensemble_size),
        "ensemble_spread": float(ensemble_spread),
        "seed": int(seed),
        "faults": None if fault_plan is None else fault_plan.to_dict(),
    }
    rows: List[Dict[str, object]] = [
        {"theorem": "thm1", "n": 2, "rounds": int(rounds), **common}
    ]
    for n in sizes:
        rows.append({"theorem": "thm2", "n": int(n), "rounds": int(rounds), **common})
    for n in sizes:
        if n < 4:
            continue
        phase_rounds = max(rounds, 2 * (n - 1))
        rows.append(
            {"theorem": "thm3", "n": int(n), "rounds": int(phase_rounds), **common}
        )
    return rows


def _certify_faulted_replay(
    row: Dict[str, object],
    algorithm,
    model,
    initial_values,
    round_graphs,
    descriptor: Dict[str, object],
    fault_plan: FaultPlan,
) -> None:
    """Replay a committed schedule under ``fault_plan`` and extend ``row``.

    ``round_graphs`` is round-major: entry ``t`` is either one graph
    (single scenario) or the length-``B`` per-scenario graphs of round
    ``t + 1`` — exactly the two shapes :class:`repro.api.Study` accepts
    for ``graphs=``.
    """
    from repro.api import CertifySpec, Study

    result = Study(
        algorithm=algorithm,
        initial_values=initial_values,
        graphs=round_graphs,
        model=model,
        certify=CertifySpec(
            suffix_rounds=descriptor["suffix_rounds"],
            exploration_depth=descriptor["exploration_depth"],
            use_batch=descriptor["use_batch"],
        ),
        faults=fault_plan,
    ).run()
    row["faulted"] = True
    if result.is_ensemble:
        lower = [c.rate_interval[0] for c in result.certificates]
        upper = [c.rate_interval[1] for c in result.certificates]
        row["faulted_output_rate_max"] = max(upper)
        row["faulted_valency_lower_rate_min"] = min(lower)
    else:
        lower_rate, upper_rate = result.certificates.rate_interval
        row["faulted_output_rate"] = upper_rate
        row["faulted_valency_lower_rate"] = lower_rate


def _certify_single_row(
    descriptor: Dict[str, object],
    name: str,
    algorithm,
    model,
    adversary,
    initial_values,
    bound: float,
    n: int,
    total_rounds: int,
    fault_plan: Optional[FaultPlan],
) -> Dict[str, object]:
    from repro.core.contraction import certified_rate_interval, measure_contraction_rate
    from repro.core.valency import ValencyEstimator

    measurement = measure_contraction_rate(
        algorithm, model, adversary, initial_values, total_rounds
    )
    estimator = ValencyEstimator(
        algorithm,
        model,
        suffix_rounds=descriptor["suffix_rounds"],
        exploration_depth=descriptor["exploration_depth"],
        use_batch=descriptor["use_batch"],
    )
    trace = [
        float(estimate.lower_diameter)
        for estimate in estimator.trace(measurement.execution.configurations)
    ]
    lower_rate, upper_rate = certified_rate_interval(measurement, trace)
    row = {
        "name": name,
        "n": n,
        "rounds": total_rounds,
        "paper": bound,
        "output_rate": upper_rate,
        "valency_lower_rate": lower_rate,
        "measured": upper_rate,
        "certified": lower_rate <= bound + _SWEEP_TOLERANCE
        and upper_rate >= bound - _SWEEP_TOLERANCE,
    }
    if fault_plan is not None:
        _certify_faulted_replay(
            row,
            algorithm,
            model,
            initial_values,
            list(measurement.execution.graphs),
            descriptor,
            fault_plan,
        )
    return row


def _certify_ensemble_row(
    descriptor: Dict[str, object],
    name: str,
    algorithm,
    model,
    adversary,
    initial_values,
    bound: float,
    n: int,
    total_rounds: int,
    fault_plan: Optional[FaultPlan],
) -> Dict[str, object]:
    from repro.api import CertifySpec, Study

    ensemble_size = descriptor["ensemble_size"]
    base = np.asarray(initial_values, dtype=float).reshape(n, -1)
    rng = np.random.default_rng(descriptor["seed"])
    scale = descriptor["ensemble_spread"] * max(float(base.max() - base.min()), 1.0)
    stacked = np.stack(
        [base] + [
            base + rng.uniform(-scale, scale, size=base.shape)
            for _ in range(ensemble_size - 1)
        ]
    )
    result = Study(
        algorithm=algorithm,
        initial_values=stacked,
        adversary=adversary,
        rounds=total_rounds,
        model=model,
        certify=CertifySpec(
            suffix_rounds=descriptor["suffix_rounds"],
            exploration_depth=descriptor["exploration_depth"],
            use_batch=descriptor["use_batch"],
        ),
    ).run()
    lower_rates = [c.rate_interval[0] for c in result.certificates]
    upper_rates = [c.rate_interval[1] for c in result.certificates]
    certified = all(
        lower <= bound + _SWEEP_TOLERANCE and upper >= bound - _SWEEP_TOLERANCE
        for lower, upper in zip(lower_rates, upper_rates)
    )
    row = {
        "name": name,
        "n": n,
        "rounds": total_rounds,
        "ensemble_B": ensemble_size,
        "paper": bound,
        "output_rate": upper_rates[0],
        "output_rate_max": max(upper_rates),
        "valency_lower_rate": lower_rates[0],
        "valency_lower_rate_min": min(lower_rates),
        "measured": max(upper_rates),
        "certified": certified,
    }
    if fault_plan is not None:
        _certify_faulted_replay(
            row,
            algorithm,
            model,
            stacked,
            result.execution.round_choices,
            descriptor,
            fault_plan,
        )
    return row


def run_certification_row(descriptor: Dict[str, object]) -> Dict[str, object]:
    """Execute one :func:`certification_sweep_rows` descriptor.

    Rebuilds the row's algorithm, model and proof adversary from the
    descriptor's theorem tag, runs the contraction measurement and the
    valency certification (single execution or perturbed ensemble), and
    returns the sweep's row dictionary with every value JSON-native — the
    unit of work :func:`repro.service.orchestrator.run_certification_sweep_service`
    dispatches to workers and journals.
    """
    theorem = descriptor["theorem"]
    n = descriptor["n"]
    total_rounds = descriptor["rounds"]
    fault_plan = (
        None
        if descriptor["faults"] is None
        else FaultPlan.from_dict(descriptor["faults"])
    )
    if theorem == "thm1":
        name = "thm1: two-agent thirds vs {H0,H1,H2}"
        algorithm = TwoAgentThirdsAlgorithm()
        model = two_agent_model()
        adversary = TwoAgentAdversary()
        initial_values = [0.0, 1.0]
        bound = two_agent_lower_bound()
    elif theorem == "thm2":
        name = f"thm2: midpoint vs deaf(K_{n})"
        algorithm = MidpointAlgorithm()
        model = deaf_model(n=n)
        adversary = GreedyDiameterAdversary(model)
        initial_values = np.linspace(0.0, 1.0, n)
        bound = deaf_graphs_lower_bound()
    elif theorem == "thm3":
        name = f"thm3: amortized midpoint vs Psi(n={n})"
        algorithm = AmortizedMidpointAlgorithm()
        model = psi_model(n)
        adversary = PsiBlockAdversary(n)
        initial_values = np.linspace(0.0, 1.0, n)
        bound = psi_lower_bound(n)
    else:
        raise ConfigError(f"unknown sweep-row theorem tag {theorem!r}")
    certify = (
        _certify_single_row
        if descriptor["ensemble_size"] is None
        else _certify_ensemble_row
    )
    row = certify(
        descriptor,
        name,
        algorithm,
        model,
        adversary,
        initial_values,
        bound,
        n,
        total_rounds,
        fault_plan,
    )
    if theorem == "thm3":
        row["alpha_diameter"] = model.alpha_diameter()
        row["upper_bound"] = amortized_midpoint_upper_bound(n)
    return _json_row(row)


def run_certification_sweep(
    sizes: Sequence[int] = (4, 6),
    rounds: int = 24,
    suffix_rounds: int = 40,
    exploration_depth: int = 0,
    use_batch: Optional[bool] = None,
    config: Optional[EngineConfig] = None,
    ensemble_size: Optional[int] = None,
    ensemble_spread: float = 0.05,
    seed: int = 0,
    faults: Union[FaultSpec, FaultPlan, None] = None,
) -> List[Dict[str, object]]:
    """Tightness certificates for Theorems 1–3 over a grid of system sizes.

    For every (algorithm, adversarial model) pair of the paper's headline
    results the sweep runs the proof adversary, fits the output-diameter
    contraction rate, estimates the valency-diameter trace through the
    batched :class:`~repro.core.valency.ValencyEstimator`, and reports the
    certified rate interval next to the paper's bound — the executable
    counterpart of the Table-1 tightness claims.  Grid rows:

    * **Theorem 1** — two-agent thirds vs the ``{H0, H1, H2}`` adversary
      (fixed ``n = 2``, bound 1/3);
    * **Theorem 2** — midpoint vs the greedy ``deaf(K_n)`` adversary for each
      ``n`` in ``sizes`` (bound 1/2); and
    * **Theorem 3** — amortized midpoint vs the Ψ-block adversary for each
      ``n >= 4`` in ``sizes`` (bound computed per ``n``), with the α-diameter
      of the Ψ model (packed relation kernel) recorded alongside.

    Each row carries ``paper`` (the lower bound), ``output_rate`` (measured
    upper estimate), ``valency_lower_rate`` (the fitted decay of the valency
    trace, a certified lower estimate), and ``certified`` (whether the
    interval brackets the bound up to the tolerance).  ``use_batch=False``
    forces every estimate through the per-sequence reference loops (used by
    the equivalence tests; bit-for-bit identical results).  ``config``
    scopes the whole sweep inside an
    :class:`~repro.config.EngineConfig` block, consolidating all engine
    knobs in one place.

    With ``ensemble_size=B`` every grid row certifies a whole ``(B, n, d)``
    *ensemble* in one call instead of a single execution: ``B`` perturbed
    initial-value scenarios (deterministic ``seed``, relative spread
    ``ensemble_spread``) run against the row's proof adversary through
    :class:`repro.api.Study` with per-scenario configuration snapshots, and
    the certification engine stacks all scenarios' sampled futures into
    single ensemble passes.  Rows then carry ``ensemble_B``, the per-scenario
    rate extremes (``output_rate_max``, ``valency_lower_rate_min``) and
    ``certified`` = every scenario's interval brackets the bound.

    With ``faults=`` each row additionally certifies the same contest *under
    the fault plan*: the adversary runs fault-free (adversaries and fault
    plans cannot adapt to each other — see
    :func:`repro.execution.batch.run_adversarial_ensemble`), its committed
    per-round graph schedule is then **replayed** as a faulted graphs-route
    :class:`~repro.api.Study` with ``enforce_model=False`` (the committed
    graphs are already minimal ``N_A`` members, so extra message drops
    legitimately leave the model — the point of the robustness measurement),
    and the faulted certificates land in ``faulted_output_rate`` /
    ``faulted_valency_lower_rate`` (ensembles: ``..._max`` / ``..._min``)
    next to the fault-free ones.

    The sweep factors into serializable units: it is literally
    ``[run_certification_row(r) for r in certification_sweep_rows(...)]``,
    which is what lets
    :func:`repro.service.orchestrator.run_certification_sweep_service`
    dispatch the identical rows as crash-safe worker jobs.
    """
    if config is not None:
        with config:
            return run_certification_sweep(
                sizes=sizes,
                rounds=rounds,
                suffix_rounds=suffix_rounds,
                exploration_depth=exploration_depth,
                use_batch=use_batch,
                config=None,
                ensemble_size=ensemble_size,
                ensemble_spread=ensemble_spread,
                seed=seed,
                faults=faults,
            )
    descriptors = certification_sweep_rows(
        sizes=sizes,
        rounds=rounds,
        suffix_rounds=suffix_rounds,
        exploration_depth=exploration_depth,
        use_batch=use_batch,
        ensemble_size=ensemble_size,
        ensemble_spread=ensemble_spread,
        seed=seed,
        faults=faults,
    )
    return [run_certification_row(descriptor) for descriptor in descriptors]


def experiment_solvability() -> Dict[str, object]:
    """Solvability checks on the standard models (asymptotic yes, exact no)."""
    models = [two_agent_model(), deaf_model(n=4), psi_model(5)]
    asymptotic = [model.asymptotic_consensus_solvable() for model in models]
    exact = [model.exact_consensus_solvable() for model in models]
    return {
        "name": "solvability of standard models",
        "paper": True,
        "measured": all(asymptotic) and not any(exact),
        "note": "asymptotic solvable in all three, exact in none",
    }
