"""Table 1 of the paper as data: one row per network-model family.

:func:`build_table1` evaluates every closed-form bound pair for concrete
parameters and :func:`format_table1` renders the result as the fixed-width
table the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.core.lower_bounds import (
    amortized_midpoint_upper_bound,
    deaf_graphs_lower_bound,
    general_async_contraction_rate,
    midpoint_upper_bound,
    psi_lower_bound,
    round_based_crash_lower_bound,
    round_based_crash_upper_bound,
    two_agent_lower_bound,
    two_agent_upper_bound,
)


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: a model family with its bound pair."""

    model: str
    lower_bound: float
    lower_source: str
    upper_bound: Optional[float]
    upper_source: str


def build_table1(n: int = 6, f: int = 2) -> List[Table1Row]:
    """Evaluate every Table-1 bound pair for ``n`` agents and ``f`` crashes."""
    return [
        Table1Row(
            model="n = 2, {H0,H1,H2}",
            lower_bound=two_agent_lower_bound(),
            lower_source="Theorem 1",
            upper_bound=two_agent_upper_bound(),
            upper_source="Algorithm 1",
        ),
        Table1Row(
            model=f"n = {n}, deaf(G)",
            lower_bound=deaf_graphs_lower_bound(),
            lower_source="Theorem 2",
            upper_bound=midpoint_upper_bound(),
            upper_source="midpoint",
        ),
        Table1Row(
            model=f"n = {n}, {{Psi_0,Psi_1,Psi_2}}",
            lower_bound=psi_lower_bound(n),
            lower_source="Theorem 3",
            upper_bound=amortized_midpoint_upper_bound(n),
            upper_source="amortized midpoint",
        ),
        Table1Row(
            model=f"async rounds, n = {n}, f = {f}",
            lower_bound=round_based_crash_lower_bound(n, f),
            lower_source="Theorem 6",
            upper_bound=round_based_crash_upper_bound(n, f),
            upper_source="Fekete",
        ),
        Table1Row(
            model=f"async general, f = {n - 1}",
            lower_bound=general_async_contraction_rate(),
            lower_source="trivial",
            upper_bound=general_async_contraction_rate(),
            upper_source="MinRelay (Theorem 7)",
        ),
    ]


def format_table1(n: int = 6, f: int = 2) -> str:
    """Render :func:`build_table1` as a fixed-width text table."""
    rows = build_table1(n=n, f=f)
    return format_table(
        headers=["network model", "lower bound", "source", "upper bound", "algorithm"],
        rows=[
            [row.model, row.lower_bound, row.lower_source, row.upper_bound, row.upper_source]
            for row in rows
        ],
        title=f"Table 1 (n={n}, f={f})",
    )
