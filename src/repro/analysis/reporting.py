"""Plain-text table formatting used by benchmarks and examples.

The library has no plotting dependency; every experiment reports its results
as fixed-width text tables (the same information the paper presents in
Table 1 and in the theorem statements).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, float, int, None]


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        return f"{cell:.4g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table."""
    rendered_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        return "  ".join(padded).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    for row in rendered_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_comparison(name: str, paper_value: float, measured_value: float, tolerance: float = 5e-2) -> str:
    """One-line paper-vs-measured comparison with a match marker."""
    if paper_value == 0:
        matches = abs(measured_value) <= tolerance
    else:
        matches = abs(measured_value - paper_value) <= tolerance * max(abs(paper_value), 1.0)
    marker = "OK " if matches else "DIFF"
    return f"[{marker}] {name}: paper={paper_value:.4g} measured={measured_value:.4g}"
