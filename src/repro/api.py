"""The unified study facade: one declarative front door for every engine.

The library grew three batched engines — single executions
(:func:`repro.execution.run_execution`), scenario ensembles
(:mod:`repro.execution.batch`) and the valency/contraction certification
layer (:mod:`repro.core.valency`) — each with its own entry points and
knobs.  :class:`Study` is the declarative builder in front of all of them:

>>> from repro.api import Study, EngineConfig, CertifySpec
>>> result = Study(
...     algorithm=MidpointAlgorithm(),
...     model=deaf_model(n=8),
...     initial_values=np.linspace(0.0, 1.0, 8),
...     adversary=GreedyDiameterAdversary(deaf_model(n=8)),
...     rounds=30,
...     certify=True,
... ).run()
>>> result.provenance.route
'run_execution'
>>> result.certificates.rate_interval
(0.5..., 0.5...)

A study compiles to exactly one existing engine call — ``run_execution`` for
single scenarios, ``run_pattern_ensemble`` / ``run_ensemble`` /
``run_adversarial_ensemble`` for stacked ``(B, n, d)`` scenario tensors —
and is **bit-for-bit identical** to calling that engine directly with the
same configuration (enforced by ``tests/test_api.py``).  The
:class:`StudyResult` carries the underlying execution record, uniform
accessors (outputs, diameters, convergence/decision rounds), optional
valency/contraction certificates, and a :class:`StudyProvenance` stating
which route ran and whether the vectorized/batched paths were taken.

Execution knobs are bundled in :class:`~repro.config.EngineConfig`
(re-exported here): pass one as ``Study(config=...)`` or wrap any direct
engine calls in ``with EngineConfig(...):`` — both mean the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.base import Algorithm
from repro.config import (
    EngineConfig,
    current_engine_config,
    resolve_use_fast_path,
)
from repro.core.contraction import fit_trace_rate
from repro.core.valency import ValencyEstimate, ValencyEstimator
from repro.exceptions import ConfigError, EnsembleShapeError, ExecutionError
from repro.execution.batch import (
    AdversarialEnsembleExecution,
    EnsembleExecution,
    run_adversarial_ensemble,
    run_ensemble,
    run_pattern_ensemble,
)
from repro.execution.engine import run_execution
from repro.execution.execution import Execution
from repro.faults import FaultMaskingPattern, FaultPlan, FaultSpec, as_fault_plan
from repro.execution.metrics import convergence_round, empirical_contraction_rate
from repro.graphs.digraph import CommunicationGraph
from repro.models.network_model import NetworkModel
from repro.models.patterns import (
    AdversarialPattern,
    CommunicationPattern,
    SequencePattern,
)


@dataclass
class ScenarioSpec:
    """Declarative description of what a study executes.

    Exactly one communication source must be given:

    * ``pattern`` — a :class:`~repro.models.patterns.CommunicationPattern`
      (or, for ensembles, a sequence of per-scenario patterns);
    * ``adversary`` — an adaptive
      :class:`~repro.models.patterns.AdversarialPattern`;
    * ``graphs`` — an explicit per-round graph list (for ensembles each
      entry may also be a length-``B`` per-scenario graph sequence).

    ``initial_values`` decides the scale: anything that stacks to a 1-D or
    2-D array is a *single scenario* (compiled to ``run_execution``); a
    ``(B, n, d)`` tensor or a sequence of ``B`` value matrices is an
    *ensemble* (compiled to the batched runners).
    """

    initial_values: Any
    rounds: Optional[int] = None
    pattern: Union[CommunicationPattern, Sequence[CommunicationPattern], None] = None
    graphs: Optional[Sequence[Any]] = None
    adversary: Optional[AdversarialPattern] = None
    record_every: int = 1
    scenario_labels: Optional[Sequence[object]] = None

    def __post_init__(self) -> None:
        # A pattern that is actually adaptive is an adversary declaration.
        if isinstance(self.pattern, AdversarialPattern) and self.adversary is None:
            self.adversary = self.pattern
            self.pattern = None
        sources = [
            name
            for name, value in (
                ("pattern", self.pattern),
                ("graphs", self.graphs),
                ("adversary", self.adversary),
            )
            if value is not None
        ]
        if len(sources) != 1:
            raise ConfigError(
                "a scenario needs exactly one of pattern=, graphs= or adversary=, "
                f"got {sources or 'none'}"
            )
        if self.graphs is not None:
            self.graphs = list(self.graphs)
            if self.rounds is None:
                self.rounds = len(self.graphs)
            elif self.rounds != len(self.graphs):
                raise ConfigError(
                    f"rounds={self.rounds} contradicts the {len(self.graphs)}-round "
                    "explicit graph list; omit rounds= or make them agree"
                )
        if self.rounds is None:
            raise ConfigError("a scenario needs rounds= (or an explicit graph list)")
        if self.rounds < 0:
            raise ConfigError(f"rounds must be non-negative, got {self.rounds}")
        if self.record_every < 1:
            raise ConfigError(f"record_every must be >= 1, got {self.record_every}")

    def to_dict(self) -> dict:
        """A versioned JSON-safe encoding; invert with :meth:`from_dict`.

        Adversary-routed scenarios raise
        :class:`~repro.exceptions.SerializationError` — an adaptive
        adversary's decision procedure is arbitrary code; replay its
        committed schedules as a ``graphs=`` scenario instead.
        """
        from repro.service.serialization import encode_scenario_spec

        return encode_scenario_spec(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        from repro.service.serialization import decode_scenario_spec

        return decode_scenario_spec(payload)

    def is_ensemble(self) -> bool:
        """Whether the initial values describe a stacked ``(B, n, d)`` ensemble."""
        values = self.initial_values
        if not isinstance(values, np.ndarray):
            try:
                values = np.asarray(values, dtype=float)
            except (TypeError, ValueError) as exc:
                raise EnsembleShapeError(
                    "initial values must stack to a 1-D/2-D (single scenario) or "
                    "3-D (ensemble) float array"
                ) from exc
        if values.ndim in (1, 2):
            return False
        if values.ndim == 3:
            return True
        raise EnsembleShapeError(
            f"initial values must stack to a 1-D/2-D (single scenario) or 3-D "
            f"(ensemble) array, got shape {values.shape}",
            expected="1-D/2-D (single scenario) or 3-D (ensemble)",
            actual=tuple(values.shape),
        )


@dataclass(frozen=True)
class CertifySpec:
    """What the optional certification pass of a :class:`Study` computes.

    Mirrors the :class:`~repro.core.valency.ValencyEstimator` parameters;
    ``use_batch``/``scenario_chunk`` left at ``None`` inherit from the
    study's :class:`~repro.config.EngineConfig`.
    """

    suffix_rounds: int = 60
    exploration_depth: int = 0
    use_batch: Optional[bool] = None
    scenario_chunk: Optional[int] = None

    def to_dict(self) -> dict:
        """A versioned JSON-safe encoding; invert with :meth:`from_dict`."""
        from repro.service.serialization import encode_certify_spec

        return encode_certify_spec(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CertifySpec":
        from repro.service.serialization import decode_certify_spec

        return decode_certify_spec(payload)


@dataclass(frozen=True)
class StudyProvenance:
    """Which path a study actually took.

    Attributes
    ----------
    route:
        The engine entry point the study compiled to: ``"run_execution"``,
        ``"run_ensemble"``, ``"run_pattern_ensemble"`` or
        ``"run_adversarial_ensemble"``.
    fast_path:
        Whether the vectorized ``batch_*`` fast path drove the rounds.
    batched:
        For ensemble routes, whether the scenarios ran as one stacked
        ensemble (``False`` = per-scenario fallback loop); ``None`` for
        single-scenario routes.
    config:
        The merged :class:`~repro.config.EngineConfig` the study ran under.
    faulted:
        Whether a (non-zero) :class:`~repro.faults.FaultPlan` was injected
        into the executed communication graphs.
    """

    route: str
    fast_path: bool
    batched: Optional[bool]
    config: EngineConfig
    faulted: bool = False


@dataclass
class StudyCertificates:
    """Valency/contraction certificates attached to a :class:`StudyResult`.

    Attributes
    ----------
    estimates:
        One :class:`~repro.core.valency.ValencyEstimate` per recorded
        configuration (certified lower/upper diameter bounds).
    valency_trace:
        The lower diameter estimates as a plain list — the quantity the
        lower-bound proofs control.
    output_rate:
        Fitted geometric decay of the output diameter (upper rate estimate;
        ``nan`` when the execution is too short to fit).
    rate_interval:
        ``(lower, upper)`` certified contraction-rate interval: the fitted
        valency-trace decay and the output rate.
    """

    estimates: List[ValencyEstimate]
    valency_trace: List[float]
    output_rate: float
    rate_interval: Tuple[float, float]


@dataclass
class StudyResult:
    """Uniform result of a :class:`Study` run.

    Wraps the underlying engine record (an
    :class:`~repro.execution.execution.Execution` for single scenarios, an
    :class:`~repro.execution.batch.EnsembleExecution` for ensembles) behind
    scale-agnostic accessors, so downstream analysis code does not care which
    engine ran.  ``certificates`` is a single :class:`StudyCertificates` for
    single-scenario studies and a list of ``B`` per-scenario certificates for
    certified ensembles (each bit-for-bit identical to the certificate of an
    independent single-scenario run of that scenario).
    """

    execution: Union[Execution, EnsembleExecution]
    provenance: StudyProvenance
    certificates: Union[StudyCertificates, List[StudyCertificates], None] = None

    @property
    def is_ensemble(self) -> bool:
        return isinstance(self.execution, EnsembleExecution)

    @property
    def rounds(self) -> int:
        """Number of executed rounds."""
        return self.execution.rounds

    @property
    def final_outputs(self) -> np.ndarray:
        """Final output tensor: ``(n, d)`` single scenario, ``(B, n, d)`` ensemble."""
        if self.is_ensemble:
            return self.execution.final_outputs
        return self.execution.outputs()

    def diameters(self) -> np.ndarray:
        """Recorded output diameters: ``(R,)`` single scenario, ``(R, B)`` ensemble."""
        return self.execution.diameters()

    def final_diameters(self) -> np.ndarray:
        """Final diameters: a scalar array single scenario, ``(B,)`` ensemble."""
        if self.is_ensemble:
            return self.execution.final_diameters()
        return np.asarray(self.execution.final_diameter())

    def decision_rounds(self, tolerance: float) -> np.ndarray:
        """First recorded round within ``tolerance`` agreement (-1 if never).

        The decision time of the induced approximate consensus algorithm:
        a scalar array for single scenarios, ``(B,)`` per-scenario rounds
        for ensembles.
        """
        if self.is_ensemble:
            return self.execution.convergence_rounds(tolerance)
        hit = convergence_round(self.execution, tolerance)
        return np.asarray(-1 if hit is None else hit)

    def round_choices(self) -> List[List[CommunicationGraph]]:
        """The adversary's committed per-round graph choices (adversarial ensembles)."""
        if isinstance(self.execution, AdversarialEnsembleExecution):
            return self.execution.round_choices
        if isinstance(self.execution, Execution):
            return [[graph] for graph in self.execution.graphs]
        raise ExecutionError("round choices are only recorded for adversarial studies")

    def to_dict(self) -> dict:
        """A versioned, bit-for-bit JSON encoding; invert with :meth:`from_dict`.

        Float arrays travel as raw bytes, so the decoded result's outputs,
        diameters and certificates are array-for-array identical — which is
        what lets the service layer journal shard results and merge them
        into a result indistinguishable from a single-process run.
        """
        from repro.service.serialization import encode_study_result

        return encode_study_result(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "StudyResult":
        from repro.service.serialization import decode_study_result

        return decode_study_result(payload)

    def __repr__(self) -> str:
        return (
            f"StudyResult(route={self.provenance.route}, rounds={self.rounds}, "
            f"certified={self.certificates is not None})"
        )


class Study:
    """Declarative builder compiling to the batched execution engines.

    Parameters
    ----------
    algorithm:
        The :class:`~repro.algorithms.base.Algorithm` under study.
    scenario:
        A prebuilt :class:`ScenarioSpec`; alternatively pass its fields
        (``initial_values``, ``rounds``, ``pattern`` / ``graphs`` /
        ``adversary``, ``record_every``, ``scenario_labels``) directly.
    model:
        The :class:`~repro.models.network_model.NetworkModel`; required for
        certification.
    certify:
        ``True`` or a :class:`CertifySpec` to attach valency/contraction
        certificates.  Single-scenario studies get one
        :class:`StudyCertificates`; ensemble studies run with per-scenario
        configuration snapshots and get a list of ``B`` per-scenario
        certificates, computed as stacked ``(B·K, n, n)`` ensemble passes
        and bit-for-bit identical to ``B`` independent certified
        single-scenario studies.
    faults:
        Optional :class:`~repro.faults.FaultSpec` (or precompiled
        :class:`~repro.faults.FaultPlan`): message drops, clean/unclean
        crashes with optional recovery, and late joins, injected into the
        executed communication graphs.  Single-scenario studies mask the
        pattern's graphs round by round; ensemble studies route the plan
        through the engines' vectorized fault-mask path — both realize the
        same deterministic per-``(scenario, round)`` draws.  A zero spec is
        normalized away (the study is bit-for-bit fault-free); combining
        ``faults`` with ``adversary`` raises
        :class:`~repro.exceptions.ConfigError` (the adversary's committed
        history would diverge from the faulted realized graphs — replay its
        committed schedules as a faulted ``graphs`` study instead).
        Certification (``certify=``) composes: faulted ensembles return
        per-scenario certificates for the faulted trajectories.
    config:
        An :class:`~repro.config.EngineConfig`; the study runs inside it, so
        every knob (fast path, batching, packed kernels, reductions) applies
        to exactly the code the study executes.  ``None`` inherits the
        ambient configuration.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        *,
        scenario: Optional[ScenarioSpec] = None,
        initial_values: Any = None,
        rounds: Optional[int] = None,
        pattern: Union[CommunicationPattern, Sequence[CommunicationPattern], None] = None,
        graphs: Optional[Sequence[Any]] = None,
        adversary: Optional[AdversarialPattern] = None,
        record_every: int = 1,
        scenario_labels: Optional[Sequence[object]] = None,
        model: Optional[NetworkModel] = None,
        certify: Union[bool, CertifySpec, None] = None,
        faults: Union[FaultSpec, FaultPlan, None] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        if not isinstance(algorithm, Algorithm):
            raise ConfigError(
                f"Study needs an Algorithm instance, got {type(algorithm).__name__}"
            )
        if scenario is not None:
            inline_given = (
                initial_values is not None
                or pattern is not None
                or graphs is not None
                or adversary is not None
                or rounds is not None
                or record_every != 1
                or scenario_labels is not None
            )
            if inline_given:
                raise ConfigError(
                    "pass either a prebuilt scenario= or the inline scenario fields "
                    "(initial_values/rounds/pattern/graphs/adversary/record_every/"
                    "scenario_labels), not both"
                )
            self._spec = scenario
        else:
            if initial_values is None:
                raise ConfigError("Study needs initial_values= (or a prebuilt scenario=)")
            self._spec = ScenarioSpec(
                initial_values=initial_values,
                rounds=rounds,
                pattern=pattern,
                graphs=graphs,
                adversary=adversary,
                record_every=record_every,
                scenario_labels=scenario_labels,
            )
        self._algorithm = algorithm
        self._model = model
        if certify is True:
            certify = CertifySpec()
        elif certify is False:
            certify = None
        if certify is not None and not isinstance(certify, CertifySpec):
            raise ConfigError(
                f"certify must be True/False or a CertifySpec, got {type(certify).__name__}"
            )
        if certify is not None and model is None:
            raise ConfigError("certification needs a network model: pass model=")
        self._certify = certify
        if faults is not None and not isinstance(faults, (FaultSpec, FaultPlan)):
            raise ConfigError(
                f"faults must be a FaultSpec, FaultPlan or None, got {type(faults).__name__}"
            )
        plan = faults.compile() if isinstance(faults, FaultSpec) else faults
        if plan is not None and plan.is_zero():
            plan = None  # a zero plan is bit-for-bit fault-free
        if plan is not None and self._spec.adversary is not None:
            raise ConfigError(
                "faults= cannot be combined with adversary=: the adversary's "
                "committed graph history would diverge from the faulted realized "
                "graphs; run the adversary fault-free and replay its committed "
                "schedules as a faulted graphs= study instead"
            )
        self._faults = plan  # compiled but unresolved: the seed pins at run()
        self._config = config

    @property
    def scenario(self) -> ScenarioSpec:
        return self._spec

    def run(self) -> StudyResult:
        """Execute the study and return its :class:`StudyResult`.

        The scoped :class:`~repro.config.EngineConfig` is entered around the
        whole run (engine dispatch *and* certification), so the result is
        bit-for-bit identical to issuing the compiled engine call inside the
        same ``with config:`` block.
        """
        config = self._config if self._config is not None else EngineConfig()
        with config:
            execution, provenance = self._execute()
            certificates = (
                self._run_certification(execution) if self._certify is not None else None
            )
        return StudyResult(
            execution=execution, provenance=provenance, certificates=certificates
        )

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #

    def _execute(self) -> Tuple[Union[Execution, EnsembleExecution], StudyProvenance]:
        spec = self._spec
        merged = current_engine_config()
        # Pin the plan's seed to the config scope entered by run(), so the
        # study realizes the same faults as a direct engine call inside the
        # same ``with config:`` block.
        plan = as_fault_plan(self._faults)
        if not spec.is_ensemble():
            pattern = spec.adversary or spec.pattern
            if pattern is None:
                pattern = self._single_scenario_pattern(spec.graphs)
            if not isinstance(pattern, CommunicationPattern):
                raise ConfigError(
                    "a single-scenario study needs one CommunicationPattern or "
                    f"AdversarialPattern, got {type(pattern).__name__}"
                )
            if plan is not None:
                # Mask the pattern's graphs round by round with scenario 0's
                # draws — the same effective graphs as scenario 0 of a
                # faulted one-scenario ensemble.
                pattern = FaultMaskingPattern(pattern, plan)
            execution = run_execution(
                self._algorithm,
                spec.initial_values,
                pattern,
                spec.rounds,
                record_every=spec.record_every,
            )
            resolved = resolve_use_fast_path(None)
            fast_path = self._algorithm.supports_batch() if resolved is None else resolved
            return execution, StudyProvenance(
                route="run_execution",
                fast_path=bool(fast_path),
                batched=None,
                config=merged,
                faulted=plan is not None,
            )

        # Certified ensembles need the per-scenario configuration snapshots
        # the certification engine restores its batch states from.
        record_states = self._certify is not None
        if spec.adversary is not None:
            result = run_adversarial_ensemble(
                self._algorithm,
                spec.initial_values,
                spec.adversary,
                spec.rounds,
                record_every=spec.record_every,
                scenario_labels=spec.scenario_labels,
                record_states=record_states,
            )
            route = "run_adversarial_ensemble"
        elif spec.pattern is not None:
            result = run_pattern_ensemble(
                self._algorithm,
                spec.initial_values,
                spec.pattern,
                spec.rounds,
                record_every=spec.record_every,
                scenario_labels=spec.scenario_labels,
                record_states=record_states,
                fault_plan=plan,
            )
            route = "run_pattern_ensemble"
        else:
            result = run_ensemble(
                self._algorithm,
                spec.initial_values,
                spec.graphs,
                record_every=spec.record_every,
                scenario_labels=spec.scenario_labels,
                record_states=record_states,
                fault_plan=plan,
            )
            route = "run_ensemble"
        resolved = resolve_use_fast_path(None)
        fast_path = self._algorithm.supports_batch() if resolved is None else resolved
        return result, StudyProvenance(
            route=route,
            fast_path=bool(fast_path),
            batched=result.batched,
            config=merged,
            faulted=plan is not None,
        )

    @staticmethod
    def _single_scenario_pattern(graphs: Sequence[Any]) -> SequencePattern:
        graph_list = list(graphs)
        for entry in graph_list:
            if not isinstance(entry, CommunicationGraph):
                raise EnsembleShapeError(
                    "a single-scenario graph list must contain CommunicationGraph "
                    f"entries, got {type(entry).__name__} (per-scenario graph "
                    "sequences need stacked (B, n, d) initial values)"
                )
        return SequencePattern(graph_list)

    # ------------------------------------------------------------------ #
    # Certification
    # ------------------------------------------------------------------ #

    def _certification_estimator(self) -> ValencyEstimator:
        certify = self._certify
        return ValencyEstimator(
            self._algorithm,
            self._model,
            suffix_rounds=certify.suffix_rounds,
            exploration_depth=certify.exploration_depth,
            use_batch=certify.use_batch,
            scenario_chunk=certify.scenario_chunk,
        )

    @staticmethod
    def _certificates_from_estimates(
        estimates: List[ValencyEstimate], configurations: List
    ) -> StudyCertificates:
        trace = [float(estimate.lower_diameter) for estimate in estimates]
        try:
            # Route the per-scenario diameters through the exact code path
            # single-scenario studies use, so the rates agree bit-for-bit.
            output_rate = empirical_contraction_rate(
                Execution(algorithm_name="", configurations=list(configurations))
            )
        except ValueError:
            output_rate = float("nan")
        return StudyCertificates(
            estimates=estimates,
            valency_trace=trace,
            output_rate=output_rate,
            rate_interval=(fit_trace_rate(trace), output_rate),
        )

    def _run_certification(
        self, execution: Union[Execution, EnsembleExecution]
    ) -> Union[StudyCertificates, List[StudyCertificates]]:
        estimator = self._certification_estimator()
        if isinstance(execution, EnsembleExecution):
            # Ensemble-scale certification: all scenarios' sampled futures run
            # as stacked ensemble passes, returning one certificate per
            # scenario — bit-for-bit what B single-scenario studies produce.
            per_scenario = estimator.certify_ensemble(execution)
            return [
                self._certificates_from_estimates(
                    estimates, execution.scenario_configurations(scenario)
                )
                for scenario, estimates in enumerate(per_scenario)
            ]
        estimates = estimator.trace(execution.configurations)
        return self._certificates_from_estimates(estimates, execution.configurations)

    def __repr__(self) -> str:
        spec = self._spec
        source = (
            "adversary"
            if spec.adversary is not None
            else ("pattern" if spec.pattern is not None else "graphs")
        )
        return (
            f"Study({self._algorithm.name}, rounds={spec.rounds}, source={source}, "
            f"ensemble={spec.is_ensemble()}, certify={self._certify is not None})"
        )


__all__ = [
    "CertifySpec",
    "EngineConfig",
    "ScenarioSpec",
    "Study",
    "StudyCertificates",
    "StudyProvenance",
    "StudyResult",
]
