"""Unified engine configuration: every execution knob in one declarative object.

The engines grew their tuning knobs one PR at a time: ``use_fast_path`` on
:func:`repro.execution.run_execution`, ``use_batch`` on the adversaries and
the :class:`~repro.core.valency.ValencyEstimator`, ``use_packed`` on the
α-relation kernels, and the module-level masked-reduction setters of
:mod:`repro.algorithms.base`.  :class:`EngineConfig` consolidates all of them
into a single dataclass that doubles as an exception-safe, *thread-local*
context manager:

>>> from repro.config import EngineConfig
>>> with EngineConfig(use_fast_path=False, reduction_impl="dense"):
...     ...  # every engine entry point inside the block sees the overrides

Every field defaults to ``None``, meaning "inherit": from an enclosing
``EngineConfig`` block if one is active, else from the library default
(auto-select fast path, batched evaluation on, packed kernels on, ``"auto"``
reductions, 4096-scenario valency chunks).  Entering a config applies the
masked-reduction fields immediately (and restores the previous values on
exit, even when the body raises); the tri-state fields are consulted lazily
by the engine entry points through the ``resolve_*`` helpers below.

Configs nest: the innermost block wins field-by-field.  The active stack is
thread-local, so concurrent studies can run under different configurations
without racing each other — the masked-reduction settings themselves are
thread-local too (see :mod:`repro.algorithms.base`).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.algorithms.base import (
    ChunkSetting,
    _apply_masked_reduction_chunks,
    _apply_masked_reduction_impl,
    _validate_chunk_setting,
    get_masked_reduction_chunks,
    get_masked_reduction_impl,
)
from repro.exceptions import AlgorithmError, ConfigError

#: Library defaults the ``resolve_*`` helpers fall back to when neither an
#: explicit argument nor an active config sets a field.
_DEFAULT_USE_BATCH = True
_DEFAULT_USE_PACKED = True
_DEFAULT_SCENARIO_CHUNK = 4096
_DEFAULT_SEED = 0


def _default_threads() -> int:
    """Library-default worker count: the ``REPRO_THREADS`` env var, else 1.

    Read per call (not cached at import) so test harnesses and CI matrix jobs
    can flip the default without re-importing the library.
    """
    raw = os.environ.get("REPRO_THREADS")
    if raw is None:
        return 1
    try:
        threads = int(raw)
    except ValueError as exc:
        raise ConfigError(f"REPRO_THREADS must be a positive int, got {raw!r}") from exc
    if threads < 1:
        raise ConfigError(f"REPRO_THREADS must be a positive int, got {raw!r}")
    return threads


#: Fields that participate in the innermost-wins merge.
_CONFIG_FIELDS = (
    "use_fast_path",
    "use_batch",
    "use_packed",
    "reduction_impl",
    "reduction_batch_chunk",
    "reduction_receiver_chunk",
    "scenario_chunk",
    "seed",
    "threads",
)


@dataclass
class EngineConfig:
    """Declarative bundle of every engine execution knob.

    Attributes
    ----------
    use_fast_path:
        Tri-state fast-path selection of the round engine (``None`` =
        auto-select, ``False`` = per-agent reference path, ``True`` = require
        the vectorized path).  Consulted by every entry point that accepts a
        ``use_fast_path`` keyword when that keyword is left at ``None``.
    use_batch:
        Whether adversaries, ensemble runners and the valency estimator
        evaluate candidates/futures as stacked ensembles (default ``True``)
        or through their per-item reference loops (``False``).
    use_packed:
        Whether the α/β-relation analyses use the packed witness-tensor
        kernels (default ``True``) or the per-pair reference loops.
    reduction_impl:
        Implementation of the general masked-reduction case: ``"auto"``,
        ``"dense"`` or ``"packed"`` (see
        :func:`repro.algorithms.base.masked_reduction_impl`).
    reduction_batch_chunk / reduction_receiver_chunk:
        Chunk settings of the masked reductions over the leading (scenario)
        and receiver axes: ``"auto"``, ``"dense"`` or a positive block size.
    scenario_chunk:
        Upper bound on the number of stacked scenarios per batched valency
        pass (default 4096).
    seed:
        The config-scoped RNG seed (default 0).  Every stochastic engine
        component — :class:`~repro.asynchrony.schedulers.RandomDelayScheduler`
        and the :class:`~repro.faults.FaultPlan` samplers — derives its
        streams from this single seed (via disjoint per-purpose seed tuples),
        so a faulted run is reproduced exactly by re-entering the same
        config, across threads included (the stack is thread-local).
    threads:
        Worker count of the parallel ensemble backend (default 1 = the serial
        path; the ``REPRO_THREADS`` env var overrides the library default).
        Values > 1 shard the scenario (B) axis of the ensemble runners and
        the valency certifier across a :class:`ThreadPoolExecutor` owned by
        the config block; results are bit-for-bit identical to the serial
        path (see :mod:`repro.execution.parallel`).  The pool is created
        lazily on first use and torn down when the block exits.
    """

    use_fast_path: Optional[bool] = None
    use_batch: Optional[bool] = None
    use_packed: Optional[bool] = None
    reduction_impl: Optional[str] = None
    reduction_batch_chunk: Optional[ChunkSetting] = None
    reduction_receiver_chunk: Optional[ChunkSetting] = None
    scenario_chunk: Optional[int] = None
    seed: Optional[int] = None
    threads: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("use_fast_path", "use_batch", "use_packed"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, bool):
                raise ConfigError(f"{name} must be True, False or None, got {value!r}")
        if self.reduction_impl is not None and self.reduction_impl not in (
            "auto",
            "dense",
            "packed",
        ):
            raise ConfigError(
                f"reduction_impl must be 'auto', 'dense', 'packed' or None, "
                f"got {self.reduction_impl!r}"
            )
        for name in ("reduction_batch_chunk", "reduction_receiver_chunk"):
            value = getattr(self, name)
            if value is not None:
                try:
                    _validate_chunk_setting(name, value)
                except AlgorithmError as exc:
                    raise ConfigError(str(exc)) from exc
        if self.scenario_chunk is not None and (
            isinstance(self.scenario_chunk, bool)
            or not isinstance(self.scenario_chunk, int)
            or self.scenario_chunk < 1
        ):
            raise ConfigError(
                f"scenario_chunk must be a positive int or None, got {self.scenario_chunk!r}"
            )
        if self.seed is not None and (
            isinstance(self.seed, bool)
            or not isinstance(self.seed, int)
            or self.seed < 0
        ):
            raise ConfigError(
                f"seed must be a non-negative int or None, got {self.seed!r}"
            )
        if self.threads is not None and (
            isinstance(self.threads, bool)
            or not isinstance(self.threads, int)
            or self.threads < 1
        ):
            raise ConfigError(
                f"threads must be a positive int or None, got {self.threads!r}"
            )

    def to_dict(self) -> dict:
        """A versioned JSON-safe encoding; invert with :meth:`from_dict`.

        Every field is already JSON-native (``None``/bool/int/str), so the
        encoding is the field dict plus a type/version header — canonical
        for a given config, which lets the service layer content-hash it.
        """
        payload = {"__type__": "EngineConfig", "version": 1}
        for name in _CONFIG_FIELDS:
            payload[name] = getattr(self, name)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineConfig":
        from repro.exceptions import SerializationError

        if not isinstance(payload, dict) or payload.get("__type__") != "EngineConfig":
            raise SerializationError(
                f"expected an EngineConfig payload, got "
                f"__type__={payload.get('__type__') if isinstance(payload, dict) else payload!r}"
            )
        version = payload.get("version")
        if version != 1:
            raise SerializationError(
                f"EngineConfig payload version {version!r} is not supported "
                "(this library reads version 1)"
            )
        return cls(**{name: payload.get(name) for name in _CONFIG_FIELDS})

    # ------------------------------------------------------------------ #
    # Context-manager protocol
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "EngineConfig":
        # The saved reduction snapshot lives in the *thread-local* stack
        # entry, never on this (possibly shared) instance: one EngineConfig
        # object entered concurrently from several threads must not pop
        # another thread's snapshot.
        saved = (get_masked_reduction_chunks(), get_masked_reduction_impl())
        _ACTIVE_CONFIGS.stack.append(_StackEntry(self, saved))
        try:
            if (
                self.reduction_batch_chunk is not None
                or self.reduction_receiver_chunk is not None
            ):
                current = saved[0]
                _apply_masked_reduction_chunks(
                    batch=(
                        self.reduction_batch_chunk
                        if self.reduction_batch_chunk is not None
                        else current["batch"]
                    ),
                    receivers=(
                        self.reduction_receiver_chunk
                        if self.reduction_receiver_chunk is not None
                        else current["receivers"]
                    ),
                )
            if self.reduction_impl is not None:
                _apply_masked_reduction_impl(self.reduction_impl)
        except BaseException:
            _pop_entry_for(self)
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        entry = _pop_entry_for(self)
        if entry is not None:
            chunks, impl = entry.saved
            _apply_masked_reduction_chunks(
                batch=chunks["batch"], receivers=chunks["receivers"]
            )
            _apply_masked_reduction_impl(impl)
            if entry.pool is not None:
                entry.pool.shutdown(wait=True)
                entry.pool = None
        return False


class _StackEntry:
    """One thread-local activation of a config block.

    Carries the entered config, the thread's reduction snapshot to restore on
    exit, and — when the parallel backend runs inside the block — the block's
    lazily-created worker pool.  The pool lives on the stack entry rather
    than on the (possibly shared) :class:`EngineConfig` instance so that one
    config object entered concurrently from several threads gets one pool
    per activation, each torn down by its own ``__exit__``.
    """

    __slots__ = ("config", "saved", "pool", "pool_size")

    def __init__(self, config: EngineConfig, saved: Tuple[dict, str]) -> None:
        self.config = config
        self.saved = saved
        self.pool: Optional[ThreadPoolExecutor] = None
        self.pool_size = 0


class _ConfigStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[_StackEntry] = []


_ACTIVE_CONFIGS = _ConfigStack()


def _pop_entry_for(config: EngineConfig) -> Optional[_StackEntry]:
    """Remove and return this thread's innermost stack entry for ``config``."""
    stack = _ACTIVE_CONFIGS.stack
    for index in range(len(stack) - 1, -1, -1):
        if stack[index].config is config:
            entry = stack[index]
            del stack[index]
            return entry
    return None


def _acquire_worker_pool(threads: int) -> Optional[ThreadPoolExecutor]:
    """The active block's lazily-created worker pool for ``threads`` workers.

    Walks this thread's config stack for the innermost entry that sets
    ``threads`` (the entry whose value :func:`resolve_threads` returns) and
    creates its pool on first use; the pool is then reused by every parallel
    run inside the block and shut down by the block's ``__exit__``.  Returns
    ``None`` when no active block owns a matching pool — e.g. the count came
    from an explicit keyword or the ``REPRO_THREADS`` default — in which case
    the caller runs a transient pool for the duration of the call.
    """
    for entry in reversed(_ACTIVE_CONFIGS.stack):
        if entry.config.threads is not None:
            if entry.pool is None:
                entry.pool = ThreadPoolExecutor(
                    max_workers=threads, thread_name_prefix="repro-shard"
                )
                entry.pool_size = threads
            elif entry.pool_size != threads:
                return None
            return entry.pool
    return None


def _lookup(field_name: str):
    """Innermost non-None value of a field on the active config stack.

    Kept allocation-free: the resolvers run on hot engine paths (one call
    per ``apply_graph`` on the reference loops), so no merged dataclass is
    built here.
    """
    for entry in reversed(_ACTIVE_CONFIGS.stack):
        value = getattr(entry.config, field_name)
        if value is not None:
            return value
    return None


def current_engine_config() -> EngineConfig:
    """The merged view of the thread's active config blocks (innermost wins).

    Fields no active block sets stay ``None``; the ``resolve_*`` helpers map
    those to the library defaults.
    """
    merged = {}
    for entry in _ACTIVE_CONFIGS.stack:
        for name in _CONFIG_FIELDS:
            value = getattr(entry.config, name)
            if value is not None:
                merged[name] = value
    return EngineConfig(**merged)


def resolve_use_fast_path(explicit: Optional[bool] = None) -> Optional[bool]:
    """Fast-path tri-state: explicit argument, else active config, else auto (None)."""
    if explicit is not None:
        return explicit
    return _lookup("use_fast_path")


def resolve_use_batch(explicit: Optional[bool] = None) -> bool:
    """Batched-evaluation flag: explicit argument, else active config, else True."""
    if explicit is not None:
        return explicit
    configured = _lookup("use_batch")
    return _DEFAULT_USE_BATCH if configured is None else configured


def resolve_use_packed(explicit: Optional[bool] = None) -> bool:
    """Packed-kernel flag: explicit argument, else active config, else True."""
    if explicit is not None:
        return explicit
    configured = _lookup("use_packed")
    return _DEFAULT_USE_PACKED if configured is None else configured


def resolve_scenario_chunk(explicit: Optional[int] = None) -> int:
    """Valency scenario-chunk bound: explicit argument, else config, else 4096."""
    if explicit is not None:
        return explicit
    configured = _lookup("scenario_chunk")
    return _DEFAULT_SCENARIO_CHUNK if configured is None else configured


def resolve_seed(explicit: Optional[int] = None) -> int:
    """Config-scoped RNG seed: explicit argument, else active config, else 0."""
    if explicit is not None:
        return explicit
    configured = _lookup("seed")
    return _DEFAULT_SEED if configured is None else configured


def resolve_threads(explicit: Optional[int] = None) -> int:
    """Parallel worker count: explicit argument, else config, else REPRO_THREADS, else 1."""
    if explicit is not None:
        if (
            isinstance(explicit, bool)
            or not isinstance(explicit, int)
            or explicit < 1
        ):
            raise ConfigError(f"threads must be a positive int or None, got {explicit!r}")
        return explicit
    configured = _lookup("threads")
    return _default_threads() if configured is None else configured


__all__ = [
    "EngineConfig",
    "current_engine_config",
    "resolve_scenario_chunk",
    "resolve_seed",
    "resolve_threads",
    "resolve_use_batch",
    "resolve_use_fast_path",
    "resolve_use_packed",
]
