"""Seed-deterministic structured mutation of corpus parents.

The campaign breeds new cases by mutating corpus entries instead of blind
resampling: a mutation keeps most of a parent's structure (values, graph
schedule, plan) and changes one or two aspects — shape, a round, some edges,
a fault knob, the target pair.  ``mutate_spec(spec, seed)`` is a pure
function of the parent's content and the seed, so a campaign round replans
identically after a crash-resume.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import List, Optional

import numpy as np

from repro.campaign.registry import get_entry, random_strongly_connected_graph
from repro.campaign.targets import (
    TARGETS,
    CaseSpec,
    RoundGraphs,
    _stable_int,
    enumerate_targets,
    random_fault_plan,
)
from repro.faults import FaultPlan
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.generators import random_graph

_MUTATE_NAMESPACE = 0x3D7A7E


def _restrict_plan(plan: Optional[FaultPlan], n: int) -> Optional[FaultPlan]:
    """Drop crash/join specs that reference agents outside ``0..n-1``."""
    if plan is None:
        return None
    crashes = tuple(
        dc_replace(
            c,
            final_recipients=None
            if c.final_recipients is None
            else frozenset(a for a in c.final_recipients if a < n),
        )
        for c in plan.crashes
        if c.agent < n
    )
    joins = tuple(j for j in plan.joins if j.agent < n)
    return dc_replace(plan, crashes=crashes, joins=joins)


def _resize_values(
    values: np.ndarray, rng: np.random.Generator, batch: int, n: int, d: int
) -> np.ndarray:
    """Resize a (B, n, d) tensor, keeping the overlapping block of the parent."""
    resized = rng.uniform(-2.0, 2.0, size=(batch, n, d))
    b0 = min(batch, values.shape[0])
    n0 = min(n, values.shape[1])
    d0 = min(d, values.shape[2])
    resized[:b0, :n0, :d0] = values[:b0, :n0, :d0]
    return resized


def _round_graphs(
    spec: CaseSpec, rng: np.random.Generator, n: int, batch: int
) -> RoundGraphs:
    entry = get_entry(spec.algorithm)
    p = float(rng.uniform(0.15, 0.95))
    if entry.needs_fixed_graph:
        return random_strongly_connected_graph(n, rng, p)
    if rng.random() < 0.5:
        return random_graph(n, rng, p)
    return tuple(random_graph(n, rng, p) for _ in range(batch))


def _rebuild_graphs(spec: CaseSpec, rng: np.random.Generator, n: int, batch: int):
    """Regenerate the whole schedule at a new shape (shape mutations)."""
    entry = get_entry(spec.algorithm)
    if entry.needs_fixed_graph:
        fixed = random_strongly_connected_graph(n, rng, float(rng.uniform(0.3, 0.9)))
        return tuple([fixed] * spec.rounds)
    return tuple(_round_graphs(spec, rng, n, batch) for _ in range(spec.rounds))


# Each operator returns a mutated spec, or None when inapplicable.  The
# operator list and its order are part of the deterministic contract.


def _op_resize_batch(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    batch = int(rng.integers(1, 5))
    if batch == spec.batch:
        return None
    values = _resize_values(spec.values, rng, batch, spec.n, spec.d)
    graphs = []
    for g in spec.graphs:
        if isinstance(g, CommunicationGraph):
            graphs.append(g)
        else:
            graphs.append(tuple(g[b % len(g)] for b in range(batch)))
    return dc_replace(spec, values=values, graphs=tuple(graphs))


def _op_resize_n(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    entry = get_entry(spec.algorithm)
    if entry.fixed_n is not None:
        return None
    n = int(rng.integers(2, 9))
    if n == spec.n:
        return None
    values = _resize_values(spec.values, rng, spec.batch, n, spec.d)
    graphs = _rebuild_graphs(spec, rng, n, spec.batch)
    return dc_replace(
        spec, values=values, graphs=graphs, plan=_restrict_plan(spec.plan, n)
    )


def _op_resize_d(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    d = int(rng.integers(1, 4))
    if d == spec.d:
        return None
    values = _resize_values(spec.values, rng, spec.batch, spec.n, d)
    return dc_replace(spec, values=values)


def _op_add_round(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    if spec.rounds >= 9:
        return None
    entry = get_entry(spec.algorithm)
    if entry.needs_fixed_graph:
        extra: RoundGraphs = spec.graphs[0]
    else:
        extra = _round_graphs(spec, rng, spec.n, spec.batch)
    return dc_replace(spec, graphs=spec.graphs + (extra,))


def _op_drop_round(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    if spec.rounds <= 1:
        return None
    return dc_replace(spec, graphs=spec.graphs[:-1])


def _op_flip_edges(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    entry = get_entry(spec.algorithm)
    n = spec.n
    if n < 2:
        return None
    if entry.needs_fixed_graph:
        fixed = random_strongly_connected_graph(n, rng, float(rng.uniform(0.3, 0.9)))
        return dc_replace(spec, graphs=tuple([fixed] * spec.rounds))
    round_index = int(rng.integers(spec.rounds))
    round_graphs = spec.graphs[round_index]

    def flip(graph: CommunicationGraph) -> CommunicationGraph:
        adjacency = graph.adjacency.copy()
        for _ in range(int(rng.integers(1, 4))):
            i, j = int(rng.integers(n)), int(rng.integers(n))
            if i != j:
                adjacency[i, j] = not adjacency[i, j]
        return CommunicationGraph(n, adjacency=adjacency)

    if isinstance(round_graphs, CommunicationGraph):
        mutated: RoundGraphs = flip(round_graphs)
    else:
        scenario = int(rng.integers(len(round_graphs)))
        mutated = tuple(
            flip(g) if b == scenario else g for b, g in enumerate(round_graphs)
        )
    graphs = tuple(
        mutated if r == round_index else g for r, g in enumerate(spec.graphs)
    )
    return dc_replace(spec, graphs=graphs)


def _op_jitter_values(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    noise = rng.normal(0.0, 0.1, size=spec.values.shape)
    return dc_replace(spec, values=spec.values + noise)


def _op_mutate_plan(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    entry = get_entry(spec.algorithm)
    if not entry.supports_faults or not TARGETS[spec.target].requires_plan:
        return None
    if spec.plan is None or rng.random() < 0.3:
        return dc_replace(spec, plan=random_fault_plan(rng, spec.n, spec.rounds))
    plan = spec.plan
    knob = int(rng.integers(3))
    if knob == 0:
        plan = dc_replace(plan, drop=float(rng.uniform(0.0, 0.4)))
    elif knob == 1:
        plan = dc_replace(plan, seed=int(rng.integers(0, 2**31)))
    else:
        plan = dc_replace(plan, enforce_model=not plan.enforce_model)
    return dc_replace(spec, plan=plan)


def _op_record_every(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    record_every = int(rng.integers(1, 4))
    if record_every == spec.record_every:
        return None
    return dc_replace(spec, record_every=record_every)


def _op_retarget(spec: CaseSpec, rng: np.random.Generator) -> Optional[CaseSpec]:
    entry = get_entry(spec.algorithm)
    admissible = [t for t in enumerate_targets(entry) if t != spec.target]
    if not admissible:
        return None
    target = admissible[int(rng.integers(len(admissible)))]
    plan = spec.plan
    if TARGETS[target].requires_plan and plan is None:
        plan = random_fault_plan(rng, spec.n, spec.rounds)
    return dc_replace(spec, target=target, plan=plan)


_OPERATORS = (
    _op_resize_batch,
    _op_resize_n,
    _op_resize_d,
    _op_add_round,
    _op_drop_round,
    _op_flip_edges,
    _op_jitter_values,
    _op_mutate_plan,
    _op_record_every,
    _op_retarget,
)


def mutate_spec(spec: CaseSpec, seed: int) -> CaseSpec:
    """Derive a structured mutant of ``spec``; pure in ``(spec content, seed)``.

    Applies one or two operators drawn from a fixed list; operators that do
    not apply to the parent (e.g. resizing ``n`` of a fixed-``n`` algorithm)
    are skipped deterministically.
    """
    rng = np.random.default_rng(
        (_MUTATE_NAMESPACE, _stable_int(spec.key()), int(seed))
    )
    mutated = spec
    applications = 1 + int(rng.random() < 0.35)
    for _ in range(applications):
        order = rng.permutation(len(_OPERATORS))
        for index in order:
            candidate = _OPERATORS[int(index)](mutated, rng)
            if candidate is not None:
                mutated = candidate
                break
    return mutated


__all__ = ["mutate_spec"]
