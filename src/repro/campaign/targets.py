"""Auto-generated differential-fuzz targets and the case executor.

A *target* is one toggle pair of the engine stack — two routes that promise
bit-for-bit (or last-ulp) identical results for the same scenario:

* ``fast_vs_reference`` — ``run_execution`` with ``use_fast_path`` on/off,
* ``batch_vs_loop`` — ``run_ensemble`` with ``use_batch`` on/off,
* ``packed_vs_dense`` — the batched ensemble under the packed vs the dense
  masked-reduction kernels,
* ``facade_vs_direct`` — ``Study`` vs the engine call it compiles to,
* ``faulted_batch_vs_loop`` — the vectorized fault-mask path vs the
  per-scenario reference loop under a :class:`~repro.faults.FaultPlan`,
* ``zero_fault_vs_none`` — ``FaultPlan()`` must be bit-for-bit invisible,
* ``simulator_vs_round`` — the event-heap simulator running the round-based
  wrapper at ``f = 0`` (lockstep, complete graph) vs the synchronous engine.

Targets are generated from the fuzz registry (:mod:`repro.campaign.registry`),
not hand-wired per algorithm: a :class:`CaseSpec` names a registry key plus
JSON-safe parameters, so registering an algorithm is sufficient to fuzz it
through every pair its capability flags admit.  Every spec serializes
canonically (via :mod:`repro.service.serialization`) and is rebuilt
bit-for-bit by :func:`CaseSpec.from_dict`, which is what makes corpus
entries and failure artifacts replayable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.algorithms.base import Algorithm, masked_reduction_impl
from repro.campaign.registry import (
    FuzzEntry,
    ORDERED_ENTRIES,
    get_entry,
    random_strongly_connected_graph,
)
from repro.exceptions import CampaignError, FaultModelError, ReproError
from repro.faults import CrashSpec, FaultPlan, JoinSpec
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import complete_graph
from repro.graphs.generators import random_graph
from repro.service.checkpoint import content_key
from repro.service.serialization import decode_array, decode_graph, encode_array, encode_graph

#: Comparison tolerance of the last-ulp (non-exact) pairs, mirroring
#: ``tests/test_equivalence.py`` and the CI fuzz suite.
ATOL = 1e-12

_CASE_TYPE = "campaign-case"
_SEED_NAMESPACE = 0xCA5E


def _stable_int(text: str) -> int:
    """A platform-stable 63-bit integer hash of a string (for rng seeding)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def case_rng(target: str, case_seed: int) -> np.random.Generator:
    return np.random.default_rng((_SEED_NAMESPACE, _stable_int(target), case_seed))


# --------------------------------------------------------------------------- #
# Case specification
# --------------------------------------------------------------------------- #

RoundGraphs = Union[CommunicationGraph, Tuple[CommunicationGraph, ...]]


@dataclass(frozen=True)
class CaseSpec:
    """One self-contained differential-fuzz case.

    Everything needed to re-execute the case bit-for-bit: the target pair,
    the registry key and JSON-safe parameters of the algorithm, the stacked
    ``(B, n, d)`` initial values, the per-round graph schedule (each round a
    shared graph or one graph per scenario), an optional fault plan, and an
    optional synthetic perturbation (the mutation-kill hook).
    """

    target: str
    algorithm: str
    params: Mapping[str, object]
    values: np.ndarray
    graphs: Tuple[RoundGraphs, ...]
    record_every: int = 1
    plan: Optional[FaultPlan] = None
    perturb: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        values = np.array(self.values, dtype=float)
        if values.ndim != 3:
            raise CampaignError(
                f"case values must be a (B, n, d) tensor, got shape {values.shape}"
            )
        values.setflags(write=False)
        object.__setattr__(self, "values", values)
        graphs = tuple(
            g if isinstance(g, CommunicationGraph) else tuple(g) for g in self.graphs
        )
        if not graphs:
            raise CampaignError("a case needs at least one round")
        for round_graphs in graphs:
            members = (
                (round_graphs,)
                if isinstance(round_graphs, CommunicationGraph)
                else round_graphs
            )
            if not isinstance(round_graphs, CommunicationGraph) and len(members) != self.batch:
                raise CampaignError(
                    f"per-scenario round has {len(members)} graphs for batch {self.batch}"
                )
            for graph in members:
                if graph.n != self.n:
                    raise CampaignError(
                        f"round graph has n={graph.n} but values have n={self.n}"
                    )
        object.__setattr__(self, "graphs", graphs)
        object.__setattr__(self, "params", dict(self.params))
        if self.perturb is not None:
            object.__setattr__(self, "perturb", dict(self.perturb))

    @property
    def batch(self) -> int:
        return int(self.values.shape[0])

    @property
    def n(self) -> int:
        return int(self.values.shape[1])

    @property
    def d(self) -> int:
        return int(self.values.shape[2])

    @property
    def rounds(self) -> int:
        return len(self.graphs)

    def to_dict(self) -> dict:
        graphs = []
        for round_graphs in self.graphs:
            if isinstance(round_graphs, CommunicationGraph):
                graphs.append({"shared": encode_graph(round_graphs)})
            else:
                graphs.append({"per_scenario": [encode_graph(g) for g in round_graphs]})
        return {
            "__type__": _CASE_TYPE,
            "version": 1,
            "target": self.target,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "values": encode_array(self.values),
            "graphs": graphs,
            "record_every": self.record_every,
            "plan": None if self.plan is None else self.plan.to_dict(),
            "perturb": None if self.perturb is None else dict(self.perturb),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CaseSpec":
        if not isinstance(payload, dict) or payload.get("__type__") != _CASE_TYPE:
            raise CampaignError(
                f"expected a {_CASE_TYPE} payload, got "
                f"__type__={payload.get('__type__') if isinstance(payload, dict) else payload!r}"
            )
        if payload.get("version") != 1:
            raise CampaignError(
                f"{_CASE_TYPE} payload version {payload.get('version')!r} is not supported"
            )
        graphs: List[RoundGraphs] = []
        for round_payload in payload["graphs"]:
            if "shared" in round_payload:
                graphs.append(decode_graph(round_payload["shared"]))
            else:
                graphs.append(
                    tuple(decode_graph(g) for g in round_payload["per_scenario"])
                )
        return cls(
            target=payload["target"],
            algorithm=payload["algorithm"],
            params=dict(payload["params"]),
            values=decode_array(payload["values"]),
            graphs=tuple(graphs),
            record_every=int(payload["record_every"]),
            plan=None if payload["plan"] is None else FaultPlan.from_dict(payload["plan"]),
            perturb=None if payload["perturb"] is None else dict(payload["perturb"]),
        )

    def key(self) -> str:
        """The content hash that names this case in corpus and journal."""
        return content_key(self.to_dict())


def scenario_graphs(spec: CaseSpec, scenario: int) -> List[CommunicationGraph]:
    """The per-round graph schedule seen by one scenario."""
    return [
        g if isinstance(g, CommunicationGraph) else g[scenario] for g in spec.graphs
    ]


def ensemble_graphs(spec: CaseSpec) -> list:
    """The graph schedule in the shape ``run_ensemble`` expects."""
    return [
        g if isinstance(g, CommunicationGraph) else list(g) for g in spec.graphs
    ]


def build_algorithm(spec: CaseSpec, side: Optional[str] = None) -> Algorithm:
    """Rebuild the case's algorithm (optionally perturbed for ``side``)."""
    entry = get_entry(spec.algorithm)
    graph = None
    if entry.needs_fixed_graph:
        first = spec.graphs[0]
        graph = first if isinstance(first, CommunicationGraph) else first[0]
    algorithm = entry.build(dict(spec.params), spec.n, graph)
    if spec.perturb is not None and side is not None and spec.perturb["side"] == side:
        algorithm = PerturbedAlgorithm(
            algorithm,
            round_number=int(spec.perturb["round"]),
            agent=int(spec.perturb["agent"]),
            epsilon=float(spec.perturb["epsilon"]),
        )
    return algorithm


# --------------------------------------------------------------------------- #
# Synthetic divergence: the mutation-kill wrapper
# --------------------------------------------------------------------------- #


class PerturbedAlgorithm(Algorithm):
    """Delegate to an inner algorithm, offsetting one agent's state.

    From ``round_number`` on, the designated agent's post-transition state is
    shifted by ``epsilon`` — on the per-agent reference path *and* on the
    vectorized batch path, so whichever side of a toggle pair carries the
    wrapper diverges from the unwrapped side by the same amount.  Only plain
    value-array states are perturbed (``perturbable`` registry entries).

    This is the deliberately broken toggle of the acceptance criteria: the
    campaign's mutation-kill tests wrap one side of a pair with it and assert
    the campaign finds, minimizes and replays the divergence.
    """

    def __init__(self, inner: Algorithm, round_number: int, agent: int, epsilon: float) -> None:
        if round_number < 1:
            raise CampaignError(f"perturbation rounds are 1-based, got {round_number}")
        if agent < 0:
            raise CampaignError(f"perturbation agent must be non-negative, got {agent}")
        self._inner = inner
        self._round = round_number
        self._agent = agent
        self._epsilon = epsilon

    # Per-agent reference path -------------------------------------------- #

    def initial_state(self, agent_id, initial_value, n):
        return self._inner.initial_state(agent_id, initial_value, n)

    def message(self, agent_id, state):
        return self._inner.message(agent_id, state)

    def transition(self, agent_id, state, received, round_number):
        new_state = self._inner.transition(agent_id, state, received, round_number)
        if (
            agent_id == self._agent
            and round_number >= self._round
            and isinstance(new_state, np.ndarray)
        ):
            new_state = new_state + self._epsilon
        return new_state

    def output(self, agent_id, state):
        return self._inner.output(agent_id, state)

    # Vectorized path ------------------------------------------------------ #

    def supports_batch(self):
        return self._inner.supports_batch()

    def batch_initial(self, values):
        return self._inner.batch_initial(values)

    def batch_transition(self, batch_state, adjacency, round_number):
        new_state = self._inner.batch_transition(batch_state, adjacency, round_number)
        if (
            round_number >= self._round
            and isinstance(new_state, np.ndarray)
            and self._agent < new_state.shape[-2]
        ):
            new_state = new_state.copy()
            new_state[..., self._agent, :] += self._epsilon
        return new_state

    def batch_outputs(self, batch_state):
        return self._inner.batch_outputs(batch_state)

    def batch_states(self, batch_state):
        return self._inner.batch_states(batch_state)

    def batch_map(self, batch_state, fn):
        return self._inner.batch_map(batch_state, fn)

    def batch_state_stack(self, batch_states):
        return self._inner.batch_state_stack(batch_states)

    def supports_batch_state(self):
        return self._inner.supports_batch_state()

    def batch_state_from_states(self, states):
        return self._inner.batch_state_from_states(states)

    def is_convex_combination(self):
        return self._inner.is_convex_combination()

    def round_invariant(self):
        # The perturbation fires from a specific round, so round-invariance
        # optimizations (fixpoint retiring) must not apply.
        return False

    @property
    def name(self):
        return f"perturbed({self._inner.name})"


# --------------------------------------------------------------------------- #
# Target definitions
# --------------------------------------------------------------------------- #

SideRunner = Callable[[CaseSpec, Algorithm], Dict[str, np.ndarray]]


@dataclass(frozen=True)
class Target:
    """One toggle pair: two side runners that must agree on every case."""

    key: str
    left: SideRunner
    right: SideRunner
    requires_batch: bool = False
    requires_plan: bool = False
    uses_simulator: bool = False
    #: ``True`` — the two sides promise bit-for-bit identity regardless of
    #: the algorithm; ``False`` — exactness follows the registry entry (the
    #: averaging family is compared to the last ulp).
    bitwise: bool = True


def _execution_payload(execution) -> Dict[str, np.ndarray]:
    return {
        "recorded_rounds": np.asarray(
            [c.round_number for c in execution.configurations], dtype=float
        ),
        "outputs": np.stack(
            [np.asarray(c.outputs, dtype=float) for c in execution.configurations]
        ),
        "diameters": np.asarray(execution.diameters(), dtype=float),
    }


def _ensemble_payload(execution) -> Dict[str, np.ndarray]:
    return {
        "recorded_rounds": np.asarray(execution.recorded_rounds, dtype=float),
        "recorded_outputs": np.asarray(execution.recorded_outputs, dtype=float),
        "diameters": np.asarray(execution.diameters(), dtype=float),
    }


def _side_execution(spec: CaseSpec, algorithm: Algorithm, use_fast_path: bool):
    from repro.execution import run_execution
    from repro.models.patterns import SequencePattern

    execution = run_execution(
        algorithm,
        spec.values[0],
        SequencePattern(scenario_graphs(spec, 0)),
        spec.rounds,
        record_every=spec.record_every,
        use_fast_path=use_fast_path,
    )
    return _execution_payload(execution)


def _side_ensemble(
    spec: CaseSpec,
    algorithm: Algorithm,
    use_batch: Optional[bool],
    fault_plan: Optional[FaultPlan] = None,
    impl: Optional[str] = None,
):
    from repro.execution import run_ensemble

    def run():
        return run_ensemble(
            algorithm,
            spec.values,
            ensemble_graphs(spec),
            record_every=spec.record_every,
            use_batch=use_batch,
            fault_plan=fault_plan,
        )

    if impl is not None:
        with masked_reduction_impl(impl):
            execution = run()
    else:
        execution = run()
    return _ensemble_payload(execution)


def _side_facade(spec: CaseSpec, algorithm: Algorithm):
    from repro.api import Study

    result = Study(
        algorithm=algorithm,
        initial_values=spec.values,
        graphs=ensemble_graphs(spec),
        record_every=spec.record_every,
    ).run()
    return _ensemble_payload(result.execution)


def _side_simulator(spec: CaseSpec, algorithm: Algorithm):
    from repro.asynchrony import AsynchronousSimulator, RoundBasedAsyncAlgorithm

    execution = AsynchronousSimulator(
        RoundBasedAsyncAlgorithm(algorithm),
        spec.values[0],
        f=0,
        max_time=float(spec.rounds) + 0.5,
    ).run()
    outputs = np.stack(
        [execution.outputs_at(float(k)) for k in range(spec.rounds + 1)]
    )
    return {"outputs": outputs, "final": np.asarray(execution.final_outputs, dtype=float)}


def _side_round_based(spec: CaseSpec, algorithm: Algorithm):
    from repro.execution import run_execution
    from repro.models.patterns import ConstantPattern

    # Lockstep f = 0 rounds deliver every message: the synchronous reference
    # is the complete graph, regardless of the spec's graph schedule.
    execution = run_execution(
        algorithm,
        spec.values[0],
        ConstantPattern(complete_graph(spec.n)),
        spec.rounds,
        record_every=1,
    )
    outputs = np.stack(
        [np.asarray(c.outputs, dtype=float) for c in execution.configurations]
    )
    return {"outputs": outputs, "final": outputs[-1]}


TARGETS: Dict[str, Target] = {
    target.key: target
    for target in (
        Target(
            key="fast_vs_reference",
            left=lambda spec, a: _side_execution(spec, a, use_fast_path=True),
            right=lambda spec, a: _side_execution(spec, a, use_fast_path=False),
            requires_batch=True,
            bitwise=False,
        ),
        Target(
            key="batch_vs_loop",
            left=lambda spec, a: _side_ensemble(spec, a, use_batch=True),
            right=lambda spec, a: _side_ensemble(spec, a, use_batch=False),
            requires_batch=True,
        ),
        Target(
            key="packed_vs_dense",
            left=lambda spec, a: _side_ensemble(spec, a, use_batch=True, impl="packed"),
            right=lambda spec, a: _side_ensemble(spec, a, use_batch=True, impl="dense"),
            requires_batch=True,
        ),
        Target(
            key="facade_vs_direct",
            left=_side_facade,
            right=lambda spec, a: _side_ensemble(spec, a, use_batch=None),
        ),
        Target(
            key="faulted_batch_vs_loop",
            left=lambda spec, a: _side_ensemble(
                spec, a, use_batch=True, fault_plan=spec.plan
            ),
            right=lambda spec, a: _side_ensemble(
                spec, a, use_batch=False, fault_plan=spec.plan
            ),
            requires_batch=True,
            requires_plan=True,
        ),
        Target(
            key="zero_fault_vs_none",
            left=lambda spec, a: _side_ensemble(
                spec, a, use_batch=None, fault_plan=FaultPlan()
            ),
            right=lambda spec, a: _side_ensemble(spec, a, use_batch=None),
        ),
        Target(
            key="simulator_vs_round",
            left=_side_simulator,
            right=_side_round_based,
            uses_simulator=True,
            bitwise=False,
        ),
    )
}


def enumerate_targets(entry: FuzzEntry) -> Tuple[str, ...]:
    """The target keys an entry's capability flags admit (in fixed order)."""
    keys = []
    for key, target in TARGETS.items():
        if target.requires_batch and entry.reference_only:
            continue
        if target.requires_plan and not entry.supports_faults:
            continue
        if target.uses_simulator and not entry.supports_simulator:
            continue
        keys.append(key)
    return tuple(keys)


# --------------------------------------------------------------------------- #
# Case generation
# --------------------------------------------------------------------------- #


def random_fault_plan(rng: np.random.Generator, n: int, rounds: int) -> FaultPlan:
    """Draw a deterministic random :class:`FaultPlan` from a case rng.

    ``enforce_model=False`` by default — random drops legitimately leave
    ``N_A`` and the output-equivalence half of a pair wants runs that
    complete; a fraction of cases flips enforcement back on so the invariant
    half (both paths raising :class:`FaultModelError` together) stays
    exercised.
    """
    drop = float(rng.uniform(0.05, 0.35)) if rng.random() < 0.7 else 0.0
    crashes, joins = [], []
    agents = [int(a) for a in rng.permutation(n)]
    for agent in agents[: int(rng.integers(0, min(2, n - 1) + 1))]:
        if rng.random() < 0.6:
            crash_round = int(rng.integers(1, rounds + 1))
            recipients = None
            if rng.random() < 0.4:
                recipients = frozenset(
                    int(a) for a in rng.permutation(n)[: int(rng.integers(0, n))]
                )
            recovery = None
            if rng.random() < 0.3:
                recovery = crash_round + int(rng.integers(1, 4))
            crashes.append(
                CrashSpec(
                    agent,
                    crash_round,
                    final_recipients=recipients,
                    recovery_round=recovery,
                )
            )
        else:
            joins.append(JoinSpec(agent, int(rng.integers(1, rounds + 2))))
    plan = FaultPlan(
        drop=drop,
        crashes=tuple(crashes),
        joins=tuple(joins),
        seed=int(rng.integers(0, 2**31)),
        enforce_model=bool(rng.random() < 0.25),
    )
    if plan.is_zero():
        plan = replace(plan, drop=0.2)
    return plan


def build_case(target: str, case_seed: int) -> CaseSpec:
    """Deterministically generate one random case for one target.

    Pure function of ``(target, case_seed)`` — nothing reads clocks or
    global RNG state — so the one-line repro ``run_case(target, seed)``
    replays the exact case.
    """
    if target not in TARGETS:
        raise CampaignError(f"unknown target {target!r} (known: {sorted(TARGETS)})")
    rng = case_rng(target, case_seed)
    target_def = TARGETS[target]
    candidates = [
        entry for entry in ORDERED_ENTRIES if target in enumerate_targets(entry)
    ]
    entry = candidates[int(rng.integers(len(candidates)))]
    n = entry.fixed_n if entry.fixed_n is not None else int(rng.integers(3, 9))
    d = int(rng.integers(1, 3))
    batch = int(rng.integers(1, 5))
    rounds = int(rng.integers(1, 8))
    params = entry.draw_params(rng)
    values = rng.uniform(-2.0, 2.0, size=(batch, n, d))
    edge_probability = float(rng.uniform(0.15, 0.95))
    graphs: List[RoundGraphs] = []
    if entry.needs_fixed_graph:
        fixed = random_strongly_connected_graph(n, rng, edge_probability)
        graphs = [fixed] * rounds
    else:
        for _ in range(rounds):
            if rng.random() < 0.5:
                graphs.append(random_graph(n, rng, edge_probability))
            else:
                graphs.append(
                    tuple(random_graph(n, rng, edge_probability) for _ in range(batch))
                )
    record_every = int(rng.integers(1, 4))
    plan = None
    if target_def.requires_plan:
        plan = random_fault_plan(rng, n, rounds)
    return CaseSpec(
        target=target,
        algorithm=entry.key,
        params=params,
        values=values,
        graphs=tuple(graphs),
        record_every=record_every,
        plan=plan,
    )


# --------------------------------------------------------------------------- #
# Case execution
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Divergence:
    """The first observed disagreement between the two sides of a pair."""

    label: str
    expected: Dict[str, np.ndarray]
    actual: Dict[str, np.ndarray]


@dataclass(frozen=True)
class CaseResult:
    """The outcome of executing one case."""

    status: str  # "agree" | "divergence" | "skip"
    reason: str = ""
    exact: bool = True
    #: Largest absolute elementwise difference across compared payloads
    #: (the near-miss magnitude of tolerance-compared agreements).
    max_diff: float = 0.0
    divergence: Optional[Divergence] = None


def _skip(reason: str) -> CaseResult:
    return CaseResult(status="skip", reason=reason)


def _error_payload(error: ReproError) -> Dict[str, np.ndarray]:
    return {"error": np.frombuffer(repr(error).encode("utf-8"), dtype=np.uint8)}


def _errors_agree(left: ReproError, right: ReproError, batch: int) -> bool:
    if type(left) is not type(right):
        return False
    if isinstance(left, FaultModelError) and batch == 1:
        # With a single scenario there is no processing-order ambiguity: the
        # two paths must blame the identical (scenario, round, agent).
        return (left.scenario, left.round_number, left.agent) == (
            right.scenario,
            right.round_number,
            right.agent,
        )
    return True


def execute_case(spec: CaseSpec) -> CaseResult:
    """Run both sides of a case's target and compare the payloads."""
    entry = get_entry(spec.algorithm)
    target = TARGETS.get(spec.target)
    if target is None:
        raise CampaignError(f"unknown target {spec.target!r}")
    if target.requires_batch and entry.reference_only:
        return _skip(f"{entry.key} is reference-only (no batch hooks)")
    if target.requires_plan and spec.plan is None:
        return _skip("target requires a fault plan but the spec has none")
    if target.requires_plan and not entry.supports_faults:
        return _skip(f"{entry.key} does not support fault plans")
    if target.uses_simulator and not entry.supports_simulator:
        return _skip(f"{entry.key} does not support the simulator route")
    if target.uses_simulator and spec.n < 2:
        # The round-based wrapper rejects the degenerate quorum n - f = 1,
        # so a single agent has no asynchronous route to compare against.
        return _skip("the simulator route needs at least 2 agents")
    exact = target.bitwise or entry.exact

    def run_side(runner: SideRunner, side: str):
        algorithm = build_algorithm(spec, side=side)
        try:
            return runner(spec, algorithm), None
        except ReproError as error:
            return None, error

    left, left_error = run_side(target.left, "left")
    right, right_error = run_side(target.right, "right")

    if left_error is not None or right_error is not None:
        if (
            left_error is not None
            and right_error is not None
            and _errors_agree(left_error, right_error, spec.batch)
        ):
            return CaseResult(status="agree", reason="both sides raised", exact=exact)
        return CaseResult(
            status="divergence",
            reason="error",
            exact=exact,
            divergence=Divergence(
                label="error",
                expected=right if right_error is None else _error_payload(right_error),
                actual=left if left_error is None else _error_payload(left_error),
            ),
        )

    max_diff = 0.0
    for label in sorted(set(left) | set(right)):
        got, want = left.get(label), right.get(label)
        if got is None or want is None or got.shape != want.shape:
            return CaseResult(
                status="divergence",
                reason=f"{label}: shape mismatch",
                exact=exact,
                divergence=Divergence(label=label, expected=right, actual=left),
            )
        if got.size:
            finite = np.isfinite(got) & np.isfinite(want)
            if finite.any():
                max_diff = max(max_diff, float(np.abs(got[finite] - want[finite]).max()))
        if exact:
            same = np.array_equal(got, want, equal_nan=True)
        else:
            same = np.allclose(got, want, rtol=0.0, atol=ATOL, equal_nan=True)
        if not same:
            return CaseResult(
                status="divergence",
                reason=f"{label}: outputs differ",
                exact=exact,
                divergence=Divergence(label=label, expected=right, actual=left),
            )
    return CaseResult(status="agree", exact=exact, max_diff=max_diff)


def run_case(target: str, case_seed: int) -> CaseResult:
    """Build and execute one generated case (the campaign repro entry point).

    Raises :class:`CampaignError` on divergence, so a repro snippet behaves
    like a failing assertion when pasted into a shell.
    """
    spec = build_case(target, case_seed)
    result = execute_case(spec)
    if result.status == "divergence":
        raise CampaignError(
            f"case diverged: {result.reason}\nspec key: {spec.key()}"
        )
    return result


__all__ = [
    "ATOL",
    "CaseResult",
    "CaseSpec",
    "Divergence",
    "PerturbedAlgorithm",
    "TARGETS",
    "Target",
    "build_algorithm",
    "build_case",
    "case_rng",
    "ensemble_graphs",
    "enumerate_targets",
    "execute_case",
    "random_fault_plan",
    "run_case",
    "scenario_graphs",
]
