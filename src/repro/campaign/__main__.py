"""Command-line entry point for counterexample campaigns.

Subcommands::

    python -m repro.campaign run --seed 1 --budget 32 --corpus DIR --journal FILE
    python -m repro.campaign replay ARTIFACT.json
    python -m repro.campaign audit [--strict]

``run`` exits 0 unless ``--fail-on-divergence`` is given and a divergence
was found (exit 1).  ``replay`` exits 0 only when the artifact reproduces
bit-for-bit.  ``audit`` exits 0 only when every registered algorithm has a
fuzz entry and capability flags match reality.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.campaign.artifacts import replay_artifact
from repro.campaign.campaign import run_campaign
from repro.campaign.registry import audit_registry
from repro.campaign.targets import TARGETS


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Coverage-guided counterexample campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run (or resume) a campaign")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--budget", type=int, default=32, help="total cases to execute")
    run.add_argument("--batch", type=int, default=16, help="cases per journaled round")
    run.add_argument("--corpus", default="campaign-corpus", help="corpus directory")
    run.add_argument(
        "--journal", default="campaign-journal.jsonl", help="checkpoint journal file"
    )
    run.add_argument("--artifacts", default=None, help="artifact directory")
    run.add_argument(
        "--targets",
        nargs="+",
        choices=sorted(TARGETS),
        default=None,
        help="restrict to these toggle pairs",
    )
    run.add_argument(
        "--fail-on-divergence",
        action="store_true",
        help="exit 1 when any divergence is found (CI smoke mode)",
    )
    run.add_argument(
        "--broken",
        action="store_true",
        help="deliberately break one toggle side (self-test: the campaign "
        "must find, minimize and persist the planted divergence)",
    )

    replay = sub.add_parser("replay", help="replay a failure artifact")
    replay.add_argument("artifact", help="path to a campaign artifact JSON file")

    audit = sub.add_parser("audit", help="audit the fuzz registry")
    audit.add_argument(
        "--strict", action="store_true", help="raise instead of printing on failure"
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    perturb = None
    if args.broken:
        perturb = {"side": "left", "round": 1, "agent": 0, "epsilon": 1e-3}
    report = run_campaign(
        args.seed,
        args.budget,
        args.corpus,
        args.journal,
        batch_size=args.batch,
        targets=args.targets,
        perturb=perturb,
        artifact_dir=args.artifacts,
    )
    print(
        json.dumps(
            {
                "seed": report.seed,
                "budget": report.budget,
                "rounds": report.rounds,
                "replayed_rounds": report.replayed_rounds,
                "executed": report.executed,
                "agreements": report.agreements,
                "skips": report.skips,
                "divergences": list(report.divergences),
                "corpus_size": report.corpus_size,
                "new_corpus_entries": report.new_corpus_entries,
                "artifacts": list(report.artifact_paths),
            },
            indent=2,
        )
    )
    if args.fail_on_divergence and not report.clean:
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    result = replay_artifact(args.artifact)
    print(f"{result.status}: {result.detail}")
    return 0 if result.reproduced else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    audit = audit_registry(strict=args.strict)
    print(audit.summary())
    return 0 if audit.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_audit(args)


if __name__ == "__main__":
    sys.exit(main())
