"""Shared repro-line formatting for the CI fuzz suite and campaign artifacts.

The differential fuzz suite prints a deterministic repro snippet on every
mismatch, and campaign failure artifacts carry a one-line replay command.
Both come from here, so a printed repro line is guaranteed to match what the
campaign replays.
"""

from __future__ import annotations


def repro_snippet(
    pair: str,
    case_seed: int,
    module: str = "tests.test_fuzz_equivalence",
    func: str = "run_case",
) -> str:
    """The deterministic repro snippet for one generated case of one pair."""
    return (
        f"\nDifferential fuzz mismatch in pair {pair!r} (case_seed={case_seed}).\n"
        "Deterministic repro:\n"
        f"    from {module} import {func}\n"
        f"    {func}({pair!r}, {case_seed})\n"
    )


def artifact_repro_command(path: str) -> str:
    """The one-line shell command that replays a failure artifact bit-for-bit."""
    return f"PYTHONPATH=src python -m repro.campaign replay {path}"


__all__ = ["repro_snippet", "artifact_repro_command"]
