"""The campaign corpus: a directory of behaviorally novel scenarios.

Each entry is one :class:`~repro.campaign.targets.CaseSpec` persisted as
canonical JSON under its content hash (``<key>.json``), together with the
discrete *behavior features* it exhibited when executed.  A case is
*interesting* — and enters the corpus — exactly when it exhibits a feature no
earlier entry has: a new target/algorithm combination, a new shape bucket, a
new graph class, a newly exercised fault-plan effect, or a new near-miss
tolerance margin on the last-ulp pairs.  The mutator then breeds new cases
from corpus parents instead of blind resampling.

Writes are atomic (temp file + rename) and idempotent (content-keyed), which
is what lets a SIGKILLed campaign replay its journal and reconstruct an
identical corpus.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.campaign.registry import get_entry
from repro.campaign.targets import CaseResult, CaseSpec
from repro.exceptions import CampaignError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.properties import (
    is_complete,
    is_nonsplit,
    is_rooted,
    is_strongly_connected,
)
from repro.service.serialization import canonical_json

_ENTRY_TYPE = "campaign-corpus-entry"


def _graph_classes(graph: CommunicationGraph) -> Iterable[str]:
    if is_complete(graph):
        yield "graph:complete"
    if is_strongly_connected(graph):
        yield "graph:strongly-connected"
    if is_rooted(graph):
        yield "graph:rooted"
    if is_nonsplit(graph):
        yield "graph:nonsplit"


def case_features(spec: CaseSpec, result: CaseResult) -> Tuple[str, ...]:
    """The discrete behavior features of one executed case (sorted).

    These drive the novelty signal: a case enters the corpus when it
    exhibits a feature the corpus has not seen.
    """
    features: Set[str] = {
        f"combo:{spec.target}:{spec.algorithm}",
        f"n:{spec.n}",
        f"d:{spec.d}",
        f"B:{spec.batch}",
        f"rounds:{spec.rounds}",
        f"record:{spec.record_every}",
    }
    shared = all(isinstance(g, CommunicationGraph) for g in spec.graphs)
    if not shared:
        features.add("graph:per-scenario")
    for round_graphs in spec.graphs:
        members = (
            (round_graphs,)
            if isinstance(round_graphs, CommunicationGraph)
            else round_graphs
        )
        for graph in members:
            features.update(_graph_classes(graph))
    plan = spec.plan
    if plan is not None and not plan.is_zero():
        if plan.drop:
            features.add("fault:drop")
        if plan.duplicate:
            features.add("fault:duplicate")
        if plan.jitter:
            features.add("fault:jitter")
        for crash in plan.crashes:
            features.add("fault:crash")
            if crash.final_recipients is not None:
                features.add("fault:crash-unclean")
            if crash.recovery_round is not None:
                features.add("fault:recovery")
        if plan.joins:
            features.add("fault:join")
        if plan.enforce_model:
            features.add("fault:enforce-model")
    if spec.perturb is not None:
        features.add(f"perturb:{spec.perturb['side']}")
    if result.status == "divergence":
        features.add(f"divergence:{spec.target}:{spec.algorithm}")
    elif result.status == "agree":
        if not result.exact and result.max_diff > 0.0:
            # Near-miss margin bucket: how close a tolerance-compared pair
            # came to the 1e-12 line, in decades.
            features.add(
                f"nearmiss:{spec.target}:{int(np.floor(np.log10(result.max_diff)))}"
            )
        if result.reason == "both sides raised":
            features.add(f"raise:{spec.target}:{spec.algorithm}")
    if not get_entry(spec.algorithm).exact:
        features.add("family:averaging")
    return tuple(sorted(features))


class Corpus:
    """A content-hash-keyed store of interesting case specs on disk."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._entries: Dict[str, dict] = {}
        self.seen_features: Set[str] = set()
        self._load()

    def _load(self) -> None:
        for path in sorted(self.root.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise CampaignError(f"corrupt corpus entry {path}: {exc}") from exc
            self._validate(payload, path)
            self._entries[path.stem] = payload
            self.seen_features.update(payload["features"])

    @staticmethod
    def _validate(payload: dict, origin: object) -> None:
        if not isinstance(payload, dict) or payload.get("__type__") != _ENTRY_TYPE:
            raise CampaignError(f"not a corpus entry: {origin}")
        if payload.get("version") != 1:
            raise CampaignError(
                f"corpus entry {origin} has unsupported version {payload.get('version')!r}"
            )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self):
        """Entry keys in sorted (deterministic) order."""
        return sorted(self._entries)

    def get(self, key: str) -> Optional[dict]:
        return self._entries.get(key)

    def spec(self, key: str) -> CaseSpec:
        entry = self._entries.get(key)
        if entry is None:
            raise CampaignError(f"no corpus entry {key!r}")
        return CaseSpec.from_dict(entry["spec"])

    def make_entry(self, spec: CaseSpec, features: Tuple[str, ...], origin: dict) -> dict:
        return {
            "__type__": _ENTRY_TYPE,
            "version": 1,
            "spec": spec.to_dict(),
            "features": sorted(features),
            "origin": origin,
        }

    def is_novel(self, features: Iterable[str]) -> bool:
        return not set(features) <= self.seen_features

    def add(self, spec: CaseSpec, features: Tuple[str, ...], origin: dict) -> str:
        """Persist a case (idempotent, atomic); returns its content key."""
        return self.write_payload(self.make_entry(spec, features, origin))

    def write_payload(self, payload: dict) -> str:
        """Persist a pre-built corpus entry payload (used by journal replay)."""
        self._validate(payload, "<payload>")
        key = CaseSpec.from_dict(payload["spec"]).key()
        path = self.root / f"{key}.json"
        text = canonical_json(payload)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        self._entries[key] = payload
        self.seen_features.update(payload["features"])
        return key


__all__ = ["Corpus", "case_features"]
