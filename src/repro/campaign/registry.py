"""The shared fuzz registry: every algorithm the campaign (and CI) fuzzes.

One :class:`FuzzEntry` per algorithm, keyed by the algorithm's serialization
codec name, carrying everything the differential harnesses need to generate
and rebuild cases:

* ``draw_params`` — JSON-safe constructor parameters drawn from a case rng,
  so a corpus entry or failure artifact can rebuild the exact algorithm;
* ``build`` — rebuild the algorithm from those parameters (plus the fixed
  communication graph, for graph-pinned algorithms like mass splitting);
* capability flags — whether the entry has batch hooks (``reference_only``
  entries exercise only the per-agent reference paths), tolerates fault
  plans, runs under the event simulator, or requires a fixed ``n`` or a
  fixed strongly connected graph every round.

Registering an algorithm here is *sufficient* to fuzz it: both the CI suite
(``tests/test_fuzz_equivalence.py``) and the campaign target generator
(:mod:`repro.campaign.targets`) enumerate this registry.  The audit
(:func:`audit_registry`) compares the registry against the serialization
codec registry and fails loudly on any algorithm that is serializable but
unfuzzed, so a new algorithm cannot silently skip the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import CampaignError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import complete_graph


@dataclass(frozen=True)
class FuzzEntry:
    """One fuzzable algorithm: how to build it and what it supports.

    Attributes
    ----------
    key:
        Registry key; equals the algorithm's serialization codec name so the
        audit can match the two registries one-to-one.
    exact:
        Whether the algorithm's two execution paths agree bit-for-bit
        (the order-independent min/max family) rather than to the last ulp
        (the summation-order-sensitive averaging family).
    draw_params:
        ``(rng) -> dict`` of JSON-safe constructor parameters.
    build:
        ``(params, n, graph) -> Algorithm``; ``graph`` is the fixed
        communication graph (only consulted when ``needs_fixed_graph``).
    fixed_n:
        The exact system size the algorithm requires, or ``None``.
    needs_fixed_graph:
        Whether the algorithm must see one fixed strongly connected graph
        every round (mass splitting).
    supports_faults:
        Whether the algorithm tolerates fault-perturbed in-neighborhoods.
    supports_simulator:
        Whether the round-based event-simulator route (complete graph,
        ``f = 0``) is a valid reference for the algorithm.
    reference_only:
        ``True`` when the algorithm has no batch hooks: toggle pairs that
        force a vectorized side skip it, and the audit marks it.
    perturbable:
        Whether the per-agent state is a plain value array, so the
        synthetic-divergence wrapper used by mutation-kill checks
        (:class:`repro.campaign.targets.PerturbedAlgorithm`) can offset it.
    """

    key: str
    exact: bool
    draw_params: Callable[[np.random.Generator], dict]
    build: Callable[[dict, int, Optional[CommunicationGraph]], object]
    fixed_n: Optional[int] = None
    needs_fixed_graph: bool = False
    supports_faults: bool = True
    supports_simulator: bool = True
    reference_only: bool = False
    perturbable: bool = False


def random_strongly_connected_graph(
    n: int, rng: np.random.Generator, edge_probability: float = 0.5
) -> CommunicationGraph:
    """A random digraph guaranteed strongly connected (planted cycle + noise)."""
    adjacency = rng.random((n, n)) < edge_probability
    cycle = rng.permutation(n)
    for i in range(n):
        adjacency[cycle[i], cycle[(i + 1) % n]] = True
    np.fill_diagonal(adjacency, True)
    return CommunicationGraph(n, adjacency=adjacency)


def _build_registry() -> Dict[str, FuzzEntry]:
    from repro.algorithms import (
        AmortizedMidpointAlgorithm,
        DecidingAlgorithm,
        FloodingExactConsensus,
        HegselmannKrauseAlgorithm,
        MassSplittingAlgorithm,
        MeanAlgorithm,
        MidpointAlgorithm,
        SelfWeightedAveraging,
        TwoAgentThirdsAlgorithm,
    )
    from repro.asynchrony import MinRelaySyncAlgorithm

    entries = [
        FuzzEntry(
            key="midpoint",
            exact=True,
            draw_params=lambda rng: {},
            build=lambda p, n, g: MidpointAlgorithm(),
            perturbable=True,
        ),
        FuzzEntry(
            key="amortized-midpoint",
            exact=True,
            draw_params=lambda rng: {"phase_length": None},
            build=lambda p, n, g: AmortizedMidpointAlgorithm(
                phase_length=p.get("phase_length")
            ),
        ),
        # The Section 9 approximate-consensus wrapper: decide-and-freeze over
        # a min/max inner algorithm, with a randomized decision round so
        # cases hit pre-decision, mid-run and instant (round-0) freezes.
        FuzzEntry(
            key="deciding",
            exact=True,
            draw_params=lambda rng: {"decision_round": int(rng.integers(0, 7))},
            build=lambda p, n, g: DecidingAlgorithm(
                MidpointAlgorithm(), int(p["decision_round"])
            ),
        ),
        FuzzEntry(
            key="two-agent-thirds",
            exact=True,
            draw_params=lambda rng: {},
            build=lambda p, n, g: TwoAgentThirdsAlgorithm(),
            fixed_n=2,
            perturbable=True,
        ),
        FuzzEntry(
            key="mean",
            exact=False,
            draw_params=lambda rng: {},
            build=lambda p, n, g: MeanAlgorithm(),
            perturbable=True,
        ),
        FuzzEntry(
            key="hegselmann-krause",
            exact=False,
            draw_params=lambda rng: {"confidence": float(rng.uniform(0.5, 2.5))},
            build=lambda p, n, g: HegselmannKrauseAlgorithm(float(p["confidence"])),
            perturbable=True,
        ),
        FuzzEntry(
            key="self-weighted",
            exact=False,
            draw_params=lambda rng: {"self_weight": float(rng.uniform(0.1, 0.9))},
            build=lambda p, n, g: SelfWeightedAveraging(float(p["self_weight"])),
            perturbable=True,
        ),
        # No batch hooks (set-valued messages): exercises the per-agent
        # reference paths of every engine; pairs that force a vectorized
        # side skip it.
        FuzzEntry(
            key="min-relay-sync",
            exact=True,
            draw_params=lambda rng: {},
            build=lambda p, n, g: MinRelaySyncAlgorithm(),
            reference_only=True,
        ),
        # Flood-and-take-the-minimum (Theorem 4's induced asymptotic form):
        # tuple-valued messages, so reference-only like MinRelay.
        FuzzEntry(
            key="flooding-exact",
            exact=True,
            draw_params=lambda rng: {"horizon": int(rng.integers(1, 8))},
            build=lambda p, n, g: FloodingExactConsensus(int(p["horizon"])),
            reference_only=True,
        ),
        # Mass splitting is pinned to one fixed strongly connected graph
        # every round and rejects any other in-neighborhood, so it cannot
        # run under fault plans or the complete-graph simulator route.
        FuzzEntry(
            key="mass-splitting",
            exact=True,
            draw_params=lambda rng: {},
            build=lambda p, n, g: MassSplittingAlgorithm(
                g if g is not None else complete_graph(n)
            ),
            needs_fixed_graph=True,
            supports_faults=False,
            supports_simulator=False,
            reference_only=True,
            perturbable=True,
        ),
    ]
    return {entry.key: entry for entry in entries}


#: Registry key -> entry, in registration order (the generator draws by index).
REGISTRY: Dict[str, FuzzEntry] = _build_registry()

#: The entries as an ordered tuple (stable draw order for case generation).
ORDERED_ENTRIES: Tuple[FuzzEntry, ...] = tuple(REGISTRY.values())


def get_entry(key: str) -> FuzzEntry:
    """Look up a registry entry, raising a loud error on unknown keys."""
    entry = REGISTRY.get(key)
    if entry is None:
        raise CampaignError(
            f"unknown fuzz-registry key {key!r} (registered: {sorted(REGISTRY)})"
        )
    return entry


def build_probe(entry: FuzzEntry):
    """Build a small throwaway instance of an entry (for capability checks)."""
    n = entry.fixed_n or 3
    params = entry.draw_params(np.random.default_rng(0))
    return entry.build(params, n, complete_graph(n))


@dataclass(frozen=True)
class RegistryAudit:
    """The result of comparing the fuzz registry against the codec registry."""

    fuzzed: Tuple[str, ...]
    reference_only: Tuple[str, ...]
    unfuzzed: Tuple[str, ...]
    unknown: Tuple[str, ...]
    mismatched: Tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not (self.unfuzzed or self.unknown or self.mismatched)

    def summary(self) -> str:
        lines = ["fuzz-registry audit:"]
        for key in self.fuzzed:
            lines.append(f"  fuzzed          {key}")
        for key in self.reference_only:
            lines.append(f"  fuzzed          {key}  [reference-only: no batch hooks]")
        for key in self.unfuzzed:
            lines.append(f"  UNFUZZED        {key}  <- serializable but has no fuzz entry")
        for key in self.unknown:
            lines.append(f"  UNKNOWN         {key}  <- fuzz entry with no serialization codec")
        for key in self.mismatched:
            lines.append(
                f"  MISMATCHED      {key}  <- reference_only flag disagrees with supports_batch()"
            )
        lines.append("audit OK" if self.ok else "audit FAILED")
        return "\n".join(lines)


def audit_registry(strict: bool = False, codec_names: Optional[Tuple[str, ...]] = None) -> RegistryAudit:
    """Cross-check the fuzz registry against the serialization codec registry.

    Every serializable algorithm must have a fuzz entry (else it ships
    unfuzzed), every fuzz entry must name a real codec (else artifacts for it
    could not be rebuilt elsewhere), and every entry's ``reference_only``
    flag must match what the built algorithm actually reports.  With
    ``strict=True`` any violation raises :class:`CampaignError`.
    """
    from repro.service.serialization import registered_algorithm_names

    names = tuple(codec_names) if codec_names is not None else registered_algorithm_names()
    unfuzzed = tuple(sorted(set(names) - set(REGISTRY)))
    unknown = tuple(sorted(set(REGISTRY) - set(names)))
    mismatched = []
    fuzzed, reference_only = [], []
    for key in sorted(REGISTRY):
        entry = REGISTRY[key]
        if build_probe(entry).supports_batch() == entry.reference_only:
            mismatched.append(key)
        (reference_only if entry.reference_only else fuzzed).append(key)
    audit = RegistryAudit(
        fuzzed=tuple(fuzzed),
        reference_only=tuple(reference_only),
        unfuzzed=unfuzzed,
        unknown=unknown,
        mismatched=tuple(mismatched),
    )
    if strict and not audit.ok:
        raise CampaignError("fuzz-registry audit failed:\n" + audit.summary())
    return audit


__all__ = [
    "FuzzEntry",
    "REGISTRY",
    "ORDERED_ENTRIES",
    "RegistryAudit",
    "audit_registry",
    "build_probe",
    "get_entry",
    "random_strongly_connected_graph",
]
