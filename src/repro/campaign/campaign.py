"""The crash-safe, resumable coverage-guided campaign loop.

A campaign runs a bounded budget of differential-fuzz cases in *rounds*.
Each round plans its cases deterministically from ``(campaign seed, round
index, corpus state)``: roughly half are structured mutations of corpus
parents — with parents drawn in proportion to their *recent novelty
yield*, so a parent whose mutants keep entering the corpus is bred from
more often while a stale one decays toward a small baseline weight — and
the rest are fresh generator draws.  Every case runs through the
executor (under the service :class:`~repro.service.retry.RetryPolicy`);
divergences are minimized and persisted as replayable artifacts; cases
exhibiting new behavior features enter the corpus.

Crash safety reuses the orchestrator machinery: a completed round is one
fsync-ed record in a :class:`~repro.service.checkpoint.CheckpointJournal`,
keyed by the content hash of the campaign configuration plus the round
index.  The record carries the round's *effects* — the corpus-entry and
artifact payloads it produced — so a resumed campaign replays journaled
rounds without re-executing a single case, reconstructing bit-for-bit the
corpus and artifacts of an uninterrupted run.  Disk effects are only
applied after the round's journal record is durable, so a SIGKILL at any
instant leaves either a fully replayable round or no trace of it.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field, replace as dc_replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.artifacts import make_artifact_payload, write_artifact
from repro.campaign.corpus import Corpus, case_features
from repro.campaign.minimize import minimize
from repro.campaign.mutate import mutate_spec
from repro.campaign.targets import CaseSpec, TARGETS, build_case, execute_case
from repro.exceptions import CampaignError
from repro.service.checkpoint import CheckpointJournal, content_key
from repro.service.retry import RetryPolicy

_CAMPAIGN_NAMESPACE = 0xFA27
_ROUND_KIND = "campaign-round"
_ROUND_TYPE = "campaign-round"

#: Fraction of a round bred from corpus parents (when the corpus is non-empty).
_MUTATION_FRACTION = 0.5

#: Per-round decay of a corpus admission's contribution to its parent's
#: selection weight: an admission from ``k`` rounds ago is worth
#: ``_NOVELTY_DECAY ** k``.
_NOVELTY_DECAY = 0.5

#: Baseline selection weight every parent keeps, so a stale parent decays
#: toward a small uniform chance instead of starving entirely.
_BASE_WEIGHT = 1.0


@dataclass(frozen=True)
class CampaignReport:
    """What one :func:`run_campaign` call did (including replayed rounds)."""

    seed: int
    budget: int
    rounds: int
    executed: int
    replayed_rounds: int
    agreements: int
    skips: int
    divergences: Tuple[dict, ...]
    corpus_size: int
    new_corpus_entries: int
    artifact_paths: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.divergences


@dataclass
class _RoundTally:
    executed: int = 0
    agreements: int = 0
    skips: int = 0
    divergences: List[dict] = field(default_factory=list)
    corpus_payloads: List[dict] = field(default_factory=list)
    artifact_payloads: List[dict] = field(default_factory=list)


def _round_key(config: dict, round_index: int) -> str:
    return content_key(
        {"__type__": _ROUND_TYPE, "config": config, "round": round_index}
    )


def _apply_perturb(spec: CaseSpec, perturb: Optional[dict]) -> CaseSpec:
    if perturb is None or spec.perturb is not None:
        return spec
    return dc_replace(spec, perturb=dict(perturb))


def _parent_weights(corpus: Corpus, round_index: int) -> dict:
    """Selection weight per corpus parent, from decayed novelty yield.

    Every parent keeps :data:`_BASE_WEIGHT`; each corpus admission bred
    from it (``origin["parent"]``) adds ``_NOVELTY_DECAY ** age`` where
    ``age`` is the number of rounds since the admission.  Pure in (corpus
    content, round index) and ordered by ``corpus.keys()`` (sorted) — the
    weighted draw depends on that order, and a resumed or replayed
    campaign reconstructs identical weights from the reconstructed corpus.
    """
    weights = {key: _BASE_WEIGHT for key in corpus.keys()}
    for key in corpus.keys():
        origin = (corpus.get(key) or {}).get("origin") or {}
        parent = origin.get("parent")
        if parent in weights:
            age = max(0, round_index - int(origin.get("round", round_index)))
            weights[parent] += _NOVELTY_DECAY**age
    return weights


def _draw_parent(rng: np.random.Generator, weights: dict) -> str:
    """One weighted draw over the (sorted-key-ordered) parent weights."""
    keys = list(weights)
    totals = np.cumsum([weights[key] for key in keys])
    pick = rng.random() * float(totals[-1])
    return keys[min(int(np.searchsorted(totals, pick, side="right")), len(keys) - 1)]


def _plan_round(
    rng: np.random.Generator,
    cases: int,
    targets: Sequence[str],
    corpus: Corpus,
    seed: int,
    round_index: int,
    perturb: Optional[dict],
) -> List[Tuple[CaseSpec, Optional[str]]]:
    """Plan one round's ``(case spec, parent key or None)`` pairs.

    Pure in (rng state, corpus content): mutation slots draw parents in
    proportion to :func:`_parent_weights`, fresh slots draw a target
    uniformly.  The parent key rides along so corpus admissions can record
    which parent bred them — the signal the weights are computed from.
    """
    weights = _parent_weights(corpus, round_index)
    planned: List[Tuple[CaseSpec, Optional[str]]] = []
    for slot in range(cases):
        mutate = bool(weights) and rng.random() < _MUTATION_FRACTION
        if mutate:
            parent_key = _draw_parent(rng, weights)
            parent = corpus.spec(parent_key)
            mutation_seed = int(rng.integers(0, 2**31))
            spec = mutate_spec(parent, mutation_seed)
        else:
            parent_key = None
            target = targets[int(rng.integers(len(targets)))]
            # A wide deterministic seed window disjoint across rounds.
            case_seed = (seed * 1_000_003 + round_index) * 10_000 + slot
            spec = build_case(target, case_seed)
        planned.append((_apply_perturb(spec, perturb), parent_key))
    return planned


def _execute_with_retry(spec: CaseSpec, retry: RetryPolicy, key: str):
    attempt = 1
    while True:
        try:
            return execute_case(spec)
        except Exception as error:  # noqa: BLE001 - triaged by the policy
            if not retry.should_retry(error, attempt):
                raise
            attempt += 1
            delay = retry.delay_before(attempt, key=key)
            if delay > 0.0:
                time.sleep(delay)


def _replay_round(corpus: Corpus, artifact_dir: Path, record: dict) -> _RoundTally:
    """Re-apply a journaled round's effects without executing anything."""
    tally = _RoundTally(
        executed=int(record["executed"]),
        agreements=int(record["agreements"]),
        skips=int(record["skips"]),
        divergences=list(record["divergences"]),
        corpus_payloads=list(record["corpus_payloads"]),
        artifact_payloads=list(record["artifact_payloads"]),
    )
    for payload in tally.corpus_payloads:
        corpus.write_payload(payload)
    for payload in tally.artifact_payloads:
        write_artifact(artifact_dir, payload)
    return tally


def run_campaign(
    seed: int,
    budget: int,
    corpus_dir,
    journal_path,
    *,
    batch_size: int = 16,
    targets: Optional[Sequence[str]] = None,
    retry: Optional[RetryPolicy] = None,
    perturb: Optional[dict] = None,
    artifact_dir=None,
    _kill_after_cases: Optional[int] = None,
) -> CampaignReport:
    """Run (or resume) a coverage-guided campaign of ``budget`` cases.

    Parameters
    ----------
    seed:
        The campaign seed; together with the configuration it determines
        every case the campaign will ever plan.
    budget:
        Total number of cases, executed in rounds of ``batch_size``.
    corpus_dir / journal_path:
        The persistent corpus directory and checkpoint journal.  Pointing a
        new invocation at the same pair resumes: journaled rounds replay
        their recorded effects instead of re-executing.
    targets:
        Target keys to fuzz (default: all registered targets).
    perturb:
        Optional ``{"side", "round", "agent", "epsilon"}`` mapping injected
        into every planned case — the deliberately-broken-toggle mode used
        by the mutation-kill tests and ``--broken`` CLI flag.
    _kill_after_cases:
        Test hook: SIGKILL this process after executing that many cases.
    """
    if budget < 1:
        raise CampaignError(f"campaign budget must be >= 1, got {budget}")
    if batch_size < 1:
        raise CampaignError(f"campaign batch size must be >= 1, got {batch_size}")
    targets = tuple(targets) if targets is not None else tuple(TARGETS)
    for key in targets:
        if key not in TARGETS:
            raise CampaignError(f"unknown target {key!r} (known: {sorted(TARGETS)})")
    retry = retry if retry is not None else RetryPolicy()
    corpus_dir = Path(corpus_dir)
    artifact_dir = Path(artifact_dir) if artifact_dir is not None else corpus_dir / "artifacts"

    config = {
        "seed": int(seed),
        "batch_size": int(batch_size),
        "targets": list(targets),
        "perturb": None if perturb is None else dict(perturb),
    }
    rounds = -(-budget // batch_size)  # ceil
    corpus = Corpus(corpus_dir)
    initial_corpus = len(corpus)

    executed = agreements = skips = replayed = 0
    divergences: List[dict] = []
    artifact_paths: List[str] = []
    killed = 0  # cases executed, for the _kill_after_cases hook

    with CheckpointJournal(journal_path) as journal:
        for round_index in range(rounds):
            cases = min(batch_size, budget - round_index * batch_size)
            round_key = _round_key(config, round_index)
            record = journal.get(round_key)
            if record is not None:
                tally = _replay_round(corpus, artifact_dir, record)
                replayed += 1
            else:
                rng = np.random.default_rng(
                    (_CAMPAIGN_NAMESPACE, int(seed), round_index)
                )
                planned = _plan_round(
                    rng, cases, targets, corpus, int(seed), round_index, perturb
                )
                tally = _RoundTally()
                # Novelty within the round is judged against the corpus at
                # round start plus earlier same-round admissions, all in
                # memory: nothing touches disk until the record is durable.
                seen = set(corpus.seen_features)
                for spec, parent_key in planned:
                    spec_key = spec.key()
                    result = _execute_with_retry(spec, retry, spec_key)
                    tally.executed += 1
                    killed += 1
                    if result.status == "skip":
                        tally.skips += 1
                    elif result.status == "agree":
                        tally.agreements += 1
                    features = case_features(spec, result)
                    if result.status != "divergence":
                        if not set(features) <= seen:
                            seen.update(features)
                            tally.corpus_payloads.append(
                                corpus.make_entry(
                                    spec,
                                    features,
                                    origin={
                                        "campaign_seed": int(seed),
                                        "round": round_index,
                                        "status": result.status,
                                        "parent": parent_key,
                                    },
                                )
                            )
                    else:
                        minimal = minimize(spec)
                        minimal_result = execute_case(minimal)
                        artifact = make_artifact_payload(
                            minimal,
                            minimal_result,
                            campaign={"seed": int(seed), "round": round_index},
                            minimized_from=spec_key,
                        )
                        tally.artifact_payloads.append(artifact)
                        seen.update(features)
                        tally.corpus_payloads.append(
                            corpus.make_entry(
                                spec,
                                features,
                                origin={
                                    "campaign_seed": int(seed),
                                    "round": round_index,
                                    "status": "divergence",
                                    "parent": parent_key,
                                },
                            )
                        )
                        tally.divergences.append(
                            {
                                "case_key": spec_key,
                                "minimal_key": minimal.key(),
                                "target": spec.target,
                                "algorithm": spec.algorithm,
                                "reason": result.reason,
                            }
                        )
                    if _kill_after_cases is not None and killed >= _kill_after_cases:
                        os.kill(os.getpid(), signal.SIGKILL)
                # Durable record first; only then the disk effects.  A crash
                # in between is healed on resume by replaying the record.
                journal.put(
                    round_key,
                    {
                        "round": round_index,
                        "executed": tally.executed,
                        "agreements": tally.agreements,
                        "skips": tally.skips,
                        "divergences": tally.divergences,
                        "corpus_payloads": tally.corpus_payloads,
                        "artifact_payloads": tally.artifact_payloads,
                    },
                    kind=_ROUND_KIND,
                )
                for payload in tally.corpus_payloads:
                    corpus.write_payload(payload)
                for payload in tally.artifact_payloads:
                    write_artifact(artifact_dir, payload)

            executed += tally.executed
            agreements += tally.agreements
            skips += tally.skips
            divergences.extend(tally.divergences)
            for payload in tally.artifact_payloads:
                key = CaseSpec.from_dict(payload["spec"]).key()
                artifact_paths.append(str(artifact_dir / f"{key}.json"))

    return CampaignReport(
        seed=int(seed),
        budget=int(budget),
        rounds=rounds,
        executed=executed,
        replayed_rounds=replayed,
        agreements=agreements,
        skips=skips,
        divergences=tuple(divergences),
        corpus_size=len(corpus),
        new_corpus_entries=len(corpus) - initial_corpus,
        artifact_paths=tuple(dict.fromkeys(artifact_paths)),
    )


__all__ = ["CampaignReport", "run_campaign"]
