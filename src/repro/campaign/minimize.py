"""Deterministic delta-debugging of a diverging case to a minimal scenario.

Given a :class:`~repro.campaign.targets.CaseSpec` whose execution diverges,
:func:`minimize` greedily shrinks it along a *fixed reduction order* —
scenarios, rounds, agents, coordinates, fault plan, graphs, values — keeping
a candidate only when it still diverges, and repeats the whole pass until a
fixpoint.  The order is part of the contract: minimization is a pure
function of the input spec, so two campaigns that find the same divergence
emit the same minimal artifact.

Candidates whose execution is skipped (e.g. dropping the fault plan of a
plan-requiring target) or where both sides raise the same error simply do
not diverge, so they are rejected without special-casing.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.campaign.registry import get_entry
from repro.campaign.targets import CaseSpec, RoundGraphs, execute_case
from repro.exceptions import CampaignError
from repro.faults import FaultPlan
from repro.graphs.digraph import CommunicationGraph

_MAX_PASSES = 8


def _diverges(spec: CaseSpec) -> bool:
    return execute_case(spec).status == "divergence"


def _shift_perturb(spec: CaseSpec, removed_agent: int) -> Optional[dict]:
    if spec.perturb is None:
        return None
    perturb = dict(spec.perturb)
    if int(perturb["agent"]) > removed_agent:
        perturb["agent"] = int(perturb["agent"]) - 1
    return perturb


def _restrict_plan_agents(plan: Optional[FaultPlan], removed: int) -> Optional[FaultPlan]:
    """Renumber a plan after removing one agent (specs naming it are dropped)."""
    if plan is None:
        return None

    def shift(agent: int) -> int:
        return agent - 1 if agent > removed else agent

    crashes = tuple(
        dc_replace(
            c,
            agent=shift(c.agent),
            final_recipients=None
            if c.final_recipients is None
            else frozenset(shift(a) for a in c.final_recipients if a != removed),
        )
        for c in plan.crashes
        if c.agent != removed
    )
    joins = tuple(
        dc_replace(j, agent=shift(j.agent)) for j in plan.joins if j.agent != removed
    )
    return dc_replace(plan, crashes=crashes, joins=joins)


def _map_graphs(spec: CaseSpec, fn: Callable[[CommunicationGraph], CommunicationGraph]):
    graphs: List[RoundGraphs] = []
    for g in spec.graphs:
        if isinstance(g, CommunicationGraph):
            graphs.append(fn(g))
        else:
            graphs.append(tuple(fn(member) for member in g))
    return tuple(graphs)


# --------------------------------------------------------------------------- #
# Reduction steps (fixed order)
# --------------------------------------------------------------------------- #


def _reduce_batch(spec: CaseSpec) -> CaseSpec:
    """Project the ensemble onto a single scenario (fault draws preserved)."""
    if spec.batch <= 1:
        return spec
    for scenario in range(spec.batch):
        plan = spec.plan
        if plan is not None:
            # A single-scenario ensemble with scenario_base += b realizes
            # exactly scenario b's fault draws (the sampling contract).
            plan = dc_replace(plan, scenario_base=plan.scenario_base + scenario)
        candidate = dc_replace(
            spec,
            values=spec.values[scenario : scenario + 1],
            graphs=tuple(
                g if isinstance(g, CommunicationGraph) else g[scenario]
                for g in spec.graphs
            ),
            plan=plan,
        )
        if _diverges(candidate):
            return candidate
    return spec


def _reduce_rounds(spec: CaseSpec) -> CaseSpec:
    """Truncate trailing rounds while the divergence persists."""
    while spec.rounds > 1:
        candidate = dc_replace(spec, graphs=spec.graphs[:-1])
        if not _diverges(candidate):
            break
        spec = candidate
    return spec


def _reduce_agents(spec: CaseSpec) -> CaseSpec:
    """Remove agents one at a time (highest index first) while possible."""
    entry = get_entry(spec.algorithm)
    if entry.fixed_n is not None:
        return spec
    progress = True
    while progress and spec.n > 1:
        progress = False
        for agent in range(spec.n - 1, -1, -1):
            if spec.perturb is not None and int(spec.perturb["agent"]) == agent:
                continue
            keep = [a for a in range(spec.n) if a != agent]
            candidate = dc_replace(
                spec,
                values=spec.values[:, keep, :],
                graphs=_map_graphs(spec, lambda g: g.restricted_to(keep)),
                plan=_restrict_plan_agents(spec.plan, agent),
                perturb=_shift_perturb(spec, agent),
            )
            if _diverges(candidate):
                spec = candidate
                progress = True
                break
    return spec


def _reduce_dimensions(spec: CaseSpec) -> CaseSpec:
    """Project the values onto a single coordinate."""
    if spec.d <= 1:
        return spec
    for coord in range(spec.d):
        candidate = dc_replace(spec, values=spec.values[:, :, coord : coord + 1])
        if _diverges(candidate):
            return candidate
    return spec


def _reduce_record(spec: CaseSpec) -> CaseSpec:
    """Normalize the recording cadence to 1 (canonical minimal form)."""
    if spec.record_every == 1:
        return spec
    candidate = dc_replace(spec, record_every=1)
    return candidate if _diverges(candidate) else spec


def _simplify_plan(spec: CaseSpec) -> CaseSpec:
    """Shrink the fault plan: drop it, then drop each effect."""
    if spec.plan is None:
        return spec
    plan = spec.plan
    candidates: List[Optional[FaultPlan]] = [
        None,
        FaultPlan(seed=plan.seed, enforce_model=False, scenario_base=plan.scenario_base),
        dc_replace(plan, drop=0.0),
        dc_replace(plan, duplicate=0.0, jitter=0.0),
        dc_replace(plan, crashes=()),
        dc_replace(plan, joins=()),
        dc_replace(plan, enforce_model=False),
    ]
    for reduced in candidates:
        if reduced == spec.plan:
            continue
        candidate = dc_replace(spec, plan=reduced)
        if _diverges(candidate):
            return _simplify_plan(candidate) if reduced is not None else candidate
    return spec


def _simplify_graphs(spec: CaseSpec) -> CaseSpec:
    """Share per-scenario rounds, try self-loop-only rounds, remove edges."""
    entry = get_entry(spec.algorithm)
    # Per-scenario -> shared (scenario 0's graph).
    for round_index, round_graphs in enumerate(spec.graphs):
        if isinstance(round_graphs, CommunicationGraph):
            continue
        candidate = dc_replace(
            spec,
            graphs=tuple(
                round_graphs[0] if r == round_index else g
                for r, g in enumerate(spec.graphs)
            ),
        )
        if _diverges(candidate):
            spec = candidate
    if entry.needs_fixed_graph:
        # The fixed graph must stay identical across rounds: edge removals
        # apply to every round at once (strong-connectivity violations make
        # both sides raise together, so they are rejected naturally).
        graph = spec.graphs[0]
        if isinstance(graph, CommunicationGraph):
            for i in range(spec.n):
                for j in range(spec.n):
                    if i == j or not graph.has_edge(i, j):
                        continue
                    reduced = graph.remove_edge(i, j)
                    candidate = dc_replace(spec, graphs=tuple([reduced] * spec.rounds))
                    if _diverges(candidate):
                        graph = reduced
                        spec = candidate
        return spec
    # Whole-round collapse to self-loops only.
    loops_only = CommunicationGraph(spec.n)
    for round_index in range(spec.rounds):
        if spec.graphs[round_index] == loops_only:
            continue
        candidate = dc_replace(
            spec,
            graphs=tuple(
                loops_only if r == round_index else g
                for r, g in enumerate(spec.graphs)
            ),
        )
        if _diverges(candidate):
            spec = candidate
    # Single-edge removal, fixed scan order.
    for round_index in range(spec.rounds):
        round_graphs = spec.graphs[round_index]
        if not isinstance(round_graphs, CommunicationGraph):
            continue
        graph = round_graphs
        for i in range(spec.n):
            for j in range(spec.n):
                if i == j or not graph.has_edge(i, j):
                    continue
                reduced = graph.remove_edge(i, j)
                candidate = dc_replace(
                    spec,
                    graphs=tuple(
                        reduced if r == round_index else g
                        for r, g in enumerate(spec.graphs)
                    ),
                )
                if _diverges(candidate):
                    graph = reduced
                    spec = candidate
    return spec


def _canonicalize_values(spec: CaseSpec) -> CaseSpec:
    """Zero the initial values if possible, else round them coarsely."""
    zeros = np.zeros_like(spec.values)
    if not np.array_equal(spec.values, zeros):
        candidate = dc_replace(spec, values=zeros)
        if _diverges(candidate):
            return candidate
    for decimals in (0, 2, 6):
        rounded = np.round(spec.values, decimals)
        if np.array_equal(rounded, spec.values):
            break
        candidate = dc_replace(spec, values=rounded)
        if _diverges(candidate):
            return candidate
    return spec


_STEPS: Tuple[Callable[[CaseSpec], CaseSpec], ...] = (
    _reduce_batch,
    _reduce_rounds,
    _reduce_agents,
    _reduce_dimensions,
    _reduce_record,
    _simplify_plan,
    _simplify_graphs,
    _canonicalize_values,
)


def minimize(spec: CaseSpec) -> CaseSpec:
    """Shrink a diverging case to a minimal one (deterministic fixpoint).

    Raises :class:`CampaignError` when the input does not diverge.
    """
    if not _diverges(spec):
        raise CampaignError(
            f"cannot minimize a non-diverging case (key {spec.key()})"
        )
    for _ in range(_MAX_PASSES):
        before = spec.key()
        for step in _STEPS:
            spec = step(spec)
        if spec.key() == before:
            break
    return spec


__all__ = ["minimize"]
