"""Coverage-guided counterexample campaigns over the differential fuzz targets.

The campaign subsystem turns the fixed-count CI fuzz suite into a
persistent, feedback-driven correctness asset:

* :mod:`repro.campaign.registry` — the shared fuzz registry (one entry per
  algorithm, audited against the serialization codec registry);
* :mod:`repro.campaign.targets` — auto-generated toggle-pair targets and the
  deterministic case generator/executor;
* :mod:`repro.campaign.corpus` / :mod:`repro.campaign.mutate` — the
  content-hash-keyed corpus of behaviorally novel scenarios and the
  seed-deterministic structured mutator that breeds new cases from it;
* :mod:`repro.campaign.minimize` — deterministic delta-debugging of any
  divergence down to a minimal ``(n, d, rounds, graph, plan)`` scenario;
* :mod:`repro.campaign.artifacts` — self-contained replayable failure
  artifacts;
* :mod:`repro.campaign.campaign` — the crash-safe bounded-budget campaign
  loop (resumable through the checkpoint journal).

Run a campaign from the command line::

    PYTHONPATH=src python -m repro.campaign run --seed 1 --budget 5 \
        --corpus campaign-corpus --journal campaign-journal.jsonl
"""

from repro.campaign.artifacts import replay_artifact, write_artifact
from repro.campaign.campaign import CampaignReport, run_campaign
from repro.campaign.corpus import Corpus, case_features
from repro.campaign.minimize import minimize
from repro.campaign.mutate import mutate_spec
from repro.campaign.registry import (
    REGISTRY,
    FuzzEntry,
    RegistryAudit,
    audit_registry,
)
from repro.campaign.repro import artifact_repro_command, repro_snippet
from repro.campaign.targets import (
    TARGETS,
    CaseResult,
    CaseSpec,
    PerturbedAlgorithm,
    build_case,
    execute_case,
    run_case,
)

__all__ = [
    "CampaignReport",
    "CaseResult",
    "CaseSpec",
    "Corpus",
    "FuzzEntry",
    "PerturbedAlgorithm",
    "REGISTRY",
    "RegistryAudit",
    "TARGETS",
    "artifact_repro_command",
    "audit_registry",
    "build_case",
    "case_features",
    "execute_case",
    "minimize",
    "mutate_spec",
    "replay_artifact",
    "repro_snippet",
    "run_campaign",
    "run_case",
    "write_artifact",
]
