"""Self-contained replayable failure artifacts.

Every divergence the campaign confirms is persisted as one JSON file under
the minimized spec's content hash: the full case spec, the expected and
actual payloads of both sides (bit-for-bit, via the array codec), and a
one-line repro command.  ``python -m repro.campaign replay <artifact>``
rebuilds the case from the spec alone, re-executes both sides, and checks
the recorded payloads reproduce bit-for-bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.campaign.repro import artifact_repro_command
from repro.campaign.targets import CaseResult, CaseSpec, execute_case
from repro.exceptions import CampaignError
from repro.service.serialization import canonical_json, decode_array, encode_array

_ARTIFACT_TYPE = "campaign-artifact"


def _encode_payload(payload: Dict[str, np.ndarray]) -> dict:
    return {label: encode_array(array) for label, array in sorted(payload.items())}


def _decode_payload(payload: dict) -> Dict[str, np.ndarray]:
    return {label: decode_array(encoded) for label, encoded in payload.items()}


def make_artifact_payload(
    spec: CaseSpec,
    result: CaseResult,
    campaign: Optional[dict] = None,
    minimized_from: Optional[str] = None,
) -> dict:
    """Build the artifact JSON payload for a diverging case."""
    if result.status != "divergence" or result.divergence is None:
        raise CampaignError("artifacts are only written for diverging cases")
    divergence = result.divergence
    key = spec.key()
    return {
        "__type__": _ARTIFACT_TYPE,
        "version": 1,
        "spec": spec.to_dict(),
        "divergence": {
            "label": divergence.label,
            "reason": result.reason,
            "exact": result.exact,
            "expected": _encode_payload(divergence.expected),
            "actual": _encode_payload(divergence.actual),
        },
        "repro": {"command": artifact_repro_command(f"<artifact-dir>/{key}.json")},
        "campaign": campaign or {},
        "minimized_from": minimized_from,
    }


def write_artifact(directory, payload: dict) -> Path:
    """Persist an artifact payload (atomic, idempotent); returns its path."""
    _validate(payload, "<payload>")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    key = CaseSpec.from_dict(payload["spec"]).key()
    path = directory / f"{key}.json"
    resolved = dict(payload)
    resolved["repro"] = {"command": artifact_repro_command(str(path))}
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(canonical_json(resolved))
    os.replace(tmp, path)
    return path


def _validate(payload: dict, origin: object) -> None:
    if not isinstance(payload, dict) or payload.get("__type__") != _ARTIFACT_TYPE:
        raise CampaignError(f"not a campaign artifact: {origin}")
    if payload.get("version") != 1:
        raise CampaignError(
            f"artifact {origin} has unsupported version {payload.get('version')!r}"
        )


def load_artifact(path) -> dict:
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"cannot read artifact {path}: {exc}") from exc
    _validate(payload, path)
    return payload


@dataclass(frozen=True)
class ReplayResult:
    """The outcome of replaying an artifact."""

    status: str  # "reproduced" | "mismatch" | "vanished"
    detail: str

    @property
    def reproduced(self) -> bool:
        return self.status == "reproduced"


def replay_artifact(path) -> ReplayResult:
    """Re-execute an artifact's case and check it reproduces bit-for-bit."""
    payload = load_artifact(path)
    spec = CaseSpec.from_dict(payload["spec"])
    result = execute_case(spec)
    if result.status != "divergence" or result.divergence is None:
        return ReplayResult(
            status="vanished",
            detail=f"case no longer diverges (status: {result.status} {result.reason})",
        )
    recorded = payload["divergence"]
    if result.divergence.label != recorded["label"]:
        return ReplayResult(
            status="mismatch",
            detail=(
                f"divergence moved: recorded label {recorded['label']!r}, "
                f"got {result.divergence.label!r}"
            ),
        )
    for name, want_payload, got_payload in (
        ("expected", _decode_payload(recorded["expected"]), result.divergence.expected),
        ("actual", _decode_payload(recorded["actual"]), result.divergence.actual),
    ):
        if sorted(want_payload) != sorted(got_payload):
            return ReplayResult(
                status="mismatch", detail=f"{name} payload labels differ"
            )
        for label, want in want_payload.items():
            got = got_payload[label]
            if got.shape != want.shape or not np.array_equal(got, want, equal_nan=True):
                return ReplayResult(
                    status="mismatch",
                    detail=f"{name}[{label}] is not bit-for-bit identical",
                )
    return ReplayResult(status="reproduced", detail=f"divergence at {recorded['label']!r}")


__all__ = [
    "ReplayResult",
    "load_artifact",
    "make_artifact_payload",
    "replay_artifact",
    "write_artifact",
]
