"""Reproduction of Függer–Nowak–Schwarz, PODC'18 (asymptotic consensus).

The package's front door is the declarative :mod:`repro.api` facade::

    from repro import Study, EngineConfig

    result = Study(
        algorithm=..., initial_values=..., pattern=..., rounds=...,
        config=EngineConfig(use_fast_path=True),
    ).run()

Everything the facade compiles to remains directly importable from the
subpackages (:mod:`repro.execution`, :mod:`repro.core`,
:mod:`repro.algorithms`, :mod:`repro.graphs`, :mod:`repro.models`,
:mod:`repro.asynchrony`, :mod:`repro.analysis`).
"""

from repro.api import (
    CertifySpec,
    EngineConfig,
    ScenarioSpec,
    Study,
    StudyCertificates,
    StudyProvenance,
    StudyResult,
)
from repro.config import current_engine_config
from repro.exceptions import (
    ConfigError,
    EnsembleShapeError,
    FaultModelError,
    ReproError,
)
from repro.faults import (
    CrashSpec,
    FaultMaskingPattern,
    FaultPlan,
    FaultSpec,
    JoinSpec,
    as_fault_plan,
)
from repro.service import (
    CheckpointJournal,
    JobQueueServer,
    PartialStudyResult,
    RemoteConfig,
    ResultCache,
    RetryPolicy,
    ShardFailure,
    ShardRecord,
    run_certification_sweep_service,
    run_study_service,
)

__all__ = [
    "CertifySpec",
    "CheckpointJournal",
    "ConfigError",
    "CrashSpec",
    "EngineConfig",
    "EnsembleShapeError",
    "FaultMaskingPattern",
    "FaultModelError",
    "FaultPlan",
    "FaultSpec",
    "JobQueueServer",
    "JoinSpec",
    "PartialStudyResult",
    "RemoteConfig",
    "ReproError",
    "ResultCache",
    "RetryPolicy",
    "ScenarioSpec",
    "ShardFailure",
    "ShardRecord",
    "Study",
    "StudyCertificates",
    "StudyProvenance",
    "StudyResult",
    "as_fault_plan",
    "current_engine_config",
    "run_certification_sweep_service",
    "run_study_service",
]
