"""Reproduction of Függer–Nowak–Schwarz, PODC'18 (asymptotic consensus).

The package's front door is the declarative :mod:`repro.api` facade::

    from repro import Study, EngineConfig

    result = Study(
        algorithm=..., initial_values=..., pattern=..., rounds=...,
        config=EngineConfig(use_fast_path=True),
    ).run()

Everything the facade compiles to remains directly importable from the
subpackages (:mod:`repro.execution`, :mod:`repro.core`,
:mod:`repro.algorithms`, :mod:`repro.graphs`, :mod:`repro.models`,
:mod:`repro.asynchrony`, :mod:`repro.analysis`).
"""

from repro.api import (
    CertifySpec,
    EngineConfig,
    ScenarioSpec,
    Study,
    StudyCertificates,
    StudyProvenance,
    StudyResult,
)
from repro.config import current_engine_config
from repro.exceptions import (
    ConfigError,
    EnsembleShapeError,
    ReproError,
)

__all__ = [
    "CertifySpec",
    "ConfigError",
    "EngineConfig",
    "EnsembleShapeError",
    "ReproError",
    "ScenarioSpec",
    "Study",
    "StudyCertificates",
    "StudyProvenance",
    "StudyResult",
    "current_engine_config",
]
