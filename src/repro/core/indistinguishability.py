"""Indistinguishability of configurations (the ``∼_i`` relation).

Two configurations are indistinguishable for agent ``i`` when ``i`` is in the
same state in both (Section 3).  The lower-bound proofs repeatedly combine
this with structural conditions on the communication graphs:

* **Lemma 6**: if ``i`` has the same in-neighbors in ``G`` and ``G'`` and
  ``C ∼_j C'`` for each of those in-neighbors ``j``, then ``G.C ∼_i G'.C'``.
* **Lemma 7**: under the additional existence of a graph in which ``i`` is
  deaf, the valencies of ``G.C`` and ``G'.C'`` intersect.
* **Lemma 14**: applying the block ``σ_i`` or ``σ_j`` to the same
  configuration yields configurations indistinguishable for the third special
  agent ``ℓ``.

The checkers below verify these statements on concrete algorithms and
configurations; they are used by the unit/property tests and by the
benchmarks that validate the Figure 2 construction.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.algorithms.base import Algorithm
from repro.execution.engine import apply_graph, run_from_configuration
from repro.execution.state import Configuration
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import sigma_sequence


def indistinguishable_agents(
    config_a: Configuration, config_b: Configuration
) -> FrozenSet[int]:
    """The set of agents for which the two configurations are indistinguishable."""
    return frozenset(
        i
        for i in range(config_a.n)
        if config_a.indistinguishable_for(config_b, i)
    )


def lemma6_holds(
    algorithm: Algorithm,
    config_a: Configuration,
    config_b: Configuration,
    graph_a: CommunicationGraph,
    graph_b: CommunicationGraph,
    agent: int,
) -> bool:
    """Check the conclusion of Lemma 6 for a concrete algorithm and inputs.

    Returns True when either the hypotheses fail (the lemma is vacuously
    true) or the hypotheses hold and the successor configurations are indeed
    indistinguishable for ``agent``.
    """
    same_in_neighbors = graph_a.in_neighbors(agent) == graph_b.in_neighbors(agent)
    if not same_in_neighbors:
        return True
    for j in graph_a.in_neighbors(agent):
        if not config_a.indistinguishable_for(config_b, j):
            return True
    successor_a = apply_graph(algorithm, config_a, graph_a)
    successor_b = apply_graph(algorithm, config_b, graph_b)
    return successor_a.indistinguishable_for(successor_b, agent)


def lemma14_holds(
    algorithm: Algorithm,
    configuration: Configuration,
    n: int,
    deaf_i: int,
    deaf_j: int,
) -> bool:
    """Check Lemma 14: ``σ_i.C ∼_ℓ σ_j.C`` for the third special agent ``ℓ``.

    ``deaf_i`` and ``deaf_j`` are two distinct members of ``{0, 1, 2}``; the
    check also verifies indistinguishability for the chain agents
    ``>= k + 3`` after ``k`` rounds, which is the strengthened statement the
    paper proves by induction.
    """
    if deaf_i == deaf_j:
        raise ValueError("Lemma 14 requires two distinct special agents")
    special = {0, 1, 2}
    (ell,) = special - {deaf_i, deaf_j}
    blocks = {
        deaf_i: sigma_sequence(n, deaf_i),
        deaf_j: sigma_sequence(n, deaf_j),
    }
    final_i, history_i = run_from_configuration(algorithm, configuration, blocks[deaf_i])
    final_j, history_j = run_from_configuration(algorithm, configuration, blocks[deaf_j])
    # Strengthened statement: after k rounds, agents {ell} and {k+3, ..., n-1}
    # (0-based: chain agents with index >= k + 2) cannot distinguish the runs.
    for k, (config_i, config_j) in enumerate(zip(history_i, history_j), start=1):
        if not config_i.indistinguishable_for(config_j, ell):
            return False
        for chain_agent in range(k + 2, n):
            if not config_i.indistinguishable_for(config_j, chain_agent):
                return False
    return final_i.indistinguishable_for(final_j, ell)


def successors_indistinguishable_for(
    algorithm: Algorithm,
    configuration: Configuration,
    graphs: Sequence[CommunicationGraph],
    agent: int,
) -> bool:
    """Whether all one-round successors of ``configuration`` under ``graphs`` look alike to ``agent``."""
    successors = [apply_graph(algorithm, configuration, g) for g in graphs]
    first = successors[0]
    return all(first.indistinguishable_for(other, agent) for other in successors[1:])
