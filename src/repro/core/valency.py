"""Valency estimation for asymptotic consensus algorithms.

Section 3 defines the *valency* ``Y*_N(C)`` of a configuration ``C`` as the
set of limits reachable from ``C`` in the network model ``N``, and
``δ_N(C) = diam(Y*_N(C))`` as its diameter.  The lower-bound proofs construct
executions along which ``δ_N(C_t)`` shrinks no faster than the claimed
contraction rate.

Valencies of arbitrary algorithms cannot be computed exactly (they quantify
over infinitely many futures), but they can be *under-approximated* by
sampling futures: every sampled future's limit is a member of the valency, so
the diameter of the sampled limits is a lower bound on ``δ_N(C)``.  The
:class:`ValencyEstimator` samples

* the constant suffixes ``G, G, G, ...`` for every ``G`` in the model — these
  are exactly the suffixes used in the proofs of Lemma 7 and Lemma 8 (run a
  graph in which some agent is deaf forever); and
* optionally, all graph sequences up to a bounded depth followed by constant
  suffixes (exhaustive exploration for small models).

For convex-combination algorithms the diameter of the current outputs is an
*upper* bound on ``δ_N(C)`` (the limit always lies in the convex hull of the
current values), so the estimator can also report certified two-sided bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.algorithms.base import Algorithm
from repro.execution.engine import run_from_configuration
from repro.execution.state import Configuration
from repro.graphs.digraph import CommunicationGraph
from repro.models.network_model import NetworkModel
from repro.types import diameter


@dataclass
class ValencyEstimate:
    """Result of a valency estimation at one configuration.

    Attributes
    ----------
    limits:
        ``(k, d)`` array of estimated reachable limits (one per sampled
        future).
    lower_diameter:
        Diameter of the sampled limits — a lower bound on ``δ_N(C)`` up to
        the convergence error of the suffix runs.
    upper_diameter:
        For convex-combination algorithms, the diameter of the current
        outputs (an upper bound on ``δ_N(C)``); ``None`` otherwise.
    """

    limits: np.ndarray
    lower_diameter: float
    upper_diameter: Optional[float]


class ValencyEstimator:
    """Estimate valencies ``Y*_N(C)`` and their diameters ``δ_N(C)``.

    Parameters
    ----------
    algorithm:
        The asymptotic consensus algorithm under study.
    model:
        The network model ``N`` (a finite set of graphs).
    suffix_rounds:
        How many rounds each sampled future is run for; the limit is
        approximated by the centroid of the final outputs, with error at most
        the final output diameter for convex-combination algorithms.
    exploration_depth:
        All graph sequences of this length are explored exhaustively before
        appending constant suffixes.  Depth 0 (the default) samples only the
        constant suffixes, which is sufficient for the paper's constructions.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        model: NetworkModel,
        suffix_rounds: int = 60,
        exploration_depth: int = 0,
    ) -> None:
        if suffix_rounds < 1:
            raise ValueError(f"suffix_rounds must be >= 1, got {suffix_rounds}")
        if exploration_depth < 0:
            raise ValueError(f"exploration_depth must be >= 0, got {exploration_depth}")
        self._algorithm = algorithm
        self._model = model
        self._suffix_rounds = suffix_rounds
        self._exploration_depth = exploration_depth

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def limit_estimates(self, configuration: Configuration) -> np.ndarray:
        """Estimated reachable limits from ``configuration`` (one row per sampled future)."""
        limits: List[np.ndarray] = []
        for prefix in self._prefixes():
            start = configuration
            if prefix:
                start, _ = run_from_configuration(self._algorithm, configuration, list(prefix))
            for graph in self._model:
                limits.append(self._constant_suffix_limit(start, graph))
        return np.vstack(limits)

    def estimate(self, configuration: Configuration) -> ValencyEstimate:
        """Full estimate (limits plus certified lower/upper diameter bounds)."""
        limits = self.limit_estimates(configuration)
        lower = diameter(limits)
        upper: Optional[float] = None
        if self._algorithm.is_convex_combination():
            upper = configuration.output_diameter()
        return ValencyEstimate(limits=limits, lower_diameter=lower, upper_diameter=upper)

    def valency_diameter(self, configuration: Configuration) -> float:
        """Lower estimate of ``δ_N(C)`` (diameter of the sampled reachable limits)."""
        return float(diameter(self.limit_estimates(configuration)))

    def valencies_intersect(
        self,
        config_a: Configuration,
        config_b: Configuration,
        tolerance: float = 1e-6,
    ) -> bool:
        """Heuristic check that ``Y*_N(A)`` and ``Y*_N(B)`` intersect (Lemma 7 situations).

        The check looks for a *common suffix* leading both configurations to
        the same limit (up to ``tolerance``), which is precisely how Lemma 7
        establishes the intersection.
        """
        for graph in self._model:
            limit_a = self._constant_suffix_limit(config_a, graph)
            limit_b = self._constant_suffix_limit(config_b, graph)
            if float(np.linalg.norm(limit_a - limit_b)) <= tolerance:
                return True
        return False

    def trace(
        self, configurations: Sequence[Configuration]
    ) -> List[ValencyEstimate]:
        """Valency estimates along a sequence of configurations (e.g. an execution)."""
        return [self.estimate(c) for c in configurations]

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _prefixes(self) -> Iterable[Sequence[CommunicationGraph]]:
        if self._exploration_depth == 0:
            yield ()
            return
        graphs = list(self._model)
        for depth in range(self._exploration_depth + 1):
            if depth == 0:
                yield ()
                continue
            for combo in iter_product(graphs, repeat=depth):
                yield combo

    def _constant_suffix_limit(
        self, configuration: Configuration, graph: CommunicationGraph
    ) -> np.ndarray:
        final, _ = run_from_configuration(
            self._algorithm, configuration, [graph] * self._suffix_rounds
        )
        return final.outputs.mean(axis=0)
