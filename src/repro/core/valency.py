"""Valency estimation for asymptotic consensus algorithms.

Section 3 defines the *valency* ``Y*_N(C)`` of a configuration ``C`` as the
set of limits reachable from ``C`` in the network model ``N``, and
``δ_N(C) = diam(Y*_N(C))`` as its diameter.  The lower-bound proofs construct
executions along which ``δ_N(C_t)`` shrinks no faster than the claimed
contraction rate.

Valencies of arbitrary algorithms cannot be computed exactly (they quantify
over infinitely many futures), but they can be *under-approximated* by
sampling futures: every sampled future's limit is a member of the valency, so
the diameter of the sampled limits is a lower bound on ``δ_N(C)``.  The
:class:`ValencyEstimator` samples

* the constant suffixes ``G, G, G, ...`` for every ``G`` in the model — these
  are exactly the suffixes used in the proofs of Lemma 7 and Lemma 8 (run a
  graph in which some agent is deaf forever); and
* optionally, all graph sequences up to a bounded depth followed by constant
  suffixes (exhaustive exploration for small models).

For convex-combination algorithms the diameter of the current outputs is an
*upper* bound on ``δ_N(C)`` (the limit always lies in the convex hull of the
current values), so the estimator can also report certified two-sided bounds.

Two evaluation paths are available, mirroring the adversary API:

* the **batched path** (``use_batch=True``, the default) enumerates all
  sampled futures of one exploration depth as a stacked scenario ensemble —
  per-round ``(K, n, n)`` adjacency stacks driven through the algorithm's
  ``batch_*`` hooks — so a whole valency estimate costs a handful of array
  operations per round instead of ``K`` Python-level executions.  Candidate
  prefixes are *streamed* in bounded chunks (never materializing the full
  ``|N|^depth`` product), and an active-set drops scenarios that reached an
  exact float fixpoint from the constant-suffix loop early (valid for
  round-invariant algorithms: a fixed point of a constant graph stays fixed).
  Memoryless convex-combination algorithms rebuild state from configuration
  outputs; *stateful* batch algorithms (e.g. the amortized midpoint) are
  covered through the ``batch_state`` snapshot/restore hooks
  (:meth:`~repro.algorithms.base.Algorithm.batch_state_from_states`), which
  resume the recorded per-agent states exactly.
* the **reference path** (``use_batch=False``, or any algorithm without
  batch hooks) runs one ``run_from_configuration`` per sampled future.

Both paths produce bit-for-bit identical estimates (enforced by
``tests/test_valency_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import Algorithm, ConvexCombinationAlgorithm
from repro.config import resolve_scenario_chunk, resolve_threads, resolve_use_batch
from repro.exceptions import EnsembleShapeError, ExecutionError
from repro.execution.batch import EnsembleExecution
from repro.execution.engine import run_from_configuration
from repro.execution.state import Configuration
from repro.graphs.digraph import CommunicationGraph
from repro.models.network_model import NetworkModel
from repro.types import diameter


@dataclass
class ValencyEstimate:
    """Result of a valency estimation at one configuration.

    Attributes
    ----------
    limits:
        ``(k, d)`` array of estimated reachable limits (one per sampled
        future).
    lower_diameter:
        Diameter of the sampled limits — a lower bound on ``δ_N(C)`` up to
        the convergence error of the suffix runs.
    upper_diameter:
        For convex-combination algorithms, the diameter of the current
        outputs (an upper bound on ``δ_N(C)``); ``None`` otherwise.
    """

    limits: np.ndarray
    lower_diameter: float
    upper_diameter: Optional[float]


class ValencyEstimator:
    """Estimate valencies ``Y*_N(C)`` and their diameters ``δ_N(C)``.

    Parameters
    ----------
    algorithm:
        The asymptotic consensus algorithm under study.
    model:
        The network model ``N`` (a finite set of graphs).
    suffix_rounds:
        How many rounds each sampled future is run for; the limit is
        approximated by the centroid of the final outputs, with error at most
        the final output diameter for convex-combination algorithms.
    exploration_depth:
        All graph sequences of this length are explored exhaustively before
        appending constant suffixes.  Depth 0 (the default) samples only the
        constant suffixes, which is sufficient for the paper's constructions.
    use_batch:
        Evaluate all sampled futures as stacked scenario ensembles through
        the algorithm's batch hooks.  ``None`` (the default) resolves through
        the active :class:`~repro.config.EngineConfig` (batched unless
        configured off).  Memoryless convex-combination algorithms rebuild
        their state from configuration outputs; stateful batch algorithms
        (e.g. the amortized midpoint) are covered through the
        ``Algorithm.batch_state`` snapshot/restore hooks
        (:meth:`~repro.algorithms.base.Algorithm.batch_state_from_states`).
        Algorithms supporting neither fall back to the per-future reference
        loop; ``use_batch=False`` forces the reference loop.
    scenario_chunk:
        Upper bound on the number of stacked scenarios per batched pass
        (``None`` resolves through the active config, default 4096).
        Exhaustive prefixes are streamed in chunks respecting this bound, so
        peak memory stays ``O(scenario_chunk · n²)`` regardless of
        ``|N|^depth``.
    threads:
        Parallel worker count for :meth:`certify_ensemble` (``None``
        resolves through the active config, then ``REPRO_THREADS``, default
        1).  Scenarios certify independently — their futures never interact
        — so the ensemble's scenario axis shards across worker threads with
        bit-for-bit identical estimates (enforced by
        ``tests/test_parallel_backend.py``).
    """

    def __init__(
        self,
        algorithm: Algorithm,
        model: NetworkModel,
        suffix_rounds: int = 60,
        exploration_depth: int = 0,
        use_batch: Optional[bool] = None,
        scenario_chunk: Optional[int] = None,
        threads: Optional[int] = None,
    ) -> None:
        use_batch = resolve_use_batch(use_batch)
        scenario_chunk = resolve_scenario_chunk(scenario_chunk)
        threads = resolve_threads(threads)
        if suffix_rounds < 1:
            raise ValueError(f"suffix_rounds must be >= 1, got {suffix_rounds}")
        if exploration_depth < 0:
            raise ValueError(f"exploration_depth must be >= 0, got {exploration_depth}")
        if scenario_chunk < 1:
            raise ValueError(f"scenario_chunk must be >= 1, got {scenario_chunk}")
        self._algorithm = algorithm
        self._model = model
        self._suffix_rounds = suffix_rounds
        self._exploration_depth = exploration_depth
        self._use_batch = use_batch
        self._scenario_chunk = scenario_chunk
        self._threads = threads

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def limit_estimates(self, configuration: Configuration) -> np.ndarray:
        """Estimated reachable limits from ``configuration`` (one row per sampled future)."""
        if self._batchable():
            return self._limit_estimates_batch([configuration])[0]
        if self._batchable_stateful():
            return self._limit_estimates_batch_state([configuration])[0]
        return self._limit_estimates_reference(configuration)

    def estimate(self, configuration: Configuration) -> ValencyEstimate:
        """Full estimate (limits plus certified lower/upper diameter bounds)."""
        limits = self.limit_estimates(configuration)
        return self._estimate_from_limits(configuration, limits)

    def valency_diameter(self, configuration: Configuration) -> float:
        """Lower estimate of ``δ_N(C)`` (diameter of the sampled reachable limits)."""
        return float(diameter(self.limit_estimates(configuration)))

    def valencies_intersect(
        self,
        config_a: Configuration,
        config_b: Configuration,
        tolerance: float = 1e-6,
    ) -> bool:
        """Heuristic check that ``Y*_N(A)`` and ``Y*_N(B)`` intersect (Lemma 7 situations).

        The check looks for a *common suffix* leading both configurations to
        the same limit (up to ``tolerance``), which is precisely how Lemma 7
        establishes the intersection.
        """
        if self._batchable():
            limits_a = self._constant_suffix_limits_batch(config_a)
            limits_b = self._constant_suffix_limits_batch(config_b)
        elif self._batchable_stateful():
            limits_a = self._constant_suffix_limits_batch_state(config_a)
            limits_b = self._constant_suffix_limits_batch_state(config_b)
        else:
            limits_a = limits_b = None
        if limits_a is not None:
            return any(
                float(np.linalg.norm(limits_a[index] - limits_b[index])) <= tolerance
                for index in range(limits_a.shape[0])
            )
        for graph in self._model:
            limit_a = self._constant_suffix_limit(config_a, graph)
            limit_b = self._constant_suffix_limit(config_b, graph)
            if float(np.linalg.norm(limit_a - limit_b)) <= tolerance:
                return True
        return False

    def trace(
        self, configurations: Sequence[Configuration]
    ) -> List[ValencyEstimate]:
        """Valency estimates along a sequence of configurations (e.g. an execution).

        On the batched path, round-invariant algorithms evaluate the futures
        of *all* configurations as one stacked ensemble per exploration
        depth; other algorithms batch each configuration's futures
        separately.
        """
        configurations = list(configurations)
        if not configurations:
            return []
        if self._batchable():
            if self._algorithm.round_invariant() and len(configurations) > 1:
                per_config = self._limit_estimates_batch(configurations)
            else:
                per_config = [
                    self._limit_estimates_batch([configuration])[0]
                    for configuration in configurations
                ]
            return [
                self._estimate_from_limits(configuration, limits)
                for configuration, limits in zip(configurations, per_config)
            ]
        if self._batchable_stateful():
            return [
                self._estimate_from_limits(
                    configuration, self._limit_estimates_batch_state([configuration])[0]
                )
                for configuration in configurations
            ]
        return [self.estimate(c) for c in configurations]

    def certify_ensemble(
        self, ensemble: EnsembleExecution
    ) -> List[List[ValencyEstimate]]:
        """Per-scenario valency estimates at every recorded round of an ensemble.

        The ensemble-scale counterpart of running :meth:`trace` on ``B``
        independent single-scenario executions: entry ``[b][r]`` is scenario
        ``b``'s estimate at recorded round ``ensemble.recorded_rounds[r]``,
        bit-for-bit identical to what the per-scenario trace would produce
        (all evaluation paths perform the same elementwise operations, only
        stacked).  On the batched paths the sampled futures of *all* ``B``
        scenarios (and, for round-invariant algorithms, all recorded rounds)
        are stacked into single ensemble passes — per-round ``(B·K, n, n)``
        adjacency stacks — instead of ``B`` separate estimator runs; stateful
        batch algorithms restore each scenario's recorded per-agent snapshot
        through ``batch_state_from_states`` and stack the restored states via
        ``batch_state_stack``.

        Requires the ensemble to have been run with ``record_states=True``
        (:meth:`~repro.execution.batch.EnsembleExecution.scenario_configurations`);
        :class:`repro.api.Study` does this automatically for certified
        ensemble studies.

        Faulted ensembles (run with a
        :class:`~repro.faults.FaultPlan`) certify unchanged: the recorded
        configurations already hold the post-fault states, so the estimates
        quantify the valency of what the faulted system actually reached.
        The estimator's *futures* are still drawn from ``model`` — the
        certificate asks "how contracted is the reachable set from here
        under fault-free continuations", which is the quantity the Theorem 6
        bounds control.  Scenario ``b`` of a faulted ensemble certifies
        bit-for-bit identically to a single-scenario run of the same
        scenario under the same resolved plan.
        """
        if not isinstance(ensemble, EnsembleExecution):
            raise ExecutionError(
                f"certify_ensemble needs an EnsembleExecution, got {type(ensemble).__name__}"
            )
        recorded = ensemble.recorded_configurations
        if recorded is None:
            raise ExecutionError(
                "ensemble certification needs recorded per-scenario configurations; "
                "rerun the ensemble with record_states=True (Study(certify=...) does "
                "this automatically)"
            )
        n = ensemble.n
        for graph in self._model:
            if graph.n != n:
                raise EnsembleShapeError(
                    f"model graph has {graph.n} agents, ensemble scenarios have {n} "
                    f"(recorded outputs shape {ensemble.recorded_outputs.shape})"
                )
        batch_size = ensemble.batch_size
        if self._threads > 1 and batch_size > 1:
            # Scenario-axis sharding: per-scenario estimates are arithmetically
            # independent (the config_group stacking never mixes results across
            # configurations), so certifying contiguous scenario slices on
            # worker threads and concatenating is bit-for-bit identical to the
            # serial pass.  Imported lazily to keep the module import-light.
            from repro.execution.parallel import parallel_map, shard_bounds

            tasks = []
            for start, stop in shard_bounds(batch_size, self._threads):
                shard_rows = [row[start:stop] for row in recorded]
                tasks.append(lambda rows=shard_rows: self._certify_recorded(rows))
            shard_results = parallel_map(tasks, self._threads)
            return [rows for result in shard_results for rows in result]
        return self._certify_recorded(recorded)

    def _certify_recorded(
        self, recorded: Sequence[Sequence[Configuration]]
    ) -> List[List[ValencyEstimate]]:
        """Serial certification core over recorded ``[round][scenario]`` rows."""
        batch_size = len(recorded[0])
        record_count = len(recorded)
        flat_configs = [recorded[r][b] for r in range(record_count) for b in range(batch_size)]
        # The batch estimators only stream the *prefix* axis, so the number of
        # stacked configurations per call must itself respect the scenario
        # chunk — otherwise a large ensemble would materialize a
        # (R·B·M, n, n) suffix stack no matter what scenario_chunk says.
        config_group = max(1, self._scenario_chunk // max(1, len(self._model)))

        if self._batchable():
            if self._algorithm.round_invariant():
                # Stacked ensembles over all B scenarios at all recorded
                # rounds per exploration depth, in memory-bounded groups.
                flat_limits = []
                for start in range(0, len(flat_configs), config_group):
                    flat_limits.extend(
                        self._limit_estimates_batch(
                            flat_configs[start : start + config_group]
                        )
                    )
            else:
                # Scenarios of one recorded round share their round number, so
                # they stack even without round invariance.
                flat_limits = []
                for r in range(record_count):
                    for start in range(0, batch_size, config_group):
                        flat_limits.extend(
                            self._limit_estimates_batch(
                                recorded[r][start : start + config_group]
                            )
                        )
        elif self._batchable_stateful():
            flat_limits = []
            for r in range(record_count):
                for start in range(0, batch_size, config_group):
                    flat_limits.extend(
                        self._limit_estimates_batch_state(
                            recorded[r][start : start + config_group]
                        )
                    )
        else:
            flat_limits = [
                self._limit_estimates_reference(configuration)
                for configuration in flat_configs
            ]

        return [
            [
                self._estimate_from_limits(
                    recorded[r][b], flat_limits[r * batch_size + b]
                )
                for r in range(record_count)
            ]
            for b in range(batch_size)
        ]

    # ------------------------------------------------------------------ #
    # Reference path
    # ------------------------------------------------------------------ #

    def _limit_estimates_reference(self, configuration: Configuration) -> np.ndarray:
        limits: List[np.ndarray] = []
        for prefix in self._prefixes():
            start = configuration
            if prefix:
                start, _ = run_from_configuration(self._algorithm, configuration, list(prefix))
            for graph in self._model:
                limits.append(self._constant_suffix_limit(start, graph))
        return np.vstack(limits)

    def _prefixes(self) -> Iterable[Sequence[CommunicationGraph]]:
        if self._exploration_depth == 0:
            yield ()
            return
        graphs = list(self._model)
        for depth in range(self._exploration_depth + 1):
            if depth == 0:
                yield ()
                continue
            for combo in iter_product(graphs, repeat=depth):
                yield combo

    def _constant_suffix_limit(
        self, configuration: Configuration, graph: CommunicationGraph
    ) -> np.ndarray:
        final, _ = run_from_configuration(
            self._algorithm, configuration, [graph] * self._suffix_rounds
        )
        return final.outputs.mean(axis=0)

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #

    def _batchable(self) -> bool:
        """Whether the outputs-based stacked-ensemble path applies.

        This path rebuilds algorithm state from configuration outputs, which
        is exact only for memoryless convex-combination algorithms with batch
        hooks.  Stateful batch algorithms take the batch-state path
        (:meth:`_batchable_stateful`); anything else takes the per-future
        reference loop (mirroring the adversaries' ``use_batch`` fallback).
        """
        return (
            self._use_batch
            and isinstance(self._algorithm, ConvexCombinationAlgorithm)
            and self._algorithm.supports_batch()
        )

    def _batchable_stateful(self) -> bool:
        """Whether the batch-state stacked-ensemble path applies.

        Stateful batch algorithms (state beyond the outputs, e.g. the
        amortized midpoint's phase extremes) cannot be rebuilt from outputs,
        but algorithms implementing the ``batch_state`` snapshot/restore
        hooks (:meth:`~repro.algorithms.base.Algorithm.batch_state_from_states`)
        restore an exact batch state from the recorded per-agent states and
        fan it out into the same stacked ensembles.
        """
        return (
            self._use_batch
            and not isinstance(self._algorithm, ConvexCombinationAlgorithm)
            and self._algorithm.supports_batch()
            and self._algorithm.supports_batch_state()
        )

    def _prefix_chunks(
        self, depth: int, chunk_size: int
    ) -> Iterator[List[Tuple[CommunicationGraph, ...]]]:
        """Stream the depth-``depth`` prefixes in chunks of at most ``chunk_size``.

        The ``itertools.product`` iterator is consumed lazily, so the full
        ``|N|^depth`` candidate list is never materialized — peak memory is
        one chunk of prefix tuples plus its stacked adjacency tensors.
        """
        if depth == 0:
            yield [()]
            return
        graphs = list(self._model)
        chunk: List[Tuple[CommunicationGraph, ...]] = []
        for combo in iter_product(graphs, repeat=depth):
            chunk.append(combo)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def _limit_estimates_batch(
        self, configurations: Sequence[Configuration]
    ) -> List[np.ndarray]:
        """Batched limit estimates, one ``(K, d)`` array per configuration.

        Scenario order matches the reference loop exactly: depth-ascending
        prefixes (``itertools.product`` order) with the model's constant
        suffix graphs innermost.  When several configurations are stacked
        (round-invariant algorithms), each chunk runs a
        ``(R · P · M, n, n)`` adjacency ensemble where ``R`` is the number of
        configurations, ``P`` the prefix-chunk size and ``M`` the model size.
        """
        model_graphs = list(self._model)
        model_count = len(model_graphs)
        config_count = len(configurations)
        outputs0 = np.stack(
            [np.asarray(configuration.outputs, dtype=float) for configuration in configurations]
        )  # (R, n, d)
        base_round = configurations[0].round_number
        prefix_chunk_size = max(1, self._scenario_chunk // max(1, config_count * model_count))
        collected: List[List[np.ndarray]] = [[] for _ in range(config_count)]

        for depth in range(self._exploration_depth + 1):
            for prefix_chunk in self._prefix_chunks(depth, prefix_chunk_size):
                prefix_count = len(prefix_chunk)
                # (R · P, n, d), configuration-major then prefix.
                values = np.repeat(outputs0, prefix_count, axis=0)
                for offset in range(depth):
                    stack = np.stack(
                        [prefix[offset].adjacency for prefix in prefix_chunk]
                    )  # (P, n, n)
                    adjacency = np.tile(stack, (config_count, 1, 1))
                    values = self._algorithm.batch_transition(
                        values, adjacency, base_round + 1 + offset
                    )
                # Expand by the constant-suffix graphs: (R · P · M, n, d).
                values = np.repeat(values, model_count, axis=0)
                suffix_stack = np.tile(
                    np.stack([graph.adjacency for graph in model_graphs]),
                    (config_count * prefix_count, 1, 1),
                )
                finals = self._run_constant_suffix(values, suffix_stack, base_round + depth)
                limits = finals.mean(axis=1)  # (R · P · M, d)
                per_config = limits.reshape(config_count, prefix_count * model_count, -1)
                for index in range(config_count):
                    collected[index].append(per_config[index])
        return [np.vstack(chunks) for chunks in collected]

    def _constant_suffix_limits_batch(self, configuration: Configuration) -> np.ndarray:
        """Limits of the ``M`` constant suffixes from one configuration, ``(M, d)``."""
        model_graphs = list(self._model)
        outputs = np.asarray(configuration.outputs, dtype=float)
        values = np.repeat(outputs[None, :, :], len(model_graphs), axis=0)
        suffix_stack = np.stack([graph.adjacency for graph in model_graphs])
        finals = self._run_constant_suffix(values, suffix_stack, configuration.round_number)
        return finals.mean(axis=1)

    def _run_constant_suffix(
        self, values: np.ndarray, suffix_adjacency: np.ndarray, start_round: int
    ) -> np.ndarray:
        """Run ``suffix_rounds`` constant-graph rounds on a ``(K, n, d)`` ensemble.

        Maintains an active set: scenarios the algorithm's
        :meth:`~repro.algorithms.base.Algorithm.batch_state_fixpoint` hook
        certifies as exact fixpoints under their constant graph are retired
        early (for round-invariant convex-combination algorithms this is the
        float fixpoint of the outputs), so the early exit is bit-for-bit
        equivalent to running the remaining rounds.
        """
        finals = np.array(values, dtype=float)
        current = finals
        adjacency = suffix_adjacency
        alive = np.arange(values.shape[0])
        for offset in range(self._suffix_rounds):
            new_values = self._algorithm.batch_transition(
                current, adjacency, start_round + 1 + offset
            )
            if offset < self._suffix_rounds - 1:
                fixed = self._algorithm.batch_state_fixpoint(current, new_values)
                if fixed is not None and fixed.any():
                    finals[alive[fixed]] = new_values[fixed]
                    keep = ~fixed
                    alive = alive[keep]
                    current = new_values[keep]
                    adjacency = adjacency[keep]
                    if alive.size == 0:
                        return finals
                    continue
            current = new_values
        finals[alive] = current
        return finals

    # ------------------------------------------------------------------ #
    # Batch-state path (stateful algorithms)
    # ------------------------------------------------------------------ #

    def _limit_estimates_batch_state(
        self, configurations: Sequence[Configuration]
    ) -> List[np.ndarray]:
        """Batched limit estimates through the ``batch_state`` restore hooks.

        Each configuration's per-agent state snapshot is restored into a
        single-scenario batch state
        (:meth:`~repro.algorithms.base.Algorithm.batch_state_from_states`);
        multiple configurations (the scenarios of one recorded ensemble
        round, which share their round number) are stacked along a leading
        scenario axis via
        :meth:`~repro.algorithms.base.Algorithm.batch_state_stack`, fanned
        out over the chunk's prefixes via ``batch_map`` and driven through
        the same stacked adjacency ensembles as the convex-combination path.
        Scenario order matches the reference loop exactly
        (configuration-major, depth-ascending prefixes, model suffix graphs
        innermost), and min/max reductions select actual state elements, so
        the result is bit-for-bit equal to the per-future reference loop.
        """
        algorithm = self._algorithm
        model_graphs = list(self._model)
        model_count = len(model_graphs)
        configurations = list(configurations)
        config_count = len(configurations)
        rounds = {configuration.round_number for configuration in configurations}
        if len(rounds) != 1:
            raise ExecutionError(
                "stacked batch-state estimates need configurations at one round, "
                f"got rounds {sorted(rounds)}"
            )
        base = algorithm.batch_state_stack(
            [
                algorithm.batch_state_from_states(configuration.states)
                for configuration in configurations
            ]
        )  # leaves (R, n, d) with R = config_count
        base_round = rounds.pop()
        prefix_chunk_size = max(
            1, self._scenario_chunk // max(1, config_count * model_count)
        )
        collected: List[List[np.ndarray]] = [[] for _ in range(config_count)]

        for depth in range(self._exploration_depth + 1):
            for prefix_chunk in self._prefix_chunks(depth, prefix_chunk_size):
                prefix_count = len(prefix_chunk)
                # (R · P, ...) leaves, configuration-major then prefix.
                state = algorithm.batch_map(
                    base,
                    lambda leaf, _count=prefix_count: np.repeat(
                        np.asarray(leaf), _count, axis=0
                    ),
                )
                for offset in range(depth):
                    stack = np.stack(
                        [prefix[offset].adjacency for prefix in prefix_chunk]
                    )  # (P, n, n)
                    adjacency = np.tile(stack, (config_count, 1, 1))
                    state = algorithm.batch_transition(
                        state, adjacency, base_round + 1 + offset
                    )
                # Expand by the constant-suffix graphs: (R · P · M, ...) leaves.
                state = algorithm.batch_map(
                    state,
                    lambda leaf, _count=model_count: np.repeat(leaf, _count, axis=0),
                )
                suffix_stack = np.tile(
                    np.stack([graph.adjacency for graph in model_graphs]),
                    (config_count * prefix_count, 1, 1),
                )
                finals = self._run_constant_suffix_state(
                    state, suffix_stack, base_round + depth
                )
                limits = finals.mean(axis=1)  # (R · P · M, d)
                per_config = limits.reshape(config_count, prefix_count * model_count, -1)
                for index in range(config_count):
                    collected[index].append(per_config[index])
        return [np.vstack(chunks) for chunks in collected]

    def _constant_suffix_limits_batch_state(
        self, configuration: Configuration
    ) -> np.ndarray:
        """Limits of the ``M`` constant suffixes from one configuration, ``(M, d)``."""
        algorithm = self._algorithm
        model_graphs = list(self._model)
        base = algorithm.batch_state_from_states(configuration.states)
        state = algorithm.batch_map(
            base,
            lambda leaf, _count=len(model_graphs): np.repeat(
                np.asarray(leaf)[None, ...], _count, axis=0
            ),
        )
        suffix_stack = np.stack([graph.adjacency for graph in model_graphs])
        finals = self._run_constant_suffix_state(
            state, suffix_stack, configuration.round_number
        )
        return finals.mean(axis=1)

    def _run_constant_suffix_state(
        self, state, suffix_adjacency: np.ndarray, start_round: int
    ) -> np.ndarray:
        """Run ``suffix_rounds`` constant-graph rounds on a stacked batch state.

        Output-level equality alone cannot retire stateful scenarios (the
        amortized midpoint's outputs stay constant mid-phase while its phase
        extremes keep widening), so the active set is gated on the
        algorithm's *state-level* fixpoint hook
        (:meth:`~repro.algorithms.base.Algorithm.batch_state_fixpoint`):
        scenarios it certifies as exact fixpoints of their constant graph are
        dropped early, bit-for-bit equal to running their remaining rounds.
        Algorithms answering ``None`` run every scenario for the full suffix.
        """
        algorithm = self._algorithm
        outputs = np.asarray(algorithm.batch_outputs(state), dtype=float)
        finals = np.array(outputs, dtype=float)
        adjacency = suffix_adjacency
        alive = np.arange(finals.shape[0])
        for offset in range(self._suffix_rounds):
            new_state = algorithm.batch_transition(
                state, adjacency, start_round + 1 + offset
            )
            if offset < self._suffix_rounds - 1:
                fixed = algorithm.batch_state_fixpoint(state, new_state)
                if fixed is not None and fixed.any():
                    new_outputs = np.asarray(
                        algorithm.batch_outputs(new_state), dtype=float
                    )
                    new_outputs = np.broadcast_to(new_outputs, (alive.size,) + finals.shape[1:])
                    finals[alive[fixed]] = new_outputs[fixed]
                    keep = ~fixed
                    alive = alive[keep]
                    new_state = algorithm.batch_map(
                        new_state, lambda leaf, _keep=keep: leaf[_keep]
                    )
                    adjacency = adjacency[keep]
                    if alive.size == 0:
                        return finals
            state = new_state
        final_outputs = np.asarray(algorithm.batch_outputs(state), dtype=float)
        finals[alive] = np.broadcast_to(final_outputs, (alive.size,) + finals.shape[1:])
        return finals

    def _estimate_from_limits(
        self, configuration: Configuration, limits: np.ndarray
    ) -> ValencyEstimate:
        lower = diameter(limits)
        upper: Optional[float] = None
        if self._algorithm.is_convex_combination():
            upper = configuration.output_diameter()
        return ValencyEstimate(limits=limits, lower_diameter=lower, upper_diameter=upper)
