"""Worst-case adversaries (adaptive communication patterns).

The lower-bound proofs construct executions round by round, always picking a
successor whose valency diameter stays large.  The adversaries here are the
executable counterparts:

* :class:`GreedyDiameterAdversary` — each round, pick the model graph that
  maximizes the *output* diameter of the successor configuration (the
  standard worst case for averaging algorithms; one-step optimal).
* :class:`LookaheadDiameterAdversary` — the same with ``k``-round lookahead
  over all graph sequences (exact worst case for short horizons).
* :class:`TwoAgentAdversary` — restricted to ``{H0, H1, H2}``; realizes the
  Theorem 1 execution against any two-agent algorithm.
* :class:`PsiBlockAdversary` — plays ``σ_i`` blocks (``Ψ_i`` repeated
  ``n - 2`` times) and greedily chooses the block's deaf agent; realizes the
  Theorem 3 execution.

All adversaries are :class:`~repro.models.patterns.AdversarialPattern`
instances and can be passed directly to
:func:`repro.execution.run_execution`.

Candidate evaluation is *batched* by default: each decision routes all ``C``
candidate graphs (or graph sequences) through
:meth:`~repro.models.patterns.RoundContext.simulate_outputs_batch` /
:meth:`~repro.models.patterns.RoundContext.simulate_sequences_batch`, which
the fast execution path evaluates as one stacked ``(C, n, n)`` adjacency
pass.  Pass ``use_batch=False`` to keep the per-graph reference loop (used by
the benchmarks and equivalence tests); both make identical choices.  Every
adversary also implements
:meth:`~repro.models.patterns.AdversarialPattern.ensemble_plan`, so whole
scenario ensembles run through
:func:`repro.execution.batch.run_adversarial_ensemble`.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import resolve_use_batch
from repro.exceptions import ExecutionError
from repro.execution.engine import run_from_configuration
from repro.execution.state import Configuration
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import psi_graph, two_agent_graphs
from repro.models.network_model import NetworkModel
from repro.models.patterns import AdversarialPattern, EnsemblePlan, RoundContext
from repro.types import diameter, pairwise_diameters, running_argmax


def _configuration_from_context(context: RoundContext) -> Configuration:
    """Rebuild the engine's current configuration from a round context."""
    return Configuration(
        states=tuple(context.states),
        outputs=np.asarray(context.outputs, dtype=float),
        round_number=context.round_number - 1,
    )


class GreedyDiameterAdversary(AdversarialPattern):
    """Pick, every round, the model graph that maximizes the successor output diameter.

    Ties are broken by the order of the graphs in the model, which makes the
    adversary deterministic and executions reproducible.  With ``use_batch``
    (``None`` resolves through the active
    :class:`~repro.config.EngineConfig`, default on) all ``|N|`` candidates
    are evaluated as one stacked adjacency pass; ``use_batch=False`` keeps
    the per-graph reference loop.

    ``avoid_repeat=True`` makes the adversary *history-dependent*: the graph
    committed in the previous round is removed from the candidate set (when
    other candidates remain), forcing the adversary to keep perturbing the
    system instead of replaying one worst-case graph.  In batched ensemble
    runs the candidate sets then differ per scenario, which the adversary
    advertises through :meth:`ensemble_plans` — the per-scenario plan API of
    :func:`repro.execution.batch.run_adversarial_ensemble`.
    """

    def __init__(
        self,
        model: NetworkModel,
        use_batch: Optional[bool] = None,
        avoid_repeat: bool = False,
    ) -> None:
        self._model = model
        self._use_batch = use_batch
        self._avoid_repeat = avoid_repeat

    @property
    def model(self) -> NetworkModel:
        """The network model the adversary draws graphs from."""
        return self._model

    def _candidate_graphs(
        self, history: Sequence[CommunicationGraph]
    ) -> List[CommunicationGraph]:
        graphs = list(self._model)
        if self._avoid_repeat and history:
            last = history[-1]
            filtered = [graph for graph in graphs if graph is not last]
            if filtered:
                return filtered
        return graphs

    def choose(self, context: RoundContext) -> CommunicationGraph:
        graphs = self._candidate_graphs(context.history)
        if resolve_use_batch(self._use_batch):
            outputs = context.simulate_outputs_batch(graphs)
            return graphs[running_argmax(pairwise_diameters(outputs))]
        best_graph: Optional[CommunicationGraph] = None
        best_diameter = -1.0
        for graph in graphs:
            outputs = context.simulate_outputs(graph)
            candidate = diameter(outputs)
            if candidate > best_diameter + 1e-15:
                best_diameter = candidate
                best_graph = graph
        assert best_graph is not None
        return best_graph

    def ensemble_plan(self, round_number: int, n: int) -> Optional[EnsemblePlan]:
        if self._avoid_repeat:
            # History-dependent: the shared-plan API cannot express the
            # per-scenario candidate sets; ensemble_plans serves them.
            return None
        return EnsemblePlan(
            candidates=tuple((graph,) for graph in self._model), commit_rounds=1
        )

    def ensemble_plans(
        self,
        round_number: int,
        n: int,
        histories: Sequence[Sequence[CommunicationGraph]],
    ) -> Optional[Tuple[EnsemblePlan, ...]]:
        if not self._avoid_repeat:
            return None
        # One plan per scenario, each excluding that scenario's previous
        # commit.  Candidate counts stay uniform across scenarios: |N| in
        # round 1 (all histories empty), |N| - 1 afterwards (every history
        # ends in a model graph), so the stacked (B, C, n, n) pass is square.
        return tuple(
            EnsemblePlan(
                candidates=tuple(
                    (graph,) for graph in self._candidate_graphs(history)
                ),
                commit_rounds=1,
            )
            for history in histories
        )

    def __repr__(self) -> str:
        if self._avoid_repeat:
            return f"GreedyDiameterAdversary({self._model!r}, avoid_repeat=True)"
        return f"GreedyDiameterAdversary({self._model!r})"


class LookaheadDiameterAdversary(AdversarialPattern):
    """Exhaustive ``k``-round lookahead: maximize the output diameter ``k`` rounds ahead.

    The search cost is ``|N|^k`` simulated rounds per decision; keep ``k``
    small (2–4) and the model small.  Only the first graph of the best
    sequence is committed each round (receding-horizon control).
    """

    def __init__(
        self, model: NetworkModel, lookahead: int = 2, use_batch: Optional[bool] = None
    ) -> None:
        if lookahead < 1:
            raise ExecutionError(f"lookahead must be >= 1, got {lookahead}")
        self._model = model
        self._lookahead = lookahead
        self._use_batch = use_batch

    def _candidate_sequences(self) -> List[Tuple[CommunicationGraph, ...]]:
        return list(iter_product(list(self._model), repeat=self._lookahead))

    def choose(self, context: RoundContext) -> CommunicationGraph:
        sequences = self._candidate_sequences()
        if resolve_use_batch(self._use_batch):
            outputs = context.simulate_sequences_batch(sequences)
            return sequences[running_argmax(pairwise_diameters(outputs))][0]
        configuration = _configuration_from_context(context)
        best_sequence: Optional[Tuple[CommunicationGraph, ...]] = None
        best_diameter = -1.0
        for sequence in sequences:
            final, _ = run_from_configuration(context.algorithm, configuration, list(sequence))
            candidate = final.output_diameter()
            if candidate > best_diameter + 1e-15:
                best_diameter = candidate
                best_sequence = sequence
        assert best_sequence is not None
        return best_sequence[0]

    def ensemble_plan(self, round_number: int, n: int) -> EnsemblePlan:
        return EnsemblePlan(
            candidates=tuple(self._candidate_sequences()), commit_rounds=1
        )

    def __repr__(self) -> str:
        return f"LookaheadDiameterAdversary({self._model!r}, lookahead={self._lookahead})"


class TwoAgentAdversary(AdversarialPattern):
    """The Theorem 1 adversary for two-agent systems over ``{H0, H1, H2}``.

    Each round it evaluates the three possible successor configurations and
    keeps the one with the largest output diameter — the executable analogue
    of the proof's "keep the successor whose valency diameter is at least a
    third of the parent's".
    """

    def __init__(self, use_batch: Optional[bool] = None) -> None:
        self._graphs = list(two_agent_graphs())
        self._use_batch = use_batch

    def choose(self, context: RoundContext) -> CommunicationGraph:
        if context.outputs.shape[0] != 2:
            raise ExecutionError("TwoAgentAdversary only applies to systems of 2 agents")
        if resolve_use_batch(self._use_batch):
            outputs = context.simulate_outputs_batch(self._graphs)
            return self._graphs[running_argmax(pairwise_diameters(outputs))]
        best_graph = self._graphs[0]
        best_diameter = -1.0
        for graph in self._graphs:
            candidate = diameter(context.simulate_outputs(graph))
            if candidate > best_diameter + 1e-15:
                best_diameter = candidate
                best_graph = graph
        return best_graph

    def ensemble_plan(self, round_number: int, n: int) -> EnsemblePlan:
        if n != 2:
            raise ExecutionError("TwoAgentAdversary only applies to systems of 2 agents")
        return EnsemblePlan(
            candidates=tuple((graph,) for graph in self._graphs), commit_rounds=1
        )

    def __repr__(self) -> str:
        return "TwoAgentAdversary()"


class PsiBlockAdversary(AdversarialPattern):
    """The Theorem 3 adversary: play ``σ_i`` blocks, choosing the block greedily.

    At the start of every block of ``n - 2`` rounds the adversary simulates
    the three candidate blocks ``σ_0, σ_1, σ_2`` to completion and commits to
    the one whose end-of-block configuration has the largest output diameter.
    Within a block it keeps playing the committed ``Ψ`` graph, so the overall
    communication pattern is a concatenation of ``σ`` blocks — i.e. a member
    of the property ``P_seq`` of Section 6.2.
    """

    def __init__(self, n: int, use_batch: Optional[bool] = None) -> None:
        if n < 4:
            raise ExecutionError("PsiBlockAdversary requires n >= 4 agents")
        self._n = n
        self._block_length = n - 2
        self._psi = {i: psi_graph(n, i) for i in (0, 1, 2)}
        self._use_batch = use_batch
        self._current_choice: Optional[int] = None
        self._chosen_blocks: List[int] = []

    def reset(self) -> None:
        self._current_choice = None
        self._chosen_blocks = []

    @property
    def chosen_blocks(self) -> List[int]:
        """The deaf-agent index committed for each completed or ongoing block."""
        return list(self._chosen_blocks)

    def choose(self, context: RoundContext) -> CommunicationGraph:
        position_in_block = (context.round_number - 1) % self._block_length
        if position_in_block == 0 or self._current_choice is None:
            self._current_choice = self._pick_block(context)
            self._chosen_blocks.append(self._current_choice)
        return self._psi[self._current_choice]

    def _candidate_blocks(self) -> List[List[CommunicationGraph]]:
        return [[self._psi[choice]] * self._block_length for choice in (0, 1, 2)]

    def _pick_block(self, context: RoundContext) -> int:
        if resolve_use_batch(self._use_batch):
            outputs = context.simulate_sequences_batch(self._candidate_blocks())
            return running_argmax(pairwise_diameters(outputs))
        configuration = _configuration_from_context(context)
        best_choice = 0
        best_diameter = -1.0
        for choice in (0, 1, 2):
            block = [self._psi[choice]] * self._block_length
            final, _ = run_from_configuration(context.algorithm, configuration, block)
            candidate = final.output_diameter()
            if candidate > best_diameter + 1e-15:
                best_diameter = candidate
                best_choice = choice
        return best_choice

    def ensemble_plan(self, round_number: int, n: int) -> EnsemblePlan:
        if n != self._n:
            raise ExecutionError(
                f"PsiBlockAdversary was built for n={self._n} agents, the ensemble has n={n}"
            )
        return EnsemblePlan(
            candidates=tuple(tuple(block) for block in self._candidate_blocks()),
            commit_rounds=self._block_length,
        )

    def __repr__(self) -> str:
        return f"PsiBlockAdversary(n={self._n})"


def worst_constant_suffixes(
    model: NetworkModel,
) -> Dict[str, CommunicationGraph]:
    """Constant suffixes in which some agent is deaf, keyed by a display label.

    These are the suffixes used by Lemma 7 / Lemma 8 to pin an execution's
    limit to a single agent's current value; they are exposed for use in
    valency experiments and documentation examples.
    """
    suffixes: Dict[str, CommunicationGraph] = {}
    for graph in model:
        for agent in graph.deaf_agents():
            label = f"deaf-agent-{agent}-via-{graph.name or 'graph'}"
            suffixes.setdefault(label, graph)
    return suffixes


def adversarial_graph_sequence(
    adversary: AdversarialPattern,
    algorithm,
    initial_values: Sequence[float],
    rounds: int,
) -> List[CommunicationGraph]:
    """Convenience helper returning the graph choices an adversary makes.

    Runs ``algorithm`` for ``rounds`` rounds under ``adversary`` and returns
    the chosen graphs, which benchmarks print alongside the diameters.
    """
    from repro.execution.engine import run_execution  # local import avoids cycles

    execution = run_execution(algorithm, initial_values, adversary, rounds)
    return list(execution.graphs)
