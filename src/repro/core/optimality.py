"""Tightness reports: measured algorithm performance versus the paper's bounds.

A :class:`TightnessReport` packages, for one (algorithm, model, adversary)
triple, the theoretical lower bound, the measured worst-case contraction rate
of the algorithm, and the quoted upper bound — the three quantities whose
coincidence is what the paper means by a *tight* bound.  The Table 1 and
Figure 1/2 benchmarks are thin wrappers around :func:`tightness_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algorithms.base import Algorithm
from repro.core.contraction import measure_contraction_rate
from repro.core.lower_bounds import LowerBound, contraction_rate_lower_bound
from repro.models.network_model import NetworkModel
from repro.models.patterns import CommunicationPattern
from repro.types import ValuesLike


@dataclass
class TightnessReport:
    """Comparison of a measured contraction rate against the paper's bounds.

    Attributes
    ----------
    model_name / algorithm_name:
        Identification of the measured combination.
    lower_bound:
        The theoretical lower bound (with provenance).
    measured_rate:
        The fitted contraction rate of the algorithm under the supplied
        adversary/pattern.
    upper_bound:
        The quoted upper bound for the algorithm (if known).
    rounds:
        Number of rounds used for the measurement.
    """

    model_name: str
    algorithm_name: str
    lower_bound: LowerBound
    measured_rate: float
    upper_bound: Optional[float]
    rounds: int

    def lower_bound_respected(self, tolerance: float = 1e-6) -> bool:
        """Whether the measured rate is at least the lower bound (it must be)."""
        return self.measured_rate >= self.lower_bound.value - tolerance

    def is_tight(self, tolerance: float = 1e-3) -> bool:
        """Whether the measured rate matches the lower bound up to ``tolerance``."""
        return abs(self.measured_rate - self.lower_bound.value) <= tolerance

    def as_row(self) -> str:
        """A fixed-width text row for benchmark output."""
        upper = f"{self.upper_bound:.4f}" if self.upper_bound is not None else "  n/a "
        return (
            f"{self.model_name:<28} {self.algorithm_name:<26} "
            f"{self.lower_bound.value:>8.4f} {self.measured_rate:>9.4f} {upper:>8}"
        )


def tightness_report(
    algorithm: Algorithm,
    model: NetworkModel,
    pattern: CommunicationPattern,
    initial_values: ValuesLike,
    rounds: int,
    upper_bound: Optional[float] = None,
    skip_rounds: int = 0,
    check_alpha_diameter: bool = True,
) -> TightnessReport:
    """Measure ``algorithm`` under ``pattern`` and compare against the model's lower bound."""
    measurement = measure_contraction_rate(
        algorithm, model, pattern, initial_values, rounds, skip_rounds=skip_rounds
    )
    bound = contraction_rate_lower_bound(model, check_alpha_diameter=check_alpha_diameter)
    return TightnessReport(
        model_name=model.name or repr(model),
        algorithm_name=algorithm.name,
        lower_bound=bound,
        measured_rate=measurement.output_rate,
        upper_bound=upper_bound,
        rounds=rounds,
    )
