"""Decision-time bounds for approximate consensus (Section 9).

Theorems 8–11 translate the contraction-rate lower bounds into lower bounds
on the number of rounds any approximate consensus algorithm needs before all
agents may decide, as a function of the initial diameter bound ``Δ`` and the
tolerance ``ε``:

* ``n = 2``, model ⊇ {H0, H1, H2}:       ``log_3(Δ/ε)``            (Theorem 8)
* ``n ≥ 3``, model ⊇ deaf(G):            ``log_2(Δ/ε)``            (Theorem 9)
* ``n ≥ 4``, model ⊇ {Ψ_i}:              ``(n-2)·log_2(Δ/ε)``      (Theorem 10)
* exact consensus unsolvable, α-diam D:  ``log_{D+1}(Δ/(εn))``     (Theorem 11)

The module also provides the matching *decision rounds* of the deciding
versions of the optimal algorithms of [Charron-Bost et al., ICALP'16]
(Algorithm 1, midpoint, amortized midpoint), which the Section 9 discussion
shows to be optimal (up to the factor ``(n-1)/(n-2)`` in the rooted case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ModelError
from repro.models.network_model import NetworkModel

#: Guard against floating-point round-off when Δ/ε is an exact power of the base.
_CEIL_SLACK = 1e-12


def _ratio(delta: float, epsilon: float) -> float:
    if delta <= 0:
        raise ModelError(f"the initial diameter bound Δ must be positive, got {delta}")
    if epsilon <= 0:
        raise ModelError(f"the tolerance ε must be positive, got {epsilon}")
    return delta / epsilon


def _ceil_log(value: float, base: float) -> int:
    if value <= 1.0:
        return 0
    return max(0, math.ceil(math.log(value) / math.log(base) - _CEIL_SLACK))


# --------------------------------------------------------------------------- #
# Lower bounds (Theorems 8–11)
# --------------------------------------------------------------------------- #

def two_agent_decision_time_lower_bound(delta: float, epsilon: float) -> float:
    """Theorem 8: any approximate consensus algorithm for n = 2 needs ≥ log_3(Δ/ε) rounds."""
    return math.log(_ratio(delta, epsilon)) / math.log(3.0)


def deaf_decision_time_lower_bound(delta: float, epsilon: float) -> float:
    """Theorem 9: models containing deaf(G) need ≥ log_2(Δ/ε) rounds (n ≥ 3)."""
    return math.log2(_ratio(delta, epsilon))


def psi_decision_time_lower_bound(n: int, delta: float, epsilon: float) -> float:
    """Theorem 10: models containing the Ψ graphs need ≥ (n-2)·log_2(Δ/ε) rounds (n ≥ 4)."""
    if n < 4:
        raise ModelError(f"Theorem 10 requires n >= 4 agents, got n={n}")
    return (n - 2) * math.log2(_ratio(delta, epsilon))


def general_decision_time_lower_bound(
    n: int, alpha_diameter_value: float, delta: float, epsilon: float
) -> float:
    """Theorem 11: with α-diameter D, any algorithm needs ≥ log_{D+1}(Δ/(εn)) rounds."""
    if alpha_diameter_value == float("inf"):
        return 0.0
    ratio = delta / (epsilon * n)
    if ratio <= 1.0:
        return 0.0
    return math.log(ratio) / math.log(alpha_diameter_value + 1.0)


# --------------------------------------------------------------------------- #
# Matching decision rounds of the optimal algorithms
# --------------------------------------------------------------------------- #

def two_agent_decision_round(delta: float, epsilon: float) -> int:
    """Rounds after which Algorithm 1 may decide: ⌈log_3(Δ/ε)⌉ (optimal by Theorem 8)."""
    return _ceil_log(_ratio(delta, epsilon), 3.0)


def midpoint_decision_round(delta: float, epsilon: float) -> int:
    """Rounds after which the midpoint algorithm may decide in non-split models: ⌈log_2(Δ/ε)⌉."""
    return _ceil_log(_ratio(delta, epsilon), 2.0)


def amortized_midpoint_decision_round(n: int, delta: float, epsilon: float) -> int:
    """Rounds after which the amortized midpoint algorithm may decide in rooted models.

    One phase of ``n - 1`` rounds halves the range, so
    ``(n-1)·⌈log_2(Δ/ε)⌉`` rounds suffice — within a multiplicative factor of
    ``(n-1)/(n-2)`` of the Theorem 10 lower bound.
    """
    if n < 2:
        raise ModelError(f"need n >= 2 agents, got n={n}")
    return (n - 1) * _ceil_log(_ratio(delta, epsilon), 2.0)


# --------------------------------------------------------------------------- #
# Dispatcher
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class DecisionTimeBound:
    """A decision-time lower bound together with its provenance."""

    rounds: float
    theorem: str
    reason: str


def decision_time_lower_bound(
    model: NetworkModel, delta: float, epsilon: float, check_alpha_diameter: bool = True
) -> DecisionTimeBound:
    """The strongest applicable decision-time lower bound for ``model``.

    Mirrors :func:`repro.core.lower_bounds.contraction_rate_lower_bound`,
    returning the bound in *rounds* for the given ``Δ`` and ``ε``.
    """
    from repro.core.lower_bounds import contraction_rate_lower_bound  # avoid import cycle

    bound = contraction_rate_lower_bound(model, check_alpha_diameter=check_alpha_diameter)
    if bound.value <= 0.0:
        return DecisionTimeBound(
            rounds=0.0,
            theorem=bound.theorem,
            reason="no positive contraction-rate bound applies, so no decision-time bound follows",
        )
    if bound.theorem == "Theorem 1":
        return DecisionTimeBound(
            rounds=two_agent_decision_time_lower_bound(delta, epsilon),
            theorem="Theorem 8",
            reason="n = 2 and the model contains H0, H1, H2",
        )
    if bound.theorem == "Theorem 2":
        return DecisionTimeBound(
            rounds=deaf_decision_time_lower_bound(delta, epsilon),
            theorem="Theorem 9",
            reason="the model contains a deaf family",
        )
    if bound.theorem == "Theorem 3":
        return DecisionTimeBound(
            rounds=psi_decision_time_lower_bound(model.n, delta, epsilon),
            theorem="Theorem 10",
            reason="the model contains the Ψ graphs",
        )
    # Theorem 5 → Theorem 11: recover D from the bound value 1/(D+1).
    alpha_diameter_value = 1.0 / bound.value - 1.0
    return DecisionTimeBound(
        rounds=general_decision_time_lower_bound(model.n, alpha_diameter_value, delta, epsilon),
        theorem="Theorem 11",
        reason=bound.reason,
    )


def optimal_decision_round(
    model: NetworkModel, delta: float, epsilon: float
) -> Optional[int]:
    """The decision round of the best known algorithm for ``model``, if one applies.

    Returns ``None`` when none of the paper's algorithms matches the model
    family (the caller should then pick an algorithm and a round manually).
    """
    model_set = set(model.graphs)
    from repro.graphs.families import psi_family, two_agent_graphs  # local to avoid heavy import

    if model.n == 2 and all(h in model_set for h in two_agent_graphs()):
        return two_agent_decision_round(delta, epsilon)
    if model.is_nonsplit_model():
        return midpoint_decision_round(delta, epsilon)
    if model.n >= 4 and all(psi in model_set for psi in psi_family(model.n)):
        return amortized_midpoint_decision_round(model.n, delta, epsilon)
    if model.is_rooted_model():
        return amortized_midpoint_decision_round(model.n, delta, epsilon)
    return None
