"""Closed-form contraction-rate bounds (Table 1) and the model classifier.

The module collects every lower bound proved in the paper and every matching
upper bound quoted from [Charron-Bost et al., ICALP'16]:

===============================  =====================  ==========================
network model                    lower bound            upper bound (algorithm)
===============================  =====================  ==========================
n = 2, ⊇ {H0, H1, H2}            1/3 (Theorem 1)        1/3 (Algorithm 1)
n ≥ 3, ⊇ deaf(G)                 1/2 (Theorem 2)        1/2 (midpoint, non-split)
n ≥ 4, ⊇ {Ψ_0, Ψ_1, Ψ_2}         (1/2)^(1/(n-2)) (T.3)  (1/2)^(1/(n-1)) (amortized)
exact consensus unsolvable       1/(D+1) (Theorem 5)    —
async rounds, f < n/2 crashes    1/(⌈n/f⌉+1) (T.6)      1/(⌈n/f⌉-1) (Fekete)
async, not round-based           0 (trivial)            0 (MinRelay, Theorem 7)
===============================  =====================  ==========================

:func:`contraction_rate_lower_bound` classifies an arbitrary
:class:`~repro.models.network_model.NetworkModel` and returns the strongest
applicable bound together with the theorem that provides it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import deaf_family, psi_family, two_agent_graphs
from repro.graphs.relations import alpha_diameter
from repro.models.network_model import NetworkModel


# --------------------------------------------------------------------------- #
# Closed-form bounds
# --------------------------------------------------------------------------- #

def two_agent_lower_bound() -> float:
    """Theorem 1: contraction rate ≥ 1/3 for any algorithm when n = 2 and N ⊇ {H0, H1, H2}."""
    return 1.0 / 3.0


def two_agent_upper_bound() -> float:
    """Algorithm 1 achieves contraction rate 1/3 for n = 2 (matching Theorem 1)."""
    return 1.0 / 3.0


def deaf_graphs_lower_bound() -> float:
    """Theorem 2: contraction rate ≥ 1/2 for n ≥ 3 when N contains deaf(G) for some G."""
    return 0.5


def midpoint_upper_bound() -> float:
    """The midpoint algorithm achieves contraction rate 1/2 in non-split models."""
    return 0.5


def psi_lower_bound(n: int) -> float:
    """Theorem 3: contraction rate ≥ (1/2)^(1/(n-2)) when N contains the Ψ graphs (n ≥ 4)."""
    if n < 4:
        raise ModelError(f"the Ψ lower bound requires n >= 4 agents, got n={n}")
    return 0.5 ** (1.0 / (n - 2))


def amortized_midpoint_upper_bound(n: int) -> float:
    """The amortized midpoint algorithm achieves (1/2)^(1/(n-1)) in rooted models (n ≥ 2)."""
    if n < 2:
        raise ModelError(f"need n >= 2 agents, got n={n}")
    return 0.5 ** (1.0 / (n - 1))


def alpha_diameter_lower_bound(alpha_diameter_value: float) -> float:
    """Theorem 5: contraction rate ≥ 1/(D+1) where D is the α-diameter.

    ``D = inf`` yields the trivial bound 0.
    """
    if alpha_diameter_value == float("inf"):
        return 0.0
    if alpha_diameter_value < 1:
        raise ModelError(f"the α-diameter is at least 1, got {alpha_diameter_value}")
    return 1.0 / (alpha_diameter_value + 1.0)


def round_based_crash_lower_bound(n: int, f: int) -> float:
    """Theorem 6: asynchronous round-based algorithms with f < n/2 crashes: ≥ 1/(⌈n/f⌉+1)."""
    _check_crash_parameters(n, f, require_minority=True)
    return 1.0 / (math.ceil(n / f) + 1)


def round_based_crash_upper_bound(n: int, f: int) -> float:
    """Fekete's asynchronous algorithm achieves ≤ 1/(⌈n/f⌉-1) (Table 1, right column)."""
    _check_crash_parameters(n, f, require_minority=True)
    return 1.0 / (math.ceil(n / f) - 1)


def general_async_contraction_rate() -> float:
    """Theorem 7: MinRelay (not round-based) achieves contraction rate 0 for any f < n."""
    return 0.0


def _check_crash_parameters(n: int, f: int, require_minority: bool) -> None:
    if n < 3:
        raise ModelError(f"the crash bounds are stated for n >= 3 agents, got n={n}")
    if f < 1:
        raise ModelError(f"need at least one possible crash, got f={f}")
    if require_minority and not f < n / 2:
        raise ModelError(f"the round-based bounds require f < n/2, got n={n}, f={f}")


# --------------------------------------------------------------------------- #
# Model classifier
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class LowerBound:
    """A contraction-rate lower bound together with its provenance.

    Attributes
    ----------
    value:
        The numerical bound (in ``[0, 1)``).
    theorem:
        The paper theorem providing the bound (e.g. ``"Theorem 2"``).
    reason:
        A human-readable explanation of why the theorem applies.
    """

    value: float
    theorem: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:.6g} ({self.theorem}: {self.reason})"


def _union_graph(model: NetworkModel) -> CommunicationGraph:
    """The edge-wise union of all graphs of the model."""
    adjacency = np.zeros((model.n, model.n), dtype=bool)
    for graph in model:
        adjacency |= graph.adjacency
    return CommunicationGraph(model.n, adjacency=adjacency, name="union")


def _contains_deaf_family(model: NetworkModel) -> Optional[CommunicationGraph]:
    """A base graph ``G`` with ``deaf(G) ⊆ model``, or None.

    Candidates tried: every model graph and the edge-wise union of the model
    (the union recovers the base graph when the model *is* ``deaf(G)``, and
    equals ``K_n`` for the all-non-split model).
    """
    model_set = set(model.graphs)
    candidates = [_union_graph(model)] + list(model.graphs)
    for base in candidates:
        family = deaf_family(base)
        if all(member in model_set for member in family):
            return base
    return None


def contraction_rate_lower_bound(
    model: NetworkModel, check_alpha_diameter: bool = True
) -> LowerBound:
    """The strongest applicable contraction-rate lower bound for ``model``.

    The classifier applies, in order: solvability of exact consensus
    (bound 0), Theorem 1 (n = 2), Theorem 2 (deaf families), Theorem 3
    (Ψ graphs), and Theorem 5 / Corollary 23 (α-diameter of a
    source-incompatible β-class); the maximum of the applicable bounds is
    returned.  ``check_alpha_diameter=False`` skips the (potentially
    expensive) β-class computation for large models.
    """
    if model.exact_consensus_solvable():
        return LowerBound(
            value=0.0,
            theorem="exact consensus solvable",
            reason="an exact consensus algorithm yields contraction rate 0 by deciding and stopping",
        )

    candidates: List[LowerBound] = []
    n = model.n
    model_set = set(model.graphs)

    if n == 2 and all(h in model_set for h in two_agent_graphs()):
        candidates.append(
            LowerBound(
                value=two_agent_lower_bound(),
                theorem="Theorem 1",
                reason="n = 2 and the model contains H0, H1, H2",
            )
        )

    if n >= 3:
        base = _contains_deaf_family(model)
        if base is not None:
            candidates.append(
                LowerBound(
                    value=deaf_graphs_lower_bound(),
                    theorem="Theorem 2",
                    reason=f"the model contains deaf({base.name or 'G'})",
                )
            )

    if n >= 4 and all(psi in model_set for psi in psi_family(n)):
        candidates.append(
            LowerBound(
                value=psi_lower_bound(n),
                theorem="Theorem 3",
                reason="the model contains the graphs Ψ_0, Ψ_1, Ψ_2",
            )
        )

    if check_alpha_diameter:
        best_diameter = float("inf")
        for beta_class in model.unsolvable_beta_classes():
            diameter_value = alpha_diameter(beta_class)
            best_diameter = min(best_diameter, diameter_value)
        if best_diameter < float("inf"):
            candidates.append(
                LowerBound(
                    value=alpha_diameter_lower_bound(best_diameter),
                    theorem="Theorem 5 / Corollary 23",
                    reason=(
                        "exact consensus is unsolvable and a source-incompatible β-class has "
                        f"α-diameter {best_diameter:g}"
                    ),
                )
            )

    if not candidates:
        return LowerBound(
            value=0.0,
            theorem="none",
            reason="no theorem of the paper applies to this model with the implemented checks",
        )
    return max(candidates, key=lambda bound: bound.value)
