"""Contraction-rate measurement.

Section 3 defines the contraction rate of algorithm ``A`` in network model
``N`` as ``sup_E limsup_t (δ_N(C_t))^(1/t)``.  This module measures two
empirical counterparts on finite executions:

* the **output-diameter rate** — the geometric decay of ``Δ(y(t))``, which
  upper-bounds the valency diameter for convex-combination algorithms and is
  the quantity the matching upper-bound proofs in [9] control; and
* the **valency-diameter trace** — lower estimates of ``δ_N(C_t)`` along an
  execution obtained by suffix sampling (:class:`~repro.core.valency.ValencyEstimator`),
  which is the quantity the lower-bound proofs control.

Used together under the proof adversaries they certify tightness: the
measured output rate of the optimal algorithm matches the theoretical lower
bound and the measured valency trace never decays faster than the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.algorithms.base import Algorithm
from repro.core.valency import ValencyEstimator
from repro.execution.batch import run_pattern_ensemble
from repro.execution.engine import run_execution
from repro.execution.execution import Execution
from repro.execution.metrics import empirical_contraction_rate
from repro.models.network_model import NetworkModel
from repro.models.patterns import CommunicationPattern
from repro.types import ValuesLike


@dataclass
class ContractionMeasurement:
    """Result of measuring an algorithm's contraction behaviour on one execution.

    Attributes
    ----------
    algorithm_name / model_name:
        Identification of the measured combination.
    rounds:
        Number of executed rounds.
    output_rate:
        Fitted geometric decay rate of the output diameter ``Δ(y(t))``.
    per_round_factors:
        The individual factors ``Δ(y(t)) / Δ(y(t-1))``.
    execution:
        The underlying execution record (for further analysis or plotting).
    """

    algorithm_name: str
    model_name: str
    rounds: int
    output_rate: float
    per_round_factors: np.ndarray
    execution: Execution

    @property
    def worst_round_factor(self) -> float:
        """The largest single-round contraction factor observed."""
        finite = self.per_round_factors[~np.isnan(self.per_round_factors)]
        return float(finite.max()) if finite.size else float("nan")


def measure_contraction_rate(
    algorithm: Algorithm,
    model: NetworkModel,
    pattern: CommunicationPattern,
    initial_values: ValuesLike,
    rounds: int,
    skip_rounds: int = 0,
) -> ContractionMeasurement:
    """Run ``algorithm`` under ``pattern`` and fit its output-diameter contraction rate.

    ``skip_rounds`` ignores an initial transient (useful for phase-based
    algorithms whose diameter only drops at phase boundaries).
    """
    execution = run_execution(algorithm, initial_values, pattern, rounds)
    diameters = execution.diameters()
    factors = np.full(len(diameters) - 1, np.nan)
    for t in range(1, len(diameters)):
        if diameters[t - 1] > 0:
            factors[t - 1] = diameters[t] / diameters[t - 1]
    rate = empirical_contraction_rate(execution, skip_rounds=skip_rounds)
    return ContractionMeasurement(
        algorithm_name=algorithm.name,
        model_name=model.name or repr(model),
        rounds=rounds,
        output_rate=rate,
        per_round_factors=factors,
        execution=execution,
    )


def valency_contraction_trace(
    algorithm: Algorithm,
    model: NetworkModel,
    pattern: CommunicationPattern,
    initial_values: ValuesLike,
    rounds: int,
    suffix_rounds: int = 60,
    exploration_depth: int = 0,
    estimator: Optional[ValencyEstimator] = None,
    use_batch: Optional[bool] = None,
) -> List[float]:
    """Lower estimates of ``δ_N(C_t)`` for ``t = 0 .. rounds`` along one execution.

    This is the executable counterpart of the quantity the lower-bound proofs
    track: under the proof adversaries the returned sequence decays no faster
    than ``bound^t · δ_N(C_0)``.

    With ``use_batch`` (``None`` resolves through the active
    :class:`~repro.config.EngineConfig`, batched by default) the per-round
    valency estimates run through the estimator's stacked-ensemble path —
    for round-invariant algorithms the futures of *every* recorded
    configuration are evaluated as one ensemble per exploration depth, and
    stateful batch algorithms are covered through the ``batch_state``
    restore hooks — and are bit-for-bit equal to the ``use_batch=False``
    reference loop.
    """
    execution = run_execution(algorithm, initial_values, pattern, rounds)
    estimator = estimator or ValencyEstimator(
        algorithm,
        model,
        suffix_rounds=suffix_rounds,
        exploration_depth=exploration_depth,
        use_batch=use_batch,
    )
    return [
        float(estimate.lower_diameter)
        for estimate in estimator.trace(execution.configurations)
    ]


def valency_contraction_trace_ensemble(
    algorithm: Algorithm,
    model: NetworkModel,
    patterns: Union[CommunicationPattern, Sequence[CommunicationPattern]],
    initial_values: Union[np.ndarray, Sequence[ValuesLike]],
    rounds: int,
    suffix_rounds: int = 60,
    exploration_depth: int = 0,
    estimator: Optional[ValencyEstimator] = None,
    use_batch: Optional[bool] = None,
    record_every: int = 1,
) -> np.ndarray:
    """Per-scenario valency-diameter traces along a whole ``(B, n, d)`` ensemble.

    The ensemble-scale counterpart of :func:`valency_contraction_trace`: runs
    ``B`` scenarios (stacked initial values against one shared pattern or one
    pattern per scenario) with per-scenario configuration snapshots, then
    estimates every scenario's ``δ_N(C_t)`` trace through
    :meth:`~repro.core.valency.ValencyEstimator.certify_ensemble` — all
    scenarios' sampled futures stacked into single ensemble passes.  Returns
    a ``(B, R)`` array (one row per scenario, one column per recorded round),
    with each row bit-for-bit identical to the single-scenario
    :func:`valency_contraction_trace` of that scenario.
    """
    ensemble = run_pattern_ensemble(
        algorithm,
        initial_values,
        patterns,
        rounds,
        record_every=record_every,
        record_states=True,
    )
    estimator = estimator or ValencyEstimator(
        algorithm,
        model,
        suffix_rounds=suffix_rounds,
        exploration_depth=exploration_depth,
        use_batch=use_batch,
    )
    per_scenario = estimator.certify_ensemble(ensemble)
    return np.array(
        [
            [float(estimate.lower_diameter) for estimate in estimates]
            for estimates in per_scenario
        ],
        dtype=float,
    )


def fit_trace_rate(valency_trace: List[float]) -> float:
    """Geometric decay rate fitted to a valency-diameter trace.

    Fits ``(trace[last] / trace[first]) ** (1 / span)`` over the positive
    span of the trace — the certified *lower* estimate of the contraction
    rate, since the trace under-approximates ``δ_N(C_t)``.  Returns 0.0 when
    fewer than two positive entries exist.
    """
    trace = np.asarray(valency_trace, dtype=float)
    positive = trace > 0
    if positive.sum() < 2:
        return 0.0
    first = int(np.argmax(positive))
    last = int(len(trace) - 1 - np.argmax(positive[::-1]))
    span = last - first
    return float((trace[last] / trace[first]) ** (1.0 / span)) if span > 0 else 0.0


def certified_rate_interval(
    measurement: ContractionMeasurement,
    valency_trace: List[float],
) -> tuple:
    """A (lower, upper) interval for the algorithm's contraction rate on this execution.

    The lower end fits the valency-diameter trace (which under-approximates
    ``δ_N(C_t)``), the upper end is the output-diameter rate (which
    over-approximates it for convex-combination algorithms).
    """
    return (fit_trace_rate(valency_trace), measurement.output_rate)
