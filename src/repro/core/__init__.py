"""The paper's primary contribution: valencies, contraction rates and bounds.

This package implements

* the extended **valency** notion for asymptotic consensus (Section 3) and an
  estimator of valency diameters ``δ_N(C)`` along executions;
* the **contraction rate** (Section 3) and empirical estimators of it;
* the **adversaries** used in the lower-bound proofs (Theorems 1, 2, 3, 5)
  plus generic greedy/lookahead adversaries;
* closed forms of every **lower and upper bound** in Table 1, together with a
  classifier that maps a network model to the strongest applicable bound;
* the **decision-time bounds** for approximate consensus (Theorems 8–11);
* **indistinguishability** helpers (Lemmas 6, 7 and 14);
* **optimality / tightness** reports comparing measured algorithm performance
  against the bounds.
"""

from repro.core.adversary import (
    GreedyDiameterAdversary,
    LookaheadDiameterAdversary,
    PsiBlockAdversary,
    TwoAgentAdversary,
    worst_constant_suffixes,
)
from repro.core.contraction import (
    ContractionMeasurement,
    certified_rate_interval,
    fit_trace_rate,
    measure_contraction_rate,
    valency_contraction_trace,
    valency_contraction_trace_ensemble,
)
from repro.core.decision_times import (
    amortized_midpoint_decision_round,
    deaf_decision_time_lower_bound,
    decision_time_lower_bound,
    general_decision_time_lower_bound,
    midpoint_decision_round,
    psi_decision_time_lower_bound,
    two_agent_decision_round,
    two_agent_decision_time_lower_bound,
)
from repro.core.indistinguishability import (
    indistinguishable_agents,
    lemma6_holds,
    lemma14_holds,
)
from repro.core.lower_bounds import (
    LowerBound,
    alpha_diameter_lower_bound,
    amortized_midpoint_upper_bound,
    contraction_rate_lower_bound,
    deaf_graphs_lower_bound,
    midpoint_upper_bound,
    psi_lower_bound,
    round_based_crash_lower_bound,
    round_based_crash_upper_bound,
    two_agent_lower_bound,
    two_agent_upper_bound,
)
from repro.core.optimality import TightnessReport, tightness_report
from repro.core.valency import ValencyEstimate, ValencyEstimator

__all__ = [
    "ValencyEstimator",
    "ValencyEstimate",
    "ContractionMeasurement",
    "certified_rate_interval",
    "fit_trace_rate",
    "measure_contraction_rate",
    "valency_contraction_trace",
    "GreedyDiameterAdversary",
    "LookaheadDiameterAdversary",
    "TwoAgentAdversary",
    "PsiBlockAdversary",
    "worst_constant_suffixes",
    "LowerBound",
    "contraction_rate_lower_bound",
    "two_agent_lower_bound",
    "two_agent_upper_bound",
    "deaf_graphs_lower_bound",
    "midpoint_upper_bound",
    "psi_lower_bound",
    "amortized_midpoint_upper_bound",
    "alpha_diameter_lower_bound",
    "round_based_crash_lower_bound",
    "round_based_crash_upper_bound",
    "two_agent_decision_time_lower_bound",
    "deaf_decision_time_lower_bound",
    "psi_decision_time_lower_bound",
    "general_decision_time_lower_bound",
    "decision_time_lower_bound",
    "two_agent_decision_round",
    "midpoint_decision_round",
    "amortized_midpoint_decision_round",
    "indistinguishable_agents",
    "lemma6_holds",
    "lemma14_holds",
    "TightnessReport",
    "tightness_report",
]
