"""Guard a benchmark JSON against fast-path regressions.

Reads a ``BENCH_engine.json``-style file and fails (exit code 1) when any
entry that compares an old/new or loop/batched pair reports the new path more
than ``--max-slowdown`` times slower than the old one.  CI runs this on the
smoke benchmark so a fast-path regression cannot merge silently; the smoke
grids are tiny, so the threshold is a slack 2x rather than a tight bound.

Usage::

    python benchmarks/check_bench.py bench-smoke.json
    python benchmarks/check_bench.py bench-smoke.json --max-slowdown 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (old-timing key, new-timing key) pairs an entry may carry.  The
#: dense/chunked/packed reduction timings are deliberately NOT gated:
#: chunking and packing are memory-for-time tradeoffs measured at millisecond
#: scale, so a 2x wall-clock bound on a noisy CI runner would flake without
#: any code regression.
_TIMING_PAIRS = (
    ("old_s", "new_s"),
    ("loop_s", "batched_s"),
)

#: The repro.api facade must compile to a direct engine call plus negligible
#: dispatch; its entries are gated against a tight 5% bound instead of the
#: slack fast-path threshold.
_FACADE_PAIR = ("direct_s", "facade_s")
_FACADE_MAX_SLOWDOWN = 1.05

#: The sharded study service pays worker spawn + IPC + journal fsyncs that a
#: single-process Study never does, so its gate is a relative limit *plus* a
#: fixed allowance: ``service_s <= direct_s * limit + allowance``.  The
#: allowance absorbs the constant process-pool cost that dominates the tiny
#: smoke workload; the relative limit still catches a merge or serialization
#: path that starts recomputing shards.
_SERVICE_PAIR = ("direct_s", "service_s")
_SERVICE_MAX_SLOWDOWN = 4.0
_SERVICE_FIXED_ALLOWANCE_S = 5.0

#: The remote route pays HTTP round-trips, lease bookkeeping and SSE
#: telemetry instead of pipes; its worker threads also share the GIL where
#: the multiprocessing route gets real processes.  Same gate shape as the
#: service pair: ``remote_s <= mp_service_s * limit + allowance``, where
#: the allowance absorbs the constant server/poll costs that dominate a
#: smoke workload and the relative limit catches a dispatch loop that
#: starts stalling on its own stream or re-running cached shards.
_REMOTE_PAIR = ("mp_service_s", "remote_s")
_REMOTE_MAX_SLOWDOWN = 4.0
_REMOTE_FIXED_ALLOWANCE_S = 5.0

#: The campaign loop pays planning, novelty scoring, content-keyed corpus
#: writes and one fsync-ed journal append per round on top of executing the
#: same differential cases as a raw harness loop.  Like the service gate,
#: the bound is relative plus a fixed allowance: the allowance absorbs the
#: constant persistence cost that dominates a tiny smoke budget, while the
#: relative limit catches a campaign loop that starts re-executing or
#: re-minimizing cases it should not.
_CAMPAIGN_PAIR = ("harness_s", "campaign_s")
_CAMPAIGN_MAX_SLOWDOWN = 3.0
_CAMPAIGN_FIXED_ALLOWANCE_S = 1.0

#: Benchmark families whose batched path must *beat* its loop baseline by at
#: least this factor (a minimum speedup, not just an absence of slowdown).
#: Ensemble-scale certification stacks all B scenarios' sampled futures into
#: single passes; losing the stacking would silently degrade to the
#: per-scenario loop while still passing the slack slowdown check.  The
#: faulted ensemble applies its (B, n, n) fault masks to the whole stacked
#: adjacency per round; silently falling back to masking one scenario at a
#: time would likewise survive the slack check.
_MIN_SPEEDUPS = {"certify_ensemble": 5.0, "faulted_ensemble": 3.0}

#: The parallel backend must scale: at 4 workers on a B=256 workload the
#: sharded run must beat the serial run by at least this factor.  The gate
#: applies only where the entry's recorded ``cpu_count`` >= this many cores —
#: a 1-core container physically cannot parallelize, and fabricating its
#: numbers would be worse than skipping the gate — so dev boxes record honest
#: ~1x entries while CI's multi-core runners enforce the bound.
_PARALLEL_PAIR = ("serial_s", "parallel_s")
_PARALLEL_MIN_SPEEDUP = 2.0
_PARALLEL_MIN_CPUS = 4

#: The fused masked-extreme kernel saves a mask resolution; at minimum it
#: must never lose to two separate reductions by more than the slack
#: fast-path factor (the ``--max-slowdown`` bound applied to this pair).
_FUSED_PAIR = ("separate_s", "fused_s")

#: Benchmarks every payload must contain: the fast-path gate is meaningless
#: if a regression silently removes an entry, so missing families fail too.
#: The valency/contraction/alpha entries carry old_s/new_s and are therefore
#: gated by the slowdown check above as well.
_REQUIRED_BENCHMARKS = (
    "run_execution",
    "ensemble",
    "faulted_ensemble",
    "greedy_adversary",
    "psi_adversary",
    "adversarial_ensemble",
    "valency_estimation",
    "valency_streaming_memory",
    "certify_ensemble",
    "contraction_trace",
    "alpha_classes",
    "masked_reduction_memory",
    "packed_masked_reduction",
    "facade_overhead",
    "service_overhead",
    "remote_service",
    "campaign_round",
    "parallel_ensemble",
    "fused_reduction",
)


def _entry_detail(entry: dict) -> str:
    return ", ".join(
        f"{key}={entry[key]}"
        for key in (
            "route", "algorithm", "impl", "n", "B", "rounds", "model_size",
            "d", "seed", "budget", "threads", "cpu_count",
        )
        if key in entry
    )


def check(payload: dict, max_slowdown: float, facade_max_slowdown: float = _FACADE_MAX_SLOWDOWN) -> list:
    """Return a list of human-readable violations found in ``payload``."""
    violations = []
    present = {entry.get("benchmark") for entry in payload.get("results", [])}
    for name in _REQUIRED_BENCHMARKS:
        if name not in present:
            violations.append(f"required benchmark family {name!r} is missing")
    for entry in payload.get("results", []):
        for old_key, new_key in _TIMING_PAIRS:
            if old_key not in entry or new_key not in entry:
                continue
            old_s, new_s = entry[old_key], entry[new_key]
            if old_s <= 0:
                continue
            slowdown = new_s / old_s
            if slowdown > max_slowdown:
                label = entry.get("benchmark", "?")
                violations.append(
                    f"{label} ({_entry_detail(entry)}): {new_key}={new_s:.6f}s is "
                    f"{slowdown:.2f}x slower than {old_key}={old_s:.6f}s "
                    f"(limit {max_slowdown:.2f}x)"
                )
        family = entry.get("benchmark")
        min_speedup = _MIN_SPEEDUPS.get(family)
        if min_speedup is not None and "loop_s" in entry and "batched_s" in entry:
            loop_s, batched_s = entry["loop_s"], entry["batched_s"]
            speedup = loop_s / batched_s if batched_s > 0 else float("inf")
            if speedup < min_speedup:
                violations.append(
                    f"{family} ({_entry_detail(entry)}): batched_s={batched_s:.6f}s is "
                    f"only {speedup:.2f}x faster than loop_s={loop_s:.6f}s "
                    f"(required >= {min_speedup:.1f}x)"
                )
        serial_key, parallel_key = _PARALLEL_PAIR
        if serial_key in entry and parallel_key in entry:
            serial_s, parallel_s = entry[serial_key], entry[parallel_key]
            cpu_count = entry.get("cpu_count", 0)
            threads = entry.get("threads", 1)
            speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
            if (
                cpu_count >= _PARALLEL_MIN_CPUS
                and threads >= _PARALLEL_MIN_CPUS
                and speedup < _PARALLEL_MIN_SPEEDUP
            ):
                violations.append(
                    f"parallel_ensemble ({_entry_detail(entry)}): "
                    f"{parallel_key}={parallel_s:.6f}s is only {speedup:.2f}x faster "
                    f"than {serial_key}={serial_s:.6f}s at threads={threads} on a "
                    f"{cpu_count}-core machine (required >= {_PARALLEL_MIN_SPEEDUP:.1f}x)"
                )
            elif cpu_count < _PARALLEL_MIN_CPUS and speedup > max_slowdown:
                # A 1-core box cannot legitimately report parallel scaling;
                # a large "speedup" there means the serial side mismeasured.
                violations.append(
                    f"parallel_ensemble ({_entry_detail(entry)}): implausible "
                    f"{speedup:.2f}x speedup recorded on a {cpu_count}-core machine"
                )
        separate_key, fused_key = _FUSED_PAIR
        if separate_key in entry and fused_key in entry:
            separate_s, fused_s = entry[separate_key], entry[fused_key]
            if separate_s > 0 and fused_s / separate_s > max_slowdown:
                violations.append(
                    f"fused_reduction ({_entry_detail(entry)}): "
                    f"{fused_key}={fused_s:.6f}s is {fused_s / separate_s:.2f}x slower "
                    f"than {separate_key}={separate_s:.6f}s (limit {max_slowdown:.2f}x)"
                )
        direct_key, service_key = _SERVICE_PAIR
        if direct_key in entry and service_key in entry:
            direct_s, service_s = entry[direct_key], entry[service_key]
            budget = direct_s * _SERVICE_MAX_SLOWDOWN + _SERVICE_FIXED_ALLOWANCE_S
            if service_s > budget:
                violations.append(
                    f"service_overhead ({_entry_detail(entry)}): "
                    f"{service_key}={service_s:.6f}s exceeds "
                    f"{direct_key}={direct_s:.6f}s * {_SERVICE_MAX_SLOWDOWN:.1f} "
                    f"+ {_SERVICE_FIXED_ALLOWANCE_S:.1f}s allowance "
                    f"(= {budget:.6f}s)"
                )
        mp_key, remote_key = _REMOTE_PAIR
        if mp_key in entry and remote_key in entry:
            mp_s, remote_s = entry[mp_key], entry[remote_key]
            budget = mp_s * _REMOTE_MAX_SLOWDOWN + _REMOTE_FIXED_ALLOWANCE_S
            if remote_s > budget:
                violations.append(
                    f"remote_service ({_entry_detail(entry)}): "
                    f"{remote_key}={remote_s:.6f}s exceeds "
                    f"{mp_key}={mp_s:.6f}s * {_REMOTE_MAX_SLOWDOWN:.1f} "
                    f"+ {_REMOTE_FIXED_ALLOWANCE_S:.1f}s allowance "
                    f"(= {budget:.6f}s)"
                )
        harness_key, campaign_key = _CAMPAIGN_PAIR
        if harness_key in entry and campaign_key in entry:
            harness_s, campaign_s = entry[harness_key], entry[campaign_key]
            budget = harness_s * _CAMPAIGN_MAX_SLOWDOWN + _CAMPAIGN_FIXED_ALLOWANCE_S
            if campaign_s > budget:
                violations.append(
                    f"campaign_round ({_entry_detail(entry)}): "
                    f"{campaign_key}={campaign_s:.6f}s exceeds "
                    f"{harness_key}={harness_s:.6f}s * {_CAMPAIGN_MAX_SLOWDOWN:.1f} "
                    f"+ {_CAMPAIGN_FIXED_ALLOWANCE_S:.1f}s allowance "
                    f"(= {budget:.6f}s)"
                )
        direct_key, facade_key = _FACADE_PAIR
        if direct_key in entry and facade_key in entry:
            direct_s, facade_s = entry[direct_key], entry[facade_key]
            if direct_s > 0:
                slowdown = facade_s / direct_s
                if slowdown > facade_max_slowdown:
                    violations.append(
                        f"facade_overhead ({_entry_detail(entry)}): "
                        f"{facade_key}={facade_s:.6f}s is {slowdown:.3f}x the direct "
                        f"engine call {direct_key}={direct_s:.6f}s "
                        f"(limit {facade_max_slowdown:.2f}x)"
                    )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="benchmark JSON file to check")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when a new/fast timing exceeds this multiple of the old one",
    )
    parser.add_argument(
        "--facade-max-slowdown",
        type=float,
        default=_FACADE_MAX_SLOWDOWN,
        help="fail when the Study facade exceeds this multiple of the direct engine call",
    )
    args = parser.parse_args()

    payload = json.loads(Path(args.path).read_text())
    violations = check(payload, args.max_slowdown, args.facade_max_slowdown)
    checked = sum(
        1
        for entry in payload.get("results", [])
        if any(
            old in entry and new in entry
            for old, new in _TIMING_PAIRS
            + (_FACADE_PAIR, _SERVICE_PAIR, _REMOTE_PAIR, _CAMPAIGN_PAIR)
            + (_PARALLEL_PAIR, _FUSED_PAIR)
        )
    )
    if violations:
        print(f"FAIL: {len(violations)} fast-path slowdown(s) in {args.path}:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"OK: {checked} compared entries in {args.path} within {args.max_slowdown}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
