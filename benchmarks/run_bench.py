"""Benchmark harness: per-agent path vs vectorized fast path vs batched ensembles.

Times the synchronous engine's two execution paths on an ``(n, rounds)``
grid, the batched ensemble runner against an equivalent loop of single
executions on a ``(B, n, rounds)`` grid, the adversaries' batched candidate
evaluation against the per-graph reference loop, the batched adversarial
ensemble runner, the certification engine (batched valency estimation,
contraction traces and packed α-class computation against their per-sequence
/ per-pair reference loops, plus a tracemalloc assertion that the streamed
prefix enumeration stays below the materialized pass), the peak memory of
the chunked vs dense vs packed masked reductions (tracemalloc), and the
asynchronous ``agreement_time`` sweep, then writes the results to
``BENCH_engine.json`` so the performance trajectory is tracked from PR to
PR.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_bench.py            # full grid
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # tiny CI grid
    PYTHONPATH=src python benchmarks/run_bench.py --out path/to.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import MeanAlgorithm, MidpointAlgorithm
from repro.algorithms.base import (
    masked_extreme_pair,
    masked_max,
    masked_min,
    masked_min_max,
    masked_reduction_chunks,
    masked_reduction_impl,
)
from repro.api import Study
from repro.asynchrony import AsynchronousSimulator, RoundBasedAsyncAlgorithm
from repro.core.adversary import GreedyDiameterAdversary
from repro.core.contraction import valency_contraction_trace
from repro.core.valency import ValencyEstimator
from repro.execution import (
    run_adversarial_ensemble,
    run_execution,
    run_pattern_ensemble,
)
from repro.faults import CrashSpec, FaultPlan
from repro.execution.engine import initial_configuration
from repro.graphs.families import (
    complete_graph,
    cycle_graph,
    deaf_variant,
    directed_star_graph,
    psi_family,
)
from repro.graphs.relations import alpha_classes, alpha_diameter, beta_classes
from repro.models.network_model import NetworkModel
from repro.models.patterns import PeriodicPattern
from repro.models.standard import deaf_model


def _best_of(callable_, repeats: int) -> float:
    """Wall-clock seconds of the fastest of ``repeats`` invocations."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _best_of_pair(callable_a, callable_b, repeats: int):
    """Interleaved best-of timings of two callables.

    Alternating a/b within each repeat exposes both measurements to the same
    machine conditions, so slow drift (CPU frequency, background load)
    cancels out of the ratio — essential for tight gates like the 5% facade
    bound, where sequential windows can drift apart by more than the gate.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        callable_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _peak_bytes(callable_) -> int:
    """tracemalloc peak allocation of one invocation, in bytes."""
    tracemalloc.start()
    try:
        callable_()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def _pattern(n: int) -> PeriodicPattern:
    return PeriodicPattern([complete_graph(n), cycle_graph(n), directed_star_graph(n)])


def _initial_values(n: int, d: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=(n, d))


def bench_engine(grid, d: int, repeats: int) -> list:
    """Old (per-agent) vs new (vectorized) ``run_execution`` timings."""
    results = []
    for algorithm_factory in (MidpointAlgorithm, MeanAlgorithm):
        for n, rounds in grid:
            algorithm = algorithm_factory()
            values = _initial_values(n, d)
            pattern = _pattern(n)
            old_s = _best_of(
                lambda: run_execution(algorithm, values, pattern, rounds, use_fast_path=False),
                repeats,
            )
            new_s = _best_of(
                lambda: run_execution(algorithm, values, pattern, rounds, use_fast_path=True),
                repeats,
            )
            entry = {
                "benchmark": "run_execution",
                "algorithm": algorithm.name,
                "n": n,
                "rounds": rounds,
                "d": d,
                "old_s": old_s,
                "new_s": new_s,
                "speedup": old_s / new_s if new_s > 0 else float("inf"),
            }
            results.append(entry)
            print(
                f"run_execution {algorithm.name:10s} n={n:4d} rounds={rounds:4d} d={d} "
                f"old={old_s * 1e3:9.2f}ms new={new_s * 1e3:9.2f}ms speedup={entry['speedup']:7.1f}x"
            )
    return results


def bench_ensemble(grid, d: int, repeats: int) -> list:
    """Batched ensemble vs an equivalent loop of fast-path single executions."""
    results = []
    algorithm = MidpointAlgorithm()
    for batch_size, n, rounds in grid:
        values = np.stack([_initial_values(n, d, seed=b) for b in range(batch_size)])
        pattern = _pattern(n)
        loop_s = _best_of(
            lambda: [
                run_execution(algorithm, values[b], pattern, rounds, record_every=rounds or 1)
                for b in range(batch_size)
            ],
            repeats,
        )
        batch_s = _best_of(
            lambda: run_pattern_ensemble(
                algorithm, values, pattern, rounds, record_every=rounds or 1
            ),
            repeats,
        )
        peak_mem = _peak_bytes(
            lambda: run_pattern_ensemble(
                algorithm, values, pattern, rounds, record_every=rounds or 1
            )
        )
        entry = {
            "benchmark": "ensemble",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "rounds": rounds,
            "d": d,
            "loop_s": loop_s,
            "batched_s": batch_s,
            "speedup": loop_s / batch_s if batch_s > 0 else float("inf"),
            "peak_mem_bytes": peak_mem,
        }
        results.append(entry)
        print(
            f"ensemble      {algorithm.name:10s} B={batch_size:4d} n={n:4d} rounds={rounds:4d} "
            f"loop={loop_s * 1e3:9.2f}ms batched={batch_s * 1e3:9.2f}ms "
            f"speedup={entry['speedup']:7.1f}x peak={peak_mem / 1e6:7.1f}MB"
        )
    return results


def bench_faulted_ensemble(grid, d: int, repeats: int) -> list:
    """Vectorized fault-mask ensemble vs the per-scenario faulted loop.

    Both toggles consume the same seed-deterministic :class:`FaultPlan`
    (message drops plus an unclean crash), so the masked adjacencies — and
    the recorded outputs — are bit-for-bit identical
    (tests/test_fuzz_equivalence.py); only the execution strategy differs.
    ``batched_s`` applies the ``(B, n, n)`` fault masks to the whole stacked
    adjacency per round, ``loop_s`` masks and runs one scenario at a time.
    """
    results = []
    algorithm = MidpointAlgorithm()
    plan = FaultPlan(
        drop=0.15,
        crashes=(CrashSpec(agent=0, round=3, final_recipients=frozenset({1})),),
        f=2,
        seed=7,
        enforce_model=False,
    )
    for batch_size, n, rounds in grid:
        values = np.stack([_initial_values(n, d, seed=b) for b in range(batch_size)])
        pattern = _pattern(n)
        loop_s = _best_of(
            lambda: run_pattern_ensemble(
                algorithm, values, pattern, rounds,
                record_every=rounds or 1, use_batch=False, fault_plan=plan,
            ),
            repeats,
        )
        batch_s = _best_of(
            lambda: run_pattern_ensemble(
                algorithm, values, pattern, rounds,
                record_every=rounds or 1, use_batch=True, fault_plan=plan,
            ),
            repeats,
        )
        entry = {
            "benchmark": "faulted_ensemble",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "rounds": rounds,
            "d": d,
            "drop": plan.drop,
            "crashes": len(plan.crashes),
            "loop_s": loop_s,
            "batched_s": batch_s,
            "speedup": loop_s / batch_s if batch_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"faulted-ens   {algorithm.name:10s} B={batch_size:4d} n={n:4d} rounds={rounds:4d} "
            f"loop={loop_s * 1e3:9.2f}ms batched={batch_s * 1e3:9.2f}ms "
            f"speedup={entry['speedup']:7.1f}x"
        )
    return results


def bench_parallel_ensemble(grid, d: int, repeats: int) -> list:
    """Serial vs B-axis-sharded ensemble (the ``threads`` backend).

    Both runs execute the identical stacked array program — sharding only
    slices the scenario axis across a worker pool — so the entry records the
    machine's ``cpu_count`` next to the speedup: ``check_bench.py`` enforces
    the >=2x @ 4-thread gate only where ``cpu_count`` >= 4, letting 1-core
    dev boxes record honest (~1x) numbers without failing the gate.
    """
    from repro.config import EngineConfig

    results = []
    algorithm = MidpointAlgorithm()
    cpu_count = os.cpu_count() or 1
    for batch_size, n, rounds, threads in grid:
        values = np.stack([_initial_values(n, d, seed=b) for b in range(batch_size)])
        pattern = _pattern(n)

        def serial():
            return run_pattern_ensemble(
                algorithm, values, pattern, rounds, record_every=rounds or 1
            )

        def parallel():
            with EngineConfig(threads=threads):
                return run_pattern_ensemble(
                    algorithm, values, pattern, rounds, record_every=rounds or 1
                )

        serial_s, parallel_s = _best_of_pair(serial, parallel, repeats)
        entry = {
            "benchmark": "parallel_ensemble",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "rounds": rounds,
            "d": d,
            "threads": threads,
            "cpu_count": cpu_count,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"parallel-ens  {algorithm.name:10s} B={batch_size:4d} n={n:4d} rounds={rounds:4d} "
            f"threads={threads} cpus={cpu_count} "
            f"serial={serial_s * 1e3:9.2f}ms parallel={parallel_s * 1e3:9.2f}ms "
            f"speedup={entry['speedup']:5.2f}x"
        )
    return results


def bench_fused_reduction(grid, repeats: int) -> list:
    """Fused ``masked_extreme_pair`` vs two independent masked reductions.

    The fused kernel resolves the receive mask once for min-on-A /
    max-on-B (the amortized midpoint's per-round pattern); the separate
    timing pays two resolutions.  Both sides are measured on the dense and
    packed implementations.
    """
    results = []
    for batch_size, n, d in grid:
        rng = np.random.default_rng(5)
        mins = rng.uniform(-1.0, 1.0, size=(batch_size, n, d))
        maxs = rng.uniform(-1.0, 1.0, size=(batch_size, n, d))
        adjacency = rng.random((batch_size, n, n)) < 0.3
        adjacency[..., np.arange(n), np.arange(n)] = True
        for impl in ("dense", "packed"):
            with masked_reduction_impl(impl):
                separate_s, fused_s = _best_of_pair(
                    lambda: (masked_min(adjacency, mins), masked_max(adjacency, maxs)),
                    lambda: masked_extreme_pair(adjacency, mins, maxs),
                    repeats,
                )
            entry = {
                "benchmark": "fused_reduction",
                "impl": impl,
                "B": batch_size,
                "n": n,
                "d": d,
                "separate_s": separate_s,
                "fused_s": fused_s,
                "speedup": separate_s / fused_s if fused_s > 0 else float("inf"),
            }
            results.append(entry)
            print(
                f"fused-reduce  {impl:10s} B={batch_size:4d} n={n:4d} d={d} "
                f"separate={separate_s * 1e3:9.2f}ms fused={fused_s * 1e3:9.2f}ms "
                f"speedup={entry['speedup']:5.2f}x"
            )
    return results


def _deaf_submodel(n: int, model_size: int) -> NetworkModel:
    """The first ``model_size`` deaf variants of ``K_n`` (a worst-case model)."""
    base = complete_graph(n)
    return NetworkModel(
        [deaf_variant(base, agent) for agent in range(model_size)],
        name=f"deaf{model_size}(K_{n})",
    )


class _TimedPattern:
    """Wrap a communication pattern, accumulating wall-clock time in graph_at.

    The adversaries do all candidate evaluation inside ``choose`` (called by
    ``graph_at``), so this isolates candidate-evaluation time from the
    engine's committed transitions.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.seconds = 0.0

    def reset(self) -> None:
        self._inner.reset()

    def graph_at(self, round_number, context=None):
        start = time.perf_counter()
        graph = self._inner.graph_at(round_number, context)
        self.seconds += time.perf_counter() - start
        return graph


def _timed_choose(algorithm, values, adversary, rounds, use_fast_path, repeats) -> float:
    """Best-of-``repeats`` seconds spent in the adversary's choose() calls."""
    best = float("inf")
    for _ in range(repeats):
        timed = _TimedPattern(adversary)
        run_execution(algorithm, values, timed, rounds, use_fast_path=use_fast_path)
        best = min(best, timed.seconds)
    return best


def bench_adversary(grid, repeats: int) -> list:
    """Batched vs per-graph candidate evaluation of the greedy adversary.

    Three candidate-evaluation regimes are timed (seconds spent inside the
    adversary's ``choose`` calls; all three make identical graph choices):

    * ``old_s`` — the per-graph loop on the per-agent reference path (one
      ``simulate_outputs`` per candidate, per-agent dict rounds), the
      pre-vectorization baseline;
    * ``fastpath_loop_s`` — the same per-graph loop with vectorized
      single-candidate simulations;
    * ``new_s`` — all ``|N|`` candidates evaluated as one stacked
      ``(C, n, n)`` adjacency pass through the batch hooks.
    """
    results = []
    algorithm = MidpointAlgorithm()
    for n, model_size, rounds in grid:
        model = _deaf_submodel(n, model_size)
        values = _initial_values(n, 1)
        old_s = _timed_choose(
            algorithm, values, GreedyDiameterAdversary(model, use_batch=False),
            rounds, False, repeats,
        )
        fastpath_loop_s = _timed_choose(
            algorithm, values, GreedyDiameterAdversary(model, use_batch=False),
            rounds, True, repeats,
        )
        new_s = _timed_choose(
            algorithm, values, GreedyDiameterAdversary(model, use_batch=True),
            rounds, True, repeats,
        )
        entry = {
            "benchmark": "greedy_adversary",
            "algorithm": algorithm.name,
            "n": n,
            "model_size": model_size,
            "rounds": rounds,
            "d": 1,
            "old_s": old_s,
            "fastpath_loop_s": fastpath_loop_s,
            "new_s": new_s,
            "speedup": old_s / new_s if new_s > 0 else float("inf"),
            "speedup_vs_fastpath_loop": (
                fastpath_loop_s / new_s if new_s > 0 else float("inf")
            ),
        }
        results.append(entry)
        print(
            f"greedy-adv    {algorithm.name:10s} n={n:4d} |N|={model_size:3d} rounds={rounds:4d} "
            f"old={old_s * 1e3:9.2f}ms loop={fastpath_loop_s * 1e3:8.2f}ms "
            f"new={new_s * 1e3:8.2f}ms speedup={entry['speedup']:7.1f}x "
            f"(vs fast loop {entry['speedup_vs_fastpath_loop']:.1f}x)"
        )
    return results


def bench_psi_adversary(grid, repeats: int) -> list:
    """Batched vs per-sequence block evaluation of the Theorem 3 adversary.

    The amortized midpoint carries state beyond its outputs, so the
    per-sequence reference loop replays each candidate ``σ`` block through
    ``run_from_configuration`` on the per-agent path — the pre-batching
    behaviour — while the batched adversary rolls all three blocks forward as
    stacked adjacency passes.
    """
    from repro.algorithms import AmortizedMidpointAlgorithm
    from repro.core.adversary import PsiBlockAdversary

    results = []
    for n, rounds in grid:
        algorithm = AmortizedMidpointAlgorithm()
        values = _initial_values(n, 1)
        old_s = _timed_choose(
            algorithm, values, PsiBlockAdversary(n, use_batch=False),
            rounds, None, repeats,
        )
        new_s = _timed_choose(
            algorithm, values, PsiBlockAdversary(n, use_batch=True),
            rounds, None, repeats,
        )
        entry = {
            "benchmark": "psi_adversary",
            "algorithm": algorithm.name,
            "n": n,
            "rounds": rounds,
            "d": 1,
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / new_s if new_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"psi-adv       {algorithm.name:18s} n={n:4d} rounds={rounds:4d} "
            f"old={old_s * 1e3:9.2f}ms new={new_s * 1e3:9.2f}ms speedup={entry['speedup']:7.1f}x"
        )
    return results


def bench_adversarial_ensemble(grid, repeats: int) -> list:
    """Batched adversarial ensemble vs a loop of per-scenario adversarial runs."""
    results = []
    algorithm = MidpointAlgorithm()
    for batch_size, n, model_size, rounds in grid:
        model = _deaf_submodel(n, model_size)
        values = np.stack([_initial_values(n, 1, seed=b) for b in range(batch_size)])
        loop_s = _best_of(
            lambda: [
                run_execution(
                    algorithm, values[b], GreedyDiameterAdversary(model), rounds,
                    record_every=rounds or 1,
                )
                for b in range(batch_size)
            ],
            repeats,
        )
        batch_s = _best_of(
            lambda: run_adversarial_ensemble(
                algorithm, values, GreedyDiameterAdversary(model), rounds,
                record_every=rounds or 1,
            ),
            repeats,
        )
        entry = {
            "benchmark": "adversarial_ensemble",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "model_size": model_size,
            "rounds": rounds,
            "d": 1,
            "loop_s": loop_s,
            "batched_s": batch_s,
            "speedup": loop_s / batch_s if batch_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"adv-ensemble  {algorithm.name:10s} B={batch_size:4d} n={n:4d} |N|={model_size:3d} "
            f"rounds={rounds:4d} loop={loop_s * 1e3:9.2f}ms batched={batch_s * 1e3:9.2f}ms "
            f"speedup={entry['speedup']:7.1f}x"
        )
    return results


def bench_reduction_memory(batch_size: int, n: int, d: int) -> list:
    """Peak memory of one batched midpoint round: dense vs chunked reductions."""
    algorithm = MidpointAlgorithm()
    values = np.stack([_initial_values(n, d, seed=b) for b in range(batch_size)])
    base = complete_graph(n)
    adjacency = np.stack(
        [deaf_variant(base, b % n).adjacency for b in range(batch_size)]
    )

    def one_round():
        # Pin the np.where implementation: this entry isolates the effect of
        # chunking, not of the packed-bit path (benchmarked separately).
        with masked_reduction_impl("dense"):
            algorithm.batch_transition(values, adjacency, 1)

    with masked_reduction_chunks(batch="dense", receivers="dense"):
        dense_peak = _peak_bytes(one_round)
        dense_s = _best_of(one_round, 3)
    with masked_reduction_chunks(batch="auto", receivers="auto"):
        chunked_peak = _peak_bytes(one_round)
        chunked_s = _best_of(one_round, 3)
    entry = {
        "benchmark": "masked_reduction_memory",
        "algorithm": algorithm.name,
        "B": batch_size,
        "n": n,
        "d": d,
        "dense_peak_bytes": dense_peak,
        "chunked_peak_bytes": chunked_peak,
        "memory_ratio": dense_peak / chunked_peak if chunked_peak else float("inf"),
        "dense_s": dense_s,
        "chunked_s": chunked_s,
    }
    print(
        f"reduction-mem midpoint   B={batch_size:4d} n={n:4d} d={d} "
        f"dense={dense_peak / 1e6:7.1f}MB chunked={chunked_peak / 1e6:7.1f}MB "
        f"ratio={entry['memory_ratio']:5.1f}x (dense={dense_s * 1e3:.2f}ms, "
        f"chunked={chunked_s * 1e3:.2f}ms)"
    )
    return [entry]


def bench_valency(grid, repeats: int) -> list:
    """Batched valency estimation vs the per-sequence reference loop.

    ``old_s`` runs one ``run_from_configuration`` per sampled future (the
    pre-certification-engine behaviour); ``new_s`` stacks all futures of each
    exploration depth into one scenario ensemble.  Both produce bit-for-bit
    identical ``ValencyEstimate`` bounds (tests/test_valency_batch.py).
    """
    results = []
    algorithm = MidpointAlgorithm()
    for n, depth, suffix_rounds in grid:
        model = deaf_model(n=n)
        configuration = initial_configuration(algorithm, np.linspace(0.0, 1.0, n))
        reference = ValencyEstimator(
            algorithm, model, suffix_rounds=suffix_rounds, exploration_depth=depth,
            use_batch=False,
        )
        batched = ValencyEstimator(
            algorithm, model, suffix_rounds=suffix_rounds, exploration_depth=depth,
        )
        old_s = _best_of(lambda: reference.limit_estimates(configuration), repeats)
        new_s = _best_of(lambda: batched.limit_estimates(configuration), repeats)
        futures = sum(len(model) ** level for level in range(depth + 1)) * len(model)
        entry = {
            "benchmark": "valency_estimation",
            "algorithm": algorithm.name,
            "n": n,
            "depth": depth,
            "suffix_rounds": suffix_rounds,
            "futures": futures,
            "d": 1,
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / new_s if new_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"valency       {algorithm.name:10s} n={n:4d} depth={depth} K={futures:5d} "
            f"old={old_s * 1e3:9.2f}ms new={new_s * 1e3:9.2f}ms speedup={entry['speedup']:7.1f}x"
        )
    return results


def bench_valency_memory(n: int, depth: int, suffix_rounds: int) -> list:
    """Peak memory of the streamed prefix enumeration vs one materialized pass.

    Asserts (tracemalloc) that streaming the exhaustive ``|N|^depth`` prefix
    product in bounded chunks keeps peak allocation strictly below the
    single-pass run that stacks every future at once — the whole point of the
    chunked enumeration.
    """
    algorithm = MidpointAlgorithm()
    model = deaf_model(n=n)
    configuration = initial_configuration(algorithm, np.linspace(0.0, 1.0, n))
    futures = sum(len(model) ** d for d in range(depth + 1)) * len(model)
    streamed = ValencyEstimator(
        algorithm, model, suffix_rounds=suffix_rounds, exploration_depth=depth,
        scenario_chunk=128,
    )
    materialized = ValencyEstimator(
        algorithm, model, suffix_rounds=suffix_rounds, exploration_depth=depth,
        scenario_chunk=max(futures, 128),
    )
    streamed_peak = _peak_bytes(lambda: streamed.limit_estimates(configuration))
    materialized_peak = _peak_bytes(lambda: materialized.limit_estimates(configuration))
    assert streamed_peak < materialized_peak, (
        f"streamed prefix enumeration peaked at {streamed_peak} bytes, not below the "
        f"materialized pass ({materialized_peak} bytes)"
    )
    entry = {
        "benchmark": "valency_streaming_memory",
        "algorithm": algorithm.name,
        "n": n,
        "depth": depth,
        "suffix_rounds": suffix_rounds,
        "futures": futures,
        "streamed_peak_bytes": streamed_peak,
        "materialized_peak_bytes": materialized_peak,
        "memory_ratio": materialized_peak / streamed_peak if streamed_peak else float("inf"),
    }
    print(
        f"valency-mem   {algorithm.name:10s} n={n:4d} depth={depth} K={futures:5d} "
        f"streamed={streamed_peak / 1e6:7.2f}MB materialized={materialized_peak / 1e6:7.2f}MB "
        f"ratio={entry['memory_ratio']:5.1f}x"
    )
    return [entry]


def bench_certify_ensemble(grid, repeats: int) -> list:
    """Ensemble-scale certification vs a loop of per-scenario valency traces.

    ``loop_s`` certifies a recorded ``(B, n, d)`` ensemble one scenario at a
    time — the pre-ensemble behaviour of ``Study(certify=...)``, each trace
    itself batched — while ``batched_s`` stacks all ``B`` scenarios' sampled
    futures into single ensemble passes through
    ``ValencyEstimator.certify_ensemble``.  Both produce bit-for-bit
    identical per-scenario certificates (tests/test_certify_ensemble.py).

    The workload is the stateful batch-state restore path (amortized
    midpoint over a deaf sub-model): per-scenario estimation runs one narrow
    ``(P·M, n, n)`` pass per recorded configuration there, so stacking ``B``
    scenarios per pass removes genuine per-pass overhead and
    ``check_bench.py`` gates the speedup at >= 5x.  (Round-invariant
    convex-combination algorithms already stack each scenario's R recorded
    configurations since PR 3; their per-scenario passes saturate the
    vectorized width at depth 2, leaving only modest stacking gains — the
    ensemble path's win there is API-level, not wall-clock.)
    """
    from repro.algorithms import AmortizedMidpointAlgorithm

    results = []
    algorithm = AmortizedMidpointAlgorithm()
    for batch_size, n, model_size, depth, suffix_rounds, rounds, record_every in grid:
        model = _deaf_submodel(n, model_size)
        values = np.stack([_initial_values(n, 1, seed=b) for b in range(batch_size)])
        ensemble = run_pattern_ensemble(
            algorithm, values, _pattern(n), rounds,
            record_every=record_every, record_states=True,
        )
        estimator = ValencyEstimator(
            algorithm, model, suffix_rounds=suffix_rounds, exploration_depth=depth
        )
        loop_s = _best_of(
            lambda: [
                estimator.trace(ensemble.scenario_configurations(b))
                for b in range(batch_size)
            ],
            repeats,
        )
        batch_s = _best_of(lambda: estimator.certify_ensemble(ensemble), repeats)
        futures = sum(len(model) ** level for level in range(depth + 1)) * len(model)
        entry = {
            "benchmark": "certify_ensemble",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "model_size": model_size,
            "depth": depth,
            "suffix_rounds": suffix_rounds,
            "rounds": rounds,
            "futures_per_config": futures,
            "d": 1,
            "loop_s": loop_s,
            "batched_s": batch_s,
            "speedup": loop_s / batch_s if batch_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"certify-ens   {algorithm.name:18s} B={batch_size:4d} n={n:4d} |N|={model_size} "
            f"depth={depth} K={futures:5d} loop={loop_s * 1e3:9.2f}ms "
            f"batched={batch_s * 1e3:9.2f}ms speedup={entry['speedup']:7.1f}x"
        )
    return results


def bench_contraction_trace(grid, repeats: int) -> list:
    """Batched vs reference valency-diameter traces along adversarial executions."""
    results = []
    algorithm = MidpointAlgorithm()
    for n, rounds, suffix_rounds in grid:
        model = deaf_model(n=n)
        values = np.linspace(0.0, 1.0, n)

        def trace(use_batch):
            return valency_contraction_trace(
                algorithm, model, GreedyDiameterAdversary(model), values, rounds,
                suffix_rounds=suffix_rounds, use_batch=use_batch,
            )

        old_s = _best_of(lambda: trace(False), repeats)
        new_s = _best_of(lambda: trace(True), repeats)
        entry = {
            "benchmark": "contraction_trace",
            "algorithm": algorithm.name,
            "n": n,
            "rounds": rounds,
            "suffix_rounds": suffix_rounds,
            "d": 1,
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / new_s if new_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"contraction   {algorithm.name:10s} n={n:4d} rounds={rounds:4d} "
            f"old={old_s * 1e3:9.2f}ms new={new_s * 1e3:9.2f}ms speedup={entry['speedup']:7.1f}x"
        )
    return results


def bench_alpha_classes(grid, repeats: int) -> list:
    """Packed α/β-class and α-diameter computation vs the per-pair reference."""
    results = []
    for family, n in grid:
        if family == "psi":
            graphs = psi_family(n)
        else:
            graphs = [deaf_variant(complete_graph(n), agent) for agent in range(n)]

        def analyses(use_packed):
            alpha_classes(graphs, use_packed=use_packed)
            beta_classes(graphs, use_packed=use_packed)
            alpha_diameter(graphs, use_packed=use_packed)

        old_s = _best_of(lambda: analyses(False), repeats)
        new_s = _best_of(lambda: analyses(True), repeats)
        entry = {
            "benchmark": "alpha_classes",
            "family": family,
            "n": n,
            "model_size": len(graphs),
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / new_s if new_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"alpha-classes {family:10s} n={n:4d} |N|={len(graphs):3d} "
            f"old={old_s * 1e3:9.2f}ms new={new_s * 1e3:9.2f}ms speedup={entry['speedup']:7.1f}x"
        )
    return results


def bench_packed_reduction(batch_size: int, n: int, d: int, repeats: int) -> list:
    """Packed-bit masked reductions vs dense/chunked and vs the sort-and-scan path.

    ``packed_s``/``dense_s`` time the general case (per-scenario values),
    ``scan_s`` the shared-values case the existing sort-and-scan covers.
    tracemalloc peaks are recorded; the timings are deliberately not gated
    (memory-for-time tradeoffs at millisecond scale flake on CI).
    """
    rng = np.random.default_rng(0)
    values = rng.uniform(-1.0, 1.0, size=(batch_size, n, d))
    base = complete_graph(n)
    adjacency = np.stack(
        [deaf_variant(base, b % n).adjacency for b in range(batch_size)]
    )
    shared_values = values[:1]

    def general(impl):
        with masked_reduction_impl(impl):
            masked_min_max(adjacency, values)

    def scan():
        with masked_reduction_impl("dense"):
            masked_min_max(adjacency, shared_values)

    dense_s = _best_of(lambda: general("dense"), repeats)
    packed_s = _best_of(lambda: general("packed"), repeats)
    scan_s = _best_of(scan, repeats)
    dense_peak = _peak_bytes(lambda: general("dense"))
    packed_peak = _peak_bytes(lambda: general("packed"))
    entry = {
        "benchmark": "packed_masked_reduction",
        "B": batch_size,
        "n": n,
        "d": d,
        "dense_s": dense_s,
        "packed_s": packed_s,
        "scan_shared_values_s": scan_s,
        "dense_peak_bytes": dense_peak,
        "packed_peak_bytes": packed_peak,
        "memory_ratio": dense_peak / packed_peak if packed_peak else float("inf"),
    }
    print(
        f"packed-reduce midpoint   B={batch_size:4d} n={n:4d} d={d} "
        f"dense={dense_s * 1e3:8.2f}ms packed={packed_s * 1e3:8.2f}ms "
        f"scan(shared)={scan_s * 1e3:8.2f}ms mem {dense_peak / 1e6:6.1f}->"
        f"{packed_peak / 1e6:6.1f}MB ({entry['memory_ratio']:.1f}x)"
    )
    return [entry]


def bench_facade(single_grid, ensemble_grid, repeats: int) -> list:
    """Dispatch overhead of the repro.api Study facade over direct engine calls.

    Every Study compiles to exactly one engine call, so the facade must cost
    no more than spec validation plus an EngineConfig context entry —
    ``check_bench.py`` gates ``facade_s`` within 5% of ``direct_s``.  The
    workloads are sized so one engine call dominates the timing (dispatch is
    ~microseconds against milliseconds of round execution).
    """
    results = []
    algorithm = MidpointAlgorithm()
    for n, rounds in single_grid:
        values = _initial_values(n, 1)
        pattern = _pattern(n)
        direct_s, facade_s = _best_of_pair(
            lambda: run_execution(algorithm, values, pattern, rounds),
            lambda: Study(
                algorithm=algorithm, initial_values=values, pattern=pattern, rounds=rounds
            ).run(),
            repeats,
        )
        entry = {
            "benchmark": "facade_overhead",
            "route": "run_execution",
            "algorithm": algorithm.name,
            "n": n,
            "rounds": rounds,
            "d": 1,
            "direct_s": direct_s,
            "facade_s": facade_s,
            "overhead": facade_s / direct_s if direct_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"facade        run_execution        n={n:4d} rounds={rounds:4d} "
            f"direct={direct_s * 1e3:8.2f}ms facade={facade_s * 1e3:8.2f}ms "
            f"overhead={entry['overhead']:6.3f}x"
        )
    for batch_size, n, rounds in ensemble_grid:
        values = np.stack([_initial_values(n, 1, seed=b) for b in range(batch_size)])
        pattern = _pattern(n)
        direct_s, facade_s = _best_of_pair(
            lambda: run_pattern_ensemble(algorithm, values, pattern, rounds),
            lambda: Study(
                algorithm=algorithm, initial_values=values, pattern=pattern, rounds=rounds
            ).run(),
            repeats,
        )
        entry = {
            "benchmark": "facade_overhead",
            "route": "run_pattern_ensemble",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "rounds": rounds,
            "d": 1,
            "direct_s": direct_s,
            "facade_s": facade_s,
            "overhead": facade_s / direct_s if direct_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"facade        run_pattern_ensemble B={batch_size:3d} n={n:4d} rounds={rounds:4d} "
            f"direct={direct_s * 1e3:8.2f}ms facade={facade_s * 1e3:8.2f}ms "
            f"overhead={entry['overhead']:6.3f}x"
        )
    return results


def bench_service(grid, repeats: int) -> list:
    """Dispatch cost of the sharded study service over a direct Study run.

    Three timings per workload: the single-process ``Study(...).run()``
    baseline, the sharded ``run_study_service`` run (worker spawn + IPC +
    journal appends), and a journal replay of the same run (every shard
    served from the checkpoint, no workers spawned).  ``check_bench.py``
    gates ``service_s`` against ``direct_s`` with a relative limit plus a
    fixed allowance — process spawn is a constant cost that dwarfs tiny
    smoke workloads but amortizes on real sweeps.
    """
    import tempfile

    from repro.service import run_study_service

    results = []
    algorithm = MidpointAlgorithm()
    for batch_size, n, rounds, workers, shard_size in grid:
        values = np.stack([_initial_values(n, 1, seed=b) for b in range(batch_size)])
        pattern = _pattern(n)
        kwargs = dict(
            algorithm=algorithm,
            initial_values=values,
            rounds=rounds,
            pattern=pattern,
        )
        direct_s = _best_of(lambda: Study(**kwargs).run(), repeats)
        service_s = _best_of(
            lambda: run_study_service(**kwargs, workers=workers, shard_size=shard_size),
            repeats,
        )
        with tempfile.TemporaryDirectory() as tmp:
            journal = str(Path(tmp) / "journal.jsonl")
            run_study_service(
                **kwargs, workers=workers, shard_size=shard_size, journal=journal
            )
            replay_s = _best_of(
                lambda: run_study_service(
                    **kwargs, workers=workers, shard_size=shard_size, journal=journal
                ),
                repeats,
            )
        entry = {
            "benchmark": "service_overhead",
            "route": "run_study_service",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "rounds": rounds,
            "d": 1,
            "workers": workers,
            "shard_size": shard_size,
            "direct_s": direct_s,
            "service_s": service_s,
            "replay_s": replay_s,
            "overhead": service_s / direct_s if direct_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"service       run_study_service    B={batch_size:3d} n={n:4d} rounds={rounds:4d} "
            f"workers={workers} direct={direct_s * 1e3:8.2f}ms "
            f"service={service_s * 1e3:8.2f}ms replay={replay_s * 1e3:8.2f}ms"
        )
    return results


def bench_remote_service(grid, repeats: int) -> list:
    """Remote-route dispatch cost over the local multiprocessing route.

    Each workload runs the identical sharded study twice: through the
    multiprocessing scheduler (``mp_service_s``) and through a loopback
    :class:`~repro.service.remote.JobQueueServer` with in-process worker
    threads (``remote_s``) — paying HTTP round-trips, lease bookkeeping,
    SSE telemetry and the shared result cache instead of pipes and process
    spawn.  ``check_bench.py`` gates ``remote_s`` against ``mp_service_s``
    with a relative limit plus a fixed allowance, the same shape as the
    ``service_overhead`` gate.
    """
    import threading

    from repro.service import run_study_service
    from repro.service.remote import JobQueueServer, RemoteConfig
    from repro.service.remote.worker import run_worker

    results = []
    algorithm = MidpointAlgorithm()
    for batch_size, n, rounds, workers, shard_size in grid:
        values = np.stack([_initial_values(n, 1, seed=b) for b in range(batch_size)])
        pattern = _pattern(n)
        kwargs = dict(
            algorithm=algorithm,
            initial_values=values,
            rounds=rounds,
            pattern=pattern,
        )
        mp_service_s = _best_of(
            lambda: run_study_service(**kwargs, workers=workers, shard_size=shard_size),
            repeats,
        )

        def remote_once():
            with JobQueueServer() as server:
                stop = threading.Event()
                for index in range(workers):
                    threading.Thread(
                        target=run_worker,
                        args=(server.url,),
                        kwargs=dict(
                            worker_id=f"bench-w{index}",
                            poll_interval=0.02,
                            stop_event=stop,
                        ),
                        daemon=True,
                    ).start()
                try:
                    run_study_service(
                        **kwargs,
                        shard_size=shard_size,
                        remote=RemoteConfig(
                            url=server.url, poll_interval=0.5, job_timeout=300.0
                        ),
                    )
                finally:
                    stop.set()

        remote_s = _best_of(remote_once, repeats)
        entry = {
            "benchmark": "remote_service",
            "route": "run_study_service[remote]",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "rounds": rounds,
            "d": 1,
            "workers": workers,
            "shard_size": shard_size,
            "mp_service_s": mp_service_s,
            "remote_s": remote_s,
            "overhead": remote_s / mp_service_s if mp_service_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"remote        run_study_service    B={batch_size:3d} n={n:4d} rounds={rounds:4d} "
            f"workers={workers} mp={mp_service_s * 1e3:8.2f}ms "
            f"remote={remote_s * 1e3:8.2f}ms overhead={entry['overhead']:6.2f}x"
        )
    return results


def bench_campaign(grid, repeats: int) -> list:
    """Campaign-loop overhead over a raw loop of the same differential cases.

    A single-round campaign over an empty corpus plans exactly the fresh
    generator draws of its planner, so both timings execute the identical
    case specs: ``harness_s`` runs them back to back with no persistence,
    ``campaign_s`` runs ``run_campaign`` into fresh corpus/journal
    directories — paying planning, novelty scoring, content-keyed corpus
    writes and the fsync-ed journal append on top.  ``check_bench.py``
    gates ``campaign_s`` against ``harness_s`` with a relative limit plus a
    fixed allowance for the constant persistence cost.
    """
    import tempfile

    from repro.campaign import build_case, execute_case, run_campaign
    from repro.campaign.campaign import _CAMPAIGN_NAMESPACE
    from repro.campaign.targets import TARGETS

    results = []
    targets = tuple(TARGETS)
    for seed, budget in grid:
        # Reconstruct the round's fresh draws (an empty corpus plans no
        # mutations), so the harness loop executes the campaign's cases.
        rng = np.random.default_rng((_CAMPAIGN_NAMESPACE, seed, 0))
        specs = [
            build_case(
                targets[int(rng.integers(len(targets)))],
                (seed * 1_000_003) * 10_000 + slot,
            )
            for slot in range(budget)
        ]
        harness_s = _best_of(lambda: [execute_case(spec) for spec in specs], repeats)

        def campaign_once():
            with tempfile.TemporaryDirectory() as tmp:
                run_campaign(
                    seed, budget, Path(tmp) / "corpus",
                    Path(tmp) / "journal.jsonl", batch_size=budget,
                )

        campaign_s = _best_of(campaign_once, repeats)
        entry = {
            "benchmark": "campaign_round",
            "seed": seed,
            "budget": budget,
            "harness_s": harness_s,
            "campaign_s": campaign_s,
            "overhead": campaign_s / harness_s if harness_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"campaign      round      seed={seed:4d} budget={budget:4d} "
            f"harness={harness_s * 1e3:9.2f}ms campaign={campaign_s * 1e3:9.2f}ms "
            f"overhead={entry['overhead']:6.2f}x"
        )
    return results


def bench_async(grid, repeats: int) -> list:
    """End-to-end async simulation + single-sweep agreement_time timings."""
    results = []
    for n, f, max_time in grid:
        values = _initial_values(n, 1).ravel()

        def run_once():
            simulator = AsynchronousSimulator(
                RoundBasedAsyncAlgorithm(MidpointAlgorithm()), values, f=f, max_time=max_time
            )
            execution = simulator.run()
            execution.agreement_time(1e-9)
            return execution

        total_s = _best_of(run_once, repeats)
        execution = run_once()
        entry = {
            "benchmark": "async_round_based",
            "n": n,
            "f": f,
            "max_time": max_time,
            "total_s": total_s,
            "samples": len(execution.samples),
            "delivered_messages": execution.delivered_messages,
        }
        results.append(entry)
        print(
            f"async         midpoint   n={n:4d} f={f} horizon={max_time:5.1f} "
            f"sim+agreement={total_s * 1e3:9.2f}ms samples={entry['samples']}"
        )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI smoke runs")
    parser.add_argument("--out", default="BENCH_engine.json", help="output JSON path")
    args = parser.parse_args()

    if args.smoke:
        engine_grid = [(8, 10)]
        ensemble_grid = [(8, 8, 10)]
        # Large enough that the per-round mask application amortizes over the
        # batch; the >=3x gate has real margin on the per-scenario loop.
        faulted_ensemble_grid = [(96, 16, 10)]
        adversary_grid = [(8, 4, 5)]
        psi_grid = [(8, 12)]
        adversarial_ensemble_grid = [(4, 8, 4, 5)]
        # Above the auto-chunk threshold (24*256*256 > 2^20 elements), so the
        # smoke run genuinely compares the dense and chunked code paths.
        memory_case = (24, 256, 1)
        valency_grid = [(6, 1, 20)]
        valency_memory_case = (6, 2, 10)
        # n=8 depth-2, small model: the per-scenario loop runs narrow
        # stateful passes, so the >=5x gate has real margin (~10x measured).
        certify_ensemble_grid = [(48, 8, 2, 2, 20, 6, 6)]
        contraction_grid = [(5, 4, 15)]
        alpha_grid = [("psi", 16), ("deaf", 12)]
        packed_reduction_case = (24, 256, 1)
        async_grid = [(4, 1, 6.0)]
        # Facade dispatch is ~microseconds; size the workloads so the engine
        # call dominates and the 5% gate measures dispatch, not noise.
        facade_single_grid = [(48, 120)]
        facade_ensemble_grid = [(8, 48, 100)]
        # Best-of-9 on the ~ms smoke workloads keeps the tight 5% facade gate
        # from flaking on noisy CI runners.
        facade_repeats = 9
        # One mid-size ensemble split across 2 workers: big enough that the
        # rounds dominate a shard, small enough for a CI runner.
        service_grid = [(16, 48, 60, 2, 8)]
        # Same workload through a loopback queue server with worker threads.
        remote_grid = [(16, 48, 60, 2, 8)]
        # One single-round campaign; the fixed allowance in check_bench.py
        # absorbs the corpus/journal fsyncs that dominate a tiny budget.
        campaign_grid = [(0, 8)]
        # The ISSUE acceptance workload shape: B=256 split over 4 workers.
        # Rounds are few so the whole smoke family stays ~ms-scale.
        parallel_grid = [(256, 16, 10, 4)]
        fused_grid = [(24, 256, 1)]
        repeats = 1
    else:
        engine_grid = [(16, 100), (64, 100), (64, 500), (256, 100)]
        ensemble_grid = [(16, 64, 100), (64, 64, 100), (256, 16, 100)]
        faulted_ensemble_grid = [(16, 64, 100), (64, 32, 100), (256, 16, 100)]
        adversary_grid = [(64, 8, 10), (64, 16, 10), (128, 8, 5)]
        psi_grid = [(34, 64), (66, 64)]
        adversarial_ensemble_grid = [(16, 32, 8, 20), (64, 32, 8, 20)]
        memory_case = (64, 256, 1)
        # The (8, 2, 60) case is the ISSUE 3 acceptance workload: n=8,
        # depth-2 exhaustive sampling, default suffix length.
        valency_grid = [(8, 2, 60), (16, 1, 60), (32, 0, 60)]
        valency_memory_case = (8, 3, 30)
        # The (96, 8, 3, 2, ...) case is the ISSUE 5 acceptance workload:
        # n=8, depth-2 exhaustive sampling, batched >= 5x the per-scenario
        # loop (~8x measured).
        certify_ensemble_grid = [(96, 8, 3, 2, 40, 12, 12), (48, 8, 2, 2, 60, 12, 12)]
        contraction_grid = [(8, 12, 40), (16, 12, 40)]
        alpha_grid = [("psi", 32), ("psi", 64), ("deaf", 32), ("deaf", 48)]
        packed_reduction_case = (64, 256, 1)
        async_grid = [(8, 2, 20.0), (16, 4, 12.0)]
        facade_single_grid = [(64, 100)]
        facade_ensemble_grid = [(16, 64, 100)]
        facade_repeats = 5
        service_grid = [(32, 64, 100, 4, 8), (64, 32, 100, 4, 8)]
        remote_grid = [(32, 64, 100, 4, 8)]
        campaign_grid = [(0, 16), (1, 32)]
        parallel_grid = [(256, 32, 50, 4), (256, 64, 20, 4)]
        fused_grid = [(64, 256, 1)]
        repeats = 3

    results = []
    results += bench_engine(engine_grid, d=1, repeats=repeats)
    if not args.smoke:
        results += bench_engine([(64, 100)], d=3, repeats=repeats)
    results += bench_ensemble(ensemble_grid, d=1, repeats=repeats)
    results += bench_faulted_ensemble(faulted_ensemble_grid, d=1, repeats=repeats)
    results += bench_parallel_ensemble(parallel_grid, d=1, repeats=repeats)
    results += bench_fused_reduction(fused_grid, repeats=repeats)
    results += bench_adversary(adversary_grid, repeats=repeats)
    results += bench_psi_adversary(psi_grid, repeats=repeats)
    results += bench_adversarial_ensemble(adversarial_ensemble_grid, repeats=repeats)
    results += bench_valency(valency_grid, repeats=repeats)
    results += bench_valency_memory(*valency_memory_case)
    results += bench_certify_ensemble(certify_ensemble_grid, repeats=repeats)
    results += bench_contraction_trace(contraction_grid, repeats=repeats)
    results += bench_alpha_classes(alpha_grid, repeats=repeats)
    results += bench_reduction_memory(*memory_case)
    results += bench_packed_reduction(*packed_reduction_case, repeats=repeats)
    results += bench_facade(facade_single_grid, facade_ensemble_grid, repeats=facade_repeats)
    results += bench_service(service_grid, repeats=repeats)
    results += bench_remote_service(remote_grid, repeats=repeats)
    results += bench_campaign(campaign_grid, repeats=repeats)
    results += bench_async(async_grid, repeats=repeats)

    payload = {
        "schema": "bench-engine/v1",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path} ({len(results)} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
