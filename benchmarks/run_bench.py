"""Benchmark harness: per-agent path vs vectorized fast path vs batched ensembles.

Times the synchronous engine's two execution paths on an ``(n, rounds)``
grid, the batched ensemble runner against an equivalent loop of single
executions on a ``(B, n, rounds)`` grid, and the asynchronous
``agreement_time`` sweep, then writes the results to ``BENCH_engine.json``
so the performance trajectory is tracked from PR to PR.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_bench.py            # full grid
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # tiny CI grid
    PYTHONPATH=src python benchmarks/run_bench.py --out path/to.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import MeanAlgorithm, MidpointAlgorithm
from repro.asynchrony import AsynchronousSimulator, RoundBasedAsyncAlgorithm
from repro.execution import run_execution, run_pattern_ensemble
from repro.graphs.families import complete_graph, cycle_graph, directed_star_graph
from repro.models.patterns import PeriodicPattern


def _best_of(callable_, repeats: int) -> float:
    """Wall-clock seconds of the fastest of ``repeats`` invocations."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _pattern(n: int) -> PeriodicPattern:
    return PeriodicPattern([complete_graph(n), cycle_graph(n), directed_star_graph(n)])


def _initial_values(n: int, d: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=(n, d))


def bench_engine(grid, d: int, repeats: int) -> list:
    """Old (per-agent) vs new (vectorized) ``run_execution`` timings."""
    results = []
    for algorithm_factory in (MidpointAlgorithm, MeanAlgorithm):
        for n, rounds in grid:
            algorithm = algorithm_factory()
            values = _initial_values(n, d)
            pattern = _pattern(n)
            old_s = _best_of(
                lambda: run_execution(algorithm, values, pattern, rounds, use_fast_path=False),
                repeats,
            )
            new_s = _best_of(
                lambda: run_execution(algorithm, values, pattern, rounds, use_fast_path=True),
                repeats,
            )
            entry = {
                "benchmark": "run_execution",
                "algorithm": algorithm.name,
                "n": n,
                "rounds": rounds,
                "d": d,
                "old_s": old_s,
                "new_s": new_s,
                "speedup": old_s / new_s if new_s > 0 else float("inf"),
            }
            results.append(entry)
            print(
                f"run_execution {algorithm.name:10s} n={n:4d} rounds={rounds:4d} d={d} "
                f"old={old_s * 1e3:9.2f}ms new={new_s * 1e3:9.2f}ms speedup={entry['speedup']:7.1f}x"
            )
    return results


def bench_ensemble(grid, d: int, repeats: int) -> list:
    """Batched ensemble vs an equivalent loop of fast-path single executions."""
    results = []
    algorithm = MidpointAlgorithm()
    for batch_size, n, rounds in grid:
        values = np.stack([_initial_values(n, d, seed=b) for b in range(batch_size)])
        pattern = _pattern(n)
        loop_s = _best_of(
            lambda: [
                run_execution(algorithm, values[b], pattern, rounds, record_every=rounds or 1)
                for b in range(batch_size)
            ],
            repeats,
        )
        batch_s = _best_of(
            lambda: run_pattern_ensemble(
                algorithm, values, pattern, rounds, record_every=rounds or 1
            ),
            repeats,
        )
        entry = {
            "benchmark": "ensemble",
            "algorithm": algorithm.name,
            "B": batch_size,
            "n": n,
            "rounds": rounds,
            "d": d,
            "loop_s": loop_s,
            "batched_s": batch_s,
            "speedup": loop_s / batch_s if batch_s > 0 else float("inf"),
        }
        results.append(entry)
        print(
            f"ensemble      {algorithm.name:10s} B={batch_size:4d} n={n:4d} rounds={rounds:4d} "
            f"loop={loop_s * 1e3:9.2f}ms batched={batch_s * 1e3:9.2f}ms "
            f"speedup={entry['speedup']:7.1f}x"
        )
    return results


def bench_async(grid, repeats: int) -> list:
    """End-to-end async simulation + single-sweep agreement_time timings."""
    results = []
    for n, f, max_time in grid:
        values = _initial_values(n, 1).ravel()

        def run_once():
            simulator = AsynchronousSimulator(
                RoundBasedAsyncAlgorithm(MidpointAlgorithm()), values, f=f, max_time=max_time
            )
            execution = simulator.run()
            execution.agreement_time(1e-9)
            return execution

        total_s = _best_of(run_once, repeats)
        execution = run_once()
        entry = {
            "benchmark": "async_round_based",
            "n": n,
            "f": f,
            "max_time": max_time,
            "total_s": total_s,
            "samples": len(execution.samples),
            "delivered_messages": execution.delivered_messages,
        }
        results.append(entry)
        print(
            f"async         midpoint   n={n:4d} f={f} horizon={max_time:5.1f} "
            f"sim+agreement={total_s * 1e3:9.2f}ms samples={entry['samples']}"
        )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI smoke runs")
    parser.add_argument("--out", default="BENCH_engine.json", help="output JSON path")
    args = parser.parse_args()

    if args.smoke:
        engine_grid = [(8, 10)]
        ensemble_grid = [(8, 8, 10)]
        async_grid = [(4, 1, 6.0)]
        repeats = 1
    else:
        engine_grid = [(16, 100), (64, 100), (64, 500), (256, 100)]
        ensemble_grid = [(16, 64, 100), (64, 64, 100), (256, 16, 100)]
        async_grid = [(8, 2, 20.0), (16, 4, 12.0)]
        repeats = 3

    results = []
    results += bench_engine(engine_grid, d=1, repeats=repeats)
    if not args.smoke:
        results += bench_engine([(64, 100)], d=3, repeats=repeats)
    results += bench_ensemble(ensemble_grid, d=1, repeats=repeats)
    results += bench_async(async_grid, repeats=repeats)

    payload = {
        "schema": "bench-engine/v1",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path} ({len(results)} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
