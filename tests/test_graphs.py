"""Unit tests for communication graphs: construction, accessors, memoization."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import (
    complete_graph,
    cycle_graph,
    deaf_family,
    directed_path_graph,
    directed_star_graph,
    psi_family,
    psi_graph,
    two_agent_graphs,
)
from repro.graphs.properties import is_nonsplit, is_rooted, is_strongly_connected, roots


class TestConstruction:
    def test_self_loops_are_forced(self):
        g = CommunicationGraph(3, edges=[(0, 1)])
        for i in range(3):
            assert g.has_edge(i, i)

    def test_edges_and_adjacency_are_mutually_exclusive(self):
        with pytest.raises(GraphError):
            CommunicationGraph(2, edges=[(0, 1)], adjacency=np.eye(2, dtype=bool))

    def test_adjacency_shape_is_checked(self):
        with pytest.raises(GraphError):
            CommunicationGraph(3, adjacency=np.eye(2, dtype=bool))

    def test_out_of_range_edge_raises(self):
        with pytest.raises(GraphError):
            CommunicationGraph(2, edges=[(0, 5)])

    def test_needs_at_least_one_agent(self):
        with pytest.raises(GraphError):
            CommunicationGraph(0)

    def test_adjacency_is_read_only(self):
        g = complete_graph(3)
        with pytest.raises(ValueError):
            g.adjacency[0, 1] = False


class TestNeighborhoods:
    def test_in_neighbors_include_self(self):
        g = CommunicationGraph(3, edges=[(0, 1), (2, 1)])
        assert g.in_neighbors(1) == frozenset({0, 1, 2})
        assert g.in_neighbors(0) == frozenset({0})

    def test_out_neighbors(self):
        g = CommunicationGraph(3, edges=[(0, 1), (0, 2)])
        assert g.out_neighbors(0) == frozenset({0, 1, 2})
        assert g.out_neighbors(1) == frozenset({1})

    def test_neighborhoods_are_memoized(self):
        g = complete_graph(4)
        assert g.in_neighbors(2) is g.in_neighbors(2)
        assert g.out_neighbors(1) is g.out_neighbors(1)

    def test_degrees_match_neighborhoods(self):
        g = cycle_graph(5)
        for j in g.agents():
            assert g.in_degree(j) == len(g.in_neighbors(j))
            assert g.out_degree(j) == len(g.out_neighbors(j))

    def test_deaf_agents(self):
        g = directed_star_graph(4, center=0)
        assert g.is_deaf(0)
        assert g.deaf_agents() == frozenset({0})


class TestDerivedGraphs:
    def test_make_deaf_removes_incoming_edges(self):
        g = complete_graph(3).make_deaf(1)
        assert g.in_neighbors(1) == frozenset({1})
        assert g.in_neighbors(0) == frozenset({0, 1, 2})

    def test_self_loop_cannot_be_removed(self):
        with pytest.raises(GraphError):
            complete_graph(2).remove_edge(0, 0)

    def test_transpose(self):
        g = directed_path_graph(3)
        t = g.transpose()
        assert t.has_edge(1, 0) and t.has_edge(2, 1)
        assert not t.has_edge(0, 1)

    def test_restricted_to_relabels(self):
        g = CommunicationGraph(4, edges=[(1, 3)])
        sub = g.restricted_to([1, 3])
        assert sub.n == 2
        assert sub.has_edge(0, 1)

    def test_equality_and_hash_ignore_name(self):
        a = complete_graph(3)
        b = a.with_name("other")
        assert a == b and hash(a) == hash(b)


class TestFamilies:
    def test_two_agent_graphs_are_rooted(self):
        for g in two_agent_graphs():
            assert is_rooted(g)

    def test_complete_graph_is_strongly_connected_and_nonsplit(self):
        g = complete_graph(4)
        assert is_strongly_connected(g)
        assert is_nonsplit(g)

    def test_deaf_family_has_one_graph_per_agent(self):
        family = deaf_family(complete_graph(4))
        assert len(family) == 4
        for agent, member in enumerate(family):
            assert member.in_neighbors(agent) == frozenset({agent})

    def test_psi_graphs_are_rooted_but_not_nonsplit(self):
        for g in psi_family(5):
            assert is_rooted(g)
            assert not is_nonsplit(g)

    def test_psi_graph_special_agent_is_deaf(self):
        g = psi_graph(5, 1)
        assert 1 in g.deaf_agents()

    def test_roots_of_star(self):
        assert roots(directed_star_graph(4, center=2)) == frozenset({2})
