"""Scalar-vs-vectorized equivalence: the two execution paths must agree.

Property-style tests over random graphs, dimensions d ∈ {1, 3} and every
fast-path algorithm, asserting that ``combine_all``/``batch_transition``
matches the per-agent ``combine``/``transition`` path:

* **bit-for-bit** for the order-independent min/max family (midpoint,
  amortized midpoint, two-agent thirds) — these use exactly the same
  floating-point operations on both paths;
* up to last-ulp summation-order differences (atol 1e-12) for the averaging
  family (mean, Hegselmann–Krause, self-weighted, callable weights), whose
  per-agent path sums values in dict order while the vectorized path uses
  masked reductions.
"""

import numpy as np
import pytest

from repro.algorithms import (
    AmortizedMidpointAlgorithm,
    CallableWeightAveraging,
    HegselmannKrauseAlgorithm,
    MeanAlgorithm,
    MidpointAlgorithm,
    SelfWeightedAveraging,
    TwoAgentThirdsAlgorithm,
)
from repro.algorithms.base import receive_mask
from repro.execution import run_execution
from repro.graphs.generators import random_nonsplit_graph, random_rooted_graph
from repro.models.patterns import PeriodicPattern

EXACT_ALGORITHMS = [
    MidpointAlgorithm,
    AmortizedMidpointAlgorithm,
]

AVERAGING_ALGORITHMS = [
    MeanAlgorithm,
    lambda: HegselmannKrauseAlgorithm(1.5),
    lambda: SelfWeightedAveraging(0.3),
]


def _random_graphs(n, seed, count=4):
    rng = np.random.default_rng(seed)
    graphs = []
    for k in range(count):
        if k % 2 == 0:
            graphs.append(random_nonsplit_graph(n, rng))
        else:
            graphs.append(random_rooted_graph(n, rng))
    return graphs


def _run_both(algorithm_factory, n, d, seed, rounds=9):
    rng = np.random.default_rng(seed)
    values = rng.uniform(-2.0, 2.0, size=(n, d))
    pattern = PeriodicPattern(_random_graphs(n, seed))
    slow = run_execution(algorithm_factory(), values, pattern, rounds, use_fast_path=False)
    fast = run_execution(algorithm_factory(), values, pattern, rounds, use_fast_path=True)
    return slow, fast


@pytest.mark.parametrize("algorithm_factory", EXACT_ALGORITHMS)
@pytest.mark.parametrize("d", [1, 3])
@pytest.mark.parametrize("n,seed", [(4, 11), (7, 23), (12, 47)])
def test_minmax_family_is_bit_for_bit_identical(algorithm_factory, d, n, seed):
    slow, fast = _run_both(algorithm_factory, n, d, seed)
    assert len(slow.configurations) == len(fast.configurations)
    for a, b in zip(slow.configurations, fast.configurations):
        assert a.round_number == b.round_number
        np.testing.assert_array_equal(a.outputs, b.outputs)


@pytest.mark.parametrize("algorithm_factory", AVERAGING_ALGORITHMS)
@pytest.mark.parametrize("d", [1, 3])
@pytest.mark.parametrize("n,seed", [(4, 5), (9, 17), (13, 31)])
def test_averaging_family_matches_to_last_ulp(algorithm_factory, d, n, seed):
    slow, fast = _run_both(algorithm_factory, n, d, seed)
    for a, b in zip(slow.configurations, fast.configurations):
        np.testing.assert_allclose(a.outputs, b.outputs, rtol=0.0, atol=1e-12)


@pytest.mark.parametrize("d", [1, 3])
def test_two_agent_thirds_is_bit_for_bit_identical(d):
    rng = np.random.default_rng(3)
    values = rng.uniform(-1.0, 1.0, size=(2, d))
    from repro.graphs.families import two_agent_graphs

    pattern = PeriodicPattern(list(two_agent_graphs()))
    slow = run_execution(TwoAgentThirdsAlgorithm(), values, pattern, 9, use_fast_path=False)
    fast = run_execution(TwoAgentThirdsAlgorithm(), values, pattern, 9, use_fast_path=True)
    for a, b in zip(slow.configurations, fast.configurations):
        np.testing.assert_array_equal(a.outputs, b.outputs)


@pytest.mark.parametrize("d", [1, 3])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_combine_all_matches_combine_directly(d, seed):
    """Single-round check: combine_all row j equals combine for receiver j."""
    n = 6
    rng = np.random.default_rng(seed)
    values = rng.uniform(-1.0, 1.0, size=(n, d))
    graph = random_nonsplit_graph(n, rng)
    for algorithm in [MidpointAlgorithm(), MeanAlgorithm(), HegselmannKrauseAlgorithm(1.0),
                      SelfWeightedAveraging(0.7)]:
        batched = algorithm.combine_all(graph.adjacency, values, 1)
        assert batched is not None and batched.shape == (n, d)
        for j in range(n):
            received = {i: values[i] for i in sorted(graph.in_neighbors(j))}
            expected = algorithm.combine(j, received, 1)
            np.testing.assert_allclose(batched[j], expected, rtol=0.0, atol=1e-12)


def test_callable_weights_fast_path_matches_scalar_weights():
    """The matrix weight function enables the fast path for callable weights."""
    n = 5

    def scalar_weights(agent_id, received):
        senders = sorted(received)
        return {sender: 1.0 / len(senders) for sender in senders}

    def matrix_weights(adjacency, values, round_number):
        mask = receive_mask(adjacency).astype(float)
        return mask / mask.sum(axis=-1, keepdims=True)

    slow_algo = CallableWeightAveraging(scalar_weights)
    fast_algo = CallableWeightAveraging(scalar_weights, matrix_weight_function=matrix_weights)
    assert not slow_algo.supports_batch()
    assert fast_algo.supports_batch()

    rng = np.random.default_rng(9)
    values = rng.uniform(size=(n, 2))
    pattern = PeriodicPattern(_random_graphs(n, seed=77))
    slow = run_execution(slow_algo, values, pattern, 6, use_fast_path=False)
    fast = run_execution(fast_algo, values, pattern, 6, use_fast_path=True)
    for a, b in zip(slow.configurations, fast.configurations):
        np.testing.assert_allclose(a.outputs, b.outputs, rtol=0.0, atol=1e-12)


def test_validate_flag_is_honored_on_the_fast_path():
    class Breaking(MidpointAlgorithm):
        def combine_all(self, adjacency, values, round_number):
            return super().combine_all(adjacency, values, round_number) + 100.0

    from repro.exceptions import AlgorithmError
    from repro.graphs.families import complete_graph
    from repro.models.patterns import ConstantPattern

    algorithm = Breaking(validate=True)
    with pytest.raises(AlgorithmError):
        run_execution(
            algorithm, [0.0, 1.0, 2.0], ConstantPattern(complete_graph(3)), 1, use_fast_path=True
        )


def test_batched_ensemble_transition_matches_per_scenario():
    """combine_all broadcasts over stacked (B, n, d) values and (B, n, n) masks."""
    batch, n, d = 5, 6, 2
    rng = np.random.default_rng(21)
    values = rng.uniform(size=(batch, n, d))
    graphs = [random_nonsplit_graph(n, rng) for _ in range(batch)]
    adjacency = np.stack([g.adjacency for g in graphs])
    for algorithm in [MidpointAlgorithm(), MeanAlgorithm(), HegselmannKrauseAlgorithm(0.8)]:
        batched = algorithm.combine_all(adjacency, values, 1)
        for b in range(batch):
            single = algorithm.combine_all(graphs[b].adjacency, values[b], 1)
            np.testing.assert_array_equal(batched[b], single)
